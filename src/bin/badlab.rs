//! `badlab` — the command-line laboratory for the BAD edge-caching
//! reproduction.
//!
//! ```text
//! badlab policies                         list the caching policy catalog
//! badlab sim [options]                    run one Section V simulation
//! badlab proto [options]                  run one Section VI prototype replay
//! badlab trace generate [options] FILE    generate + save a subscriber trace
//! badlab trace info FILE                  summarize a saved trace
//! ```
//!
//! Run `badlab help` (or any subcommand with `--help`) for options.

use std::collections::HashMap;
use std::process::ExitCode;

use big_active_data::cache::{policy_catalog, PolicyName};
use big_active_data::prelude::*;
use big_active_data::proto::PrototypeReport;
use big_active_data::sim::SimReport;
use big_active_data::types::BadError;
use big_active_data::workload::{trace_io, ActivityKind, LognormalSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("policies") => cmd_policies(),
        Some("sim") => cmd_sim(&args[1..]),
        Some("proto") => cmd_proto(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(BadError::InvalidArgument(format!(
            "unknown command `{other}` (try `badlab help`)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("badlab: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "badlab — Big Active Data edge-caching laboratory\n\
         \n\
         USAGE:\n\
           badlab policies\n\
           badlab sim   [--policy P] [--budget-mib N] [--scale N] [--seed N]\n\
                        [--minutes N] [--churn] \n\
           badlab proto [--policy P] [--budget-kib N] [--subscribers N]\n\
                        [--minutes N] [--seed N]\n\
           badlab trace generate [--subscribers N] [--minutes N] [--seed N] FILE\n\
           badlab trace info FILE\n\
         \n\
         POLICIES: lru, lsc, lscz, lsd, exp, ttl, nc"
    );
}

/// Parses `--key value` pairs and positional arguments.
fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), BadError> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        if arg == "--help" || arg == "-h" {
            flags.insert("help".to_owned(), "true".to_owned());
        } else if let Some(key) = arg.strip_prefix("--") {
            // Boolean flags take no value; detect by lookahead.
            let takes_value = iter
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false);
            if takes_value {
                flags.insert(key.to_owned(), iter.next().expect("peeked").clone());
            } else {
                flags.insert(key.to_owned(), "true".to_owned());
            }
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((flags, positional))
}

fn flag_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, BadError> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            BadError::InvalidArgument(format!("--{key} expects an integer, got `{raw}`"))
        }),
    }
}

fn flag_policy(flags: &HashMap<String, String>) -> Result<PolicyName, BadError> {
    match flags.get("policy") {
        None => Ok(PolicyName::Lsc),
        Some(raw) => raw.parse(),
    }
}

fn cmd_policies() -> Result<(), BadError> {
    println!(
        "{:<6} {:<14} {:<13} dropping criterion",
        "name", "utility", "value"
    );
    for info in policy_catalog() {
        println!(
            "{:<6} {:<14} {:<13} {}",
            info.name.to_string(),
            info.utility,
            info.value,
            info.dropping
        );
    }
    Ok(())
}

fn cmd_sim(args: &[String]) -> Result<(), BadError> {
    let (flags, _) = parse_flags(args)?;
    if flags.contains_key("help") {
        print_usage();
        return Ok(());
    }
    let policy = flag_policy(&flags)?;
    let scale = flag_u64(&flags, "scale", 20)?.max(1);
    let seed = flag_u64(&flags, "seed", 1)?;
    let mut config = SimConfig::table_ii_scaled(scale);
    if let Some(mib) = flags.get("budget-mib") {
        let mib: u64 = mib.parse().map_err(|_| {
            BadError::InvalidArgument(format!("--budget-mib expects an integer, got `{mib}`"))
        })?;
        config.cache_budget = ByteSize::from_mib(mib);
    }
    if let Some(mins) = flags.get("minutes") {
        let mins: u64 = mins.parse().map_err(|_| {
            BadError::InvalidArgument(format!("--minutes expects an integer, got `{mins}`"))
        })?;
        config.duration = SimDuration::from_mins(mins);
    }
    if flags.contains_key("churn") {
        // Table II's "Subscription duration Lognormal(1, 2) minutes".
        config.subscription_lifetime = Some(LognormalSpec::new(60.0, 120.0));
    }
    eprintln!(
        "sim: policy={policy} subscribers={} streams={} budget={} duration={} seed={seed}",
        config.subscribers, config.unique_subscriptions, config.cache_budget, config.duration
    );
    let report = Simulation::new(policy, config, seed)?.run();
    print_sim_report(&report);
    Ok(())
}

fn print_sim_report(report: &SimReport) {
    println!("policy:            {}", report.policy);
    println!("cache budget:      {}", report.cache_budget);
    println!("hit ratio:         {:.4}", report.hit_ratio);
    println!("hit bytes:         {}", report.hit_bytes);
    println!("miss bytes:        {}", report.miss_bytes);
    println!("fetched (cluster): {}", report.fetched_bytes);
    println!("produced (Vol):    {}", report.vol_bytes);
    println!("mean latency:      {}", report.mean_latency);
    println!("mean holding:      {}", report.mean_holding);
    println!("avg cache size:    {}", report.avg_cache_bytes);
    println!("max cache size:    {}", report.max_cache_bytes);
    println!("deliveries:        {}", report.deliveries);
    println!("objects delivered: {}", report.delivered_objects);
}

fn cmd_proto(args: &[String]) -> Result<(), BadError> {
    let (flags, _) = parse_flags(args)?;
    if flags.contains_key("help") {
        print_usage();
        return Ok(());
    }
    let policy = flag_policy(&flags)?;
    let seed = flag_u64(&flags, "seed", 1)?;
    let mut config = PrototypeConfig::section_vi();
    config.trace.subscribers = flag_u64(&flags, "subscribers", 100)?;
    config.trace.duration = SimDuration::from_mins(flag_u64(&flags, "minutes", 15)?);
    config.cache.budget = ByteSize::from_kib(flag_u64(&flags, "budget-kib", 100)?);
    eprintln!(
        "proto: policy={policy} subscribers={} duration={} budget={} seed={seed}",
        config.trace.subscribers, config.trace.duration, config.cache.budget
    );
    let report = run_prototype(policy, &config, seed)?;
    print_proto_report(&report);
    Ok(())
}

fn print_proto_report(report: &PrototypeReport) {
    println!("policy:             {}", report.policy);
    println!("cache budget:       {}", report.cache_budget);
    println!("hit ratio:          {:.4}", report.hit_ratio);
    println!("mean latency:       {}", report.mean_latency);
    println!("fetched (cluster):  {}", report.fetched_bytes);
    println!("produced (Vol):     {}", report.vol_bytes);
    println!("frontend subs:      {}", report.frontend_subscriptions);
    println!("backend subs:       {}", report.backend_subscriptions);
    println!("deliveries:         {}", report.deliveries);
    println!("objects delivered:  {}", report.delivered_objects);
    println!("publications:       {}", report.publications);
}

fn cmd_trace(args: &[String]) -> Result<(), BadError> {
    match args.first().map(String::as_str) {
        Some("generate") => {
            let (flags, positional) = parse_flags(&args[1..])?;
            let path = positional.first().ok_or_else(|| {
                BadError::InvalidArgument("trace generate needs an output FILE".into())
            })?;
            let config = TraceConfig {
                subscribers: flag_u64(&flags, "subscribers", 100)?,
                duration: SimDuration::from_mins(flag_u64(&flags, "minutes", 15)?),
                ..TraceConfig::default()
            };
            let seed = flag_u64(&flags, "seed", 1)?;
            let trace = TraceGenerator::new(config, seed).generate()?;
            trace_io::save(&trace, path)?;
            println!("wrote {} activities to {path}", trace.len());
            Ok(())
        }
        Some("info") => {
            let path = args
                .get(1)
                .ok_or_else(|| BadError::InvalidArgument("trace info needs a FILE".into()))?;
            let trace = trace_io::load(path)?;
            let mut logins = 0u64;
            let mut logouts = 0u64;
            let mut subscribes = 0u64;
            let mut unsubscribes = 0u64;
            let mut reports = 0u64;
            let mut shelters = 0u64;
            for activity in &trace {
                match activity.kind {
                    ActivityKind::Login(_) => logins += 1,
                    ActivityKind::Logout(_) => logouts += 1,
                    ActivityKind::Subscribe { .. } => subscribes += 1,
                    ActivityKind::Unsubscribe { .. } => unsubscribes += 1,
                    ActivityKind::PublishReport(_) => reports += 1,
                    ActivityKind::PublishShelter(_) => shelters += 1,
                }
            }
            println!("activities:   {}", trace.len());
            if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
                println!("span:         {} .. {}", first.at, last.at);
            }
            println!("logins:       {logins}");
            println!("logouts:      {logouts}");
            println!("subscribes:   {subscribes}");
            println!("unsubscribes: {unsubscribes}");
            println!("reports:      {reports}");
            println!("shelters:     {shelters}");
            Ok(())
        }
        _ => Err(BadError::InvalidArgument(
            "trace subcommands: generate, info".into(),
        )),
    }
}
