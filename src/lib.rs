//! **big-active-data** — a Rust reproduction of *"Edge Caching for
//! Enriched Notifications Delivery in Big Active Data"* (Uddin &
//! Venkatasubramanian, ICDCS 2018).
//!
//! The BAD platform connects a big-data backend that perpetually matches
//! publications against declarative subscriptions ("channels") to a very
//! large subscriber population, through a tier of brokers. This crate
//! re-exports the whole workspace behind one façade:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`types`] | `bad-types` | ids, virtual time, records, geo, sizes |
//! | [`query`] | `bad-query` | BQL: the parameterized channel language |
//! | [`storage`] | `bad-storage` | datasets, result stores, feeds |
//! | [`net`] | `bad-net` | RTT/bandwidth latency model (Table II) |
//! | [`cache`] | `bad-cache` | ★ result caches + LRU/LSC/LSCz/LSD/EXP/TTL/NC policies |
//! | [`cluster`] | `bad-cluster` | channels runtime, matching, enrichment, webhooks |
//! | [`broker`] | `bad-broker` | subscription merging, Algorithm-1 delivery, BCS |
//! | [`workload`] | `bad-workload` | Zipf popularity, churn, traces, emergency city |
//! | [`sim`] | `bad-sim` | Section V discrete-event evaluation |
//! | [`proto`] | `bad-proto` | Section VI full-stack prototype (DES + threads) |
//! | [`telemetry`] | `bad-telemetry` | zero-dependency counters, histograms, structured events |
//!
//! # Quickstart
//!
//! ```
//! use big_active_data::prelude::*;
//!
//! // 1. Stand up a data cluster with a dataset and a channel.
//! let mut cluster = DataCluster::new();
//! cluster.create_dataset("Reports", Schema::open())?;
//! cluster.register_channel(
//!     "channel ByKind(kind: string) from Reports r where r.kind == $kind select r",
//! )?;
//!
//! // 2. A broker with an LSC cache in front of it.
//! let mut broker = Broker::new(PolicyName::Lsc, BrokerConfig::default());
//! let alice = SubscriberId::new(1);
//! let fs = broker.subscribe(
//!     &mut cluster, alice, "ByKind",
//!     ParamBindings::from_pairs([("kind", DataValue::from("flood"))]),
//!     Timestamp::ZERO,
//! )?;
//!
//! // 3. Publish, notify, retrieve — a cache hit.
//! let ns = cluster.publish("Reports", Timestamp::from_secs(1),
//!     DataValue::parse_json(r#"{"kind":"flood","severity":2}"#)?)?;
//! broker.on_notification(&mut cluster, ns[0], Timestamp::from_secs(1));
//! let delivery = broker.get_results(&mut cluster, alice, fs, Timestamp::from_secs(2))?;
//! assert_eq!(delivery.hit_objects, 1);
//! # Ok::<(), big_active_data::types::BadError>(())
//! ```

pub use bad_broker as broker;
pub use bad_cache as cache;
pub use bad_cluster as cluster;
pub use bad_net as net;
pub use bad_proto as proto;
pub use bad_query as query;
pub use bad_sim as sim;
pub use bad_storage as storage;
pub use bad_telemetry as telemetry;
pub use bad_types as types;
pub use bad_workload as workload;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use bad_broker::{Broker, BrokerConfig, BrokerCoordinationService, Delivery};
    pub use bad_cache::{CacheConfig, CacheManager, PolicyName};
    pub use bad_cluster::{DataCluster, EnrichmentRule, Notification};
    pub use bad_net::NetworkModel;
    pub use bad_proto::{run_prototype, Deployment, PrototypeConfig};
    pub use bad_query::{ChannelSpec, ParamBindings};
    pub use bad_sim::{SimConfig, Simulation};
    pub use bad_storage::{Dataset, ResultStore, Schema};
    pub use bad_telemetry::{Event, JsonlSink, Registry, RingBufferSink, SharedSink};
    pub use bad_types::{
        BackendSubId, ByteSize, DataValue, FrontendSubId, GeoPoint, SimDuration, SubscriberId,
        TimeRange, Timestamp,
    };
    pub use bad_workload::{EmergencyCity, TraceConfig, TraceGenerator};
}
