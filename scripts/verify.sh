#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
#
# Requires registry access (or a warm cargo cache) for the external
# deps; see ROADMAP.md for the offline per-crate fallback.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
