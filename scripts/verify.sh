#!/usr/bin/env bash
# Verification gate.
#
#   scripts/verify.sh [auto|online|offline]
#
# online  — full gate: build, tests, formatting, lints. Requires
#           registry access (or a warm cargo cache) for the external
#           deps.
# offline — the per-crate matrix from ROADMAP.md (everything that does
#           not need real external deps), run inside a synced workspace
#           copy whose external deps point at the vendored std-only
#           stubs in target/offline-check/stubs, plus the sharded
#           concurrency stress test under --release.
# auto    — online when `cargo fetch` succeeds, offline otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-auto}"

online_gate() {
  cargo build --release
  cargo test -q
  cargo fmt --check
  cargo clippy --workspace --all-targets -- -D warnings
  # Coalescing smoke gate: the reduced sweep exits non-zero if the
  # duplicate-fetch ratio with coalescing on exceeds 1.1.
  cargo run -q --release -p bad-bench --bin coalesce_bench -- --smoke
  # Shadow-policy smoke gate: fails if default-rate ghost evaluation
  # costs more than 10% throughput, if the ghost of the live policy
  # diverges from the real cache (regret must be exactly 0), or if no
  # ghost beats live LRU on the scan-pollution workload.
  cargo run -q --release -p bad-bench --bin shadow_overhead -- --smoke
  # Health-engine smoke gate: fails if the full health engine costs
  # more than 10% throughput, if model_drift fires before the regime
  # shift, or if it does not fire within the post-shift window budget.
  cargo run -q --release -p bad-bench --bin health_overhead -- --smoke
  # Autopilot smoke gate: the regime-shift tape must trigger exactly
  # one promotion per shifted segment (no flapping), the stationary
  # control must never switch, and the adaptive run must land within
  # 5 points of the best-in-hindsight fixed policy.
  cargo run -q --release -p bad-bench --bin autopilot_bench -- --smoke
  # Profiler smoke gate: full stage profiling must cost ≤ 10% and
  # sampled (1/64) ≤ 3% on the median per-rep interleaved ratio, and
  # the lock-contention curve must show shards=1 wait strictly
  # dominating shards=8 under the fixed 8-thread tape.
  cargo run -q --release -p bad-bench --bin profile_overhead -- --smoke
  # Read-path smoke gate: lock-free and locked GET paths must agree
  # exactly on hits/drops/metrics (serial parity tape), uncontended
  # GET latency must not regress past 1.25x of locked, and on hosts
  # with ≥ 4 cores the 8-thread/8-shard lock-free throughput must be
  # ≥ 2x locked (skipped below 4 cores).
  cargo run -q --release -p bad-bench --bin readpath_bench -- --smoke
  # Hot-key sketch smoke gate: full sketching must cost ≤ 5% and
  # sampled (1/16) ≤ 2% on the median per-rep interleaved ratio, and
  # on the Zipf accuracy tape both the single and the shard-merged
  # top-10 must overlap the exact top-10 in ≥ 9/10 keys with the
  # Metwally bounds intact and the distinct estimate within ±20%.
  cargo run -q --release -p bad-bench --bin sketch_overhead -- --smoke
}

offline_gate() {
  local ws=target/offline-check/ws
  if [ ! -d target/offline-check/stubs ]; then
    echo "verify: target/offline-check/stubs missing; cannot run offline" >&2
    exit 1
  fi
  mkdir -p "$ws"
  rm -rf "$ws/crates" "$ws/src" "$ws/tests" "$ws/examples"
  cp -R crates src tests examples "$ws/"
  cp Cargo.toml "$ws/Cargo.toml"
  # Point the external deps at the vendored std-only stubs.
  local dep
  for dep in rand rand_distr proptest criterion crossbeam parking_lot; do
    sed -i "s|^$dep = \".*\"|$dep = { path = \"../stubs/$dep\" }|" "$ws/Cargo.toml"
  done
  (
    cd "$ws"
    # Offline per-crate matrix (ROADMAP.md). bad-cache test targets are
    # selected explicitly: the proptest/criterion targets only build
    # against the real crates, not the stubs.
    cargo test -q -p bad-telemetry
    cargo test -q -p bad-types -p bad-query -p bad-storage -p bad-net --lib
    cargo test -q -p bad-cache --lib \
      --test telemetry_events --test gen_harness \
      --test oracle_parity --test stress_sharded --test shadow_parity \
      --test autopilot --test sketch_merge
    cargo test -q -p bad-broker --lib --test lifecycle_trace --test coalesce
    cargo test -q -p bad-cluster --lib
    # Scrape-endpoint smoke: boots the threaded proto runtime with a
    # live tracer + health engine and scrapes /metrics, /healthz,
    # /trace/recent (with ?limit=), /policies, /timeseries, /alerts
    # and /hot over TCP (the crossbeam stub is functional, so the
    # runtime threads run for real).
    cargo test -q -p bad-proto --lib --test scrape_smoke
    # The 8-thread stress (and the rest of the std-only cache suite)
    # again under --release, as the acceptance gate requires.
    cargo test -q --release -p bad-cache --lib \
      --test telemetry_events --test gen_harness \
      --test oracle_parity --test stress_sharded --test shadow_parity \
      --test autopilot --test sketch_merge
    # Coalescing smoke gate (reduced sweep, release): fails if the
    # duplicate-fetch ratio with coalescing on exceeds 1.1.
    cargo run -q --release -p bad-bench --bin coalesce_bench -- --smoke
    # Shadow-policy smoke gate (reduced sweep, release): overhead ≤ 10%
    # at the default sampling rate, ghost(live) == live exactly, and a
    # ghost policy must beat live LRU under scan pollution.
    cargo run -q --release -p bad-bench --bin shadow_overhead -- --smoke
    # Health-engine smoke gate (release): overhead ≤ 10% on the
    # cleanest interleaved rep pair, no model_drift false positive
    # before the regime shift, firing within the post-shift bound.
    cargo run -q --release -p bad-bench --bin health_overhead -- --smoke
    # Autopilot smoke gate (release): exactly one promotion per shifted
    # regime segment, zero switches in the stationary control, hit
    # ratio within 5 points of best-in-hindsight.
    cargo run -q --release -p bad-bench --bin autopilot_bench -- --smoke
    # Profiler smoke gate (release): overhead ≤ 10% full / ≤ 3%
    # sampled on the median per-rep interleaved ratio; shards=1
    # lock-wait must strictly dominate shards=8 on the contention
    # curve.
    cargo run -q --release -p bad-bench --bin profile_overhead -- --smoke
    # Read-path smoke gate (release): lockfree-vs-locked serial parity,
    # uncontended GET latency ≤ 1.25x locked, ≥ 2x contended scaling on
    # ≥ 4-core hosts (skipped on smaller hosts, as this container).
    cargo run -q --release -p bad-bench --bin readpath_bench -- --smoke
    # Hot-key sketch smoke gate (release): full ≤ 5% / sampled ≤ 2%
    # overhead, ≥ 9/10 Zipf top-10 overlap (single and shard-merged),
    # Metwally bounds intact, distinct estimate within ±20%.
    cargo run -q --release -p bad-bench --bin sketch_overhead -- --smoke
  )
}

case "$MODE" in
  online) online_gate ;;
  offline) offline_gate ;;
  auto)
    if cargo fetch >/dev/null 2>&1; then
      online_gate
    else
      echo "verify: registry unreachable; running the offline matrix" >&2
      offline_gate
    fi
    ;;
  *)
    echo "usage: $0 [auto|online|offline]" >&2
    exit 2
    ;;
esac
