//! Cross-crate integration: the full publish → match → enrich → notify →
//! cache → deliver pipeline through the public API of the umbrella crate.

use big_active_data::cache::PolicyName;
use big_active_data::cluster::EnrichmentRule;
use big_active_data::prelude::*;

fn t(secs: u64) -> Timestamp {
    Timestamp::from_secs(secs)
}

/// Builds a cluster with a continuous channel and a shelter enrichment.
fn city_cluster() -> DataCluster {
    let mut cluster = DataCluster::new();
    cluster.create_dataset("Reports", Schema::open()).unwrap();
    cluster.create_dataset("Shelters", Schema::open()).unwrap();
    cluster
        .register_channel(
            "channel CityAlerts(city: string) from Reports r \
             where r.city == $city select r",
        )
        .unwrap();
    cluster
        .add_enrichment(EnrichmentRule::join(
            "CityAlerts",
            "Shelters",
            "city",
            "city",
            "shelters",
            5,
        ))
        .unwrap();
    cluster
}

fn report(city: &str, n: i64) -> DataValue {
    DataValue::object([
        ("city", DataValue::from(city)),
        ("n", DataValue::from(n)),
        ("pad", DataValue::from("x".repeat(200))),
    ])
}

#[test]
fn publish_to_delivery_with_enrichment() {
    let mut cluster = city_cluster();
    cluster
        .publish(
            "Shelters",
            t(1),
            DataValue::object([
                ("city", DataValue::from("irvine")),
                ("name", DataValue::from("UCI Arena")),
            ]),
        )
        .unwrap();

    let mut broker = Broker::new(PolicyName::Lsc, BrokerConfig::default());
    let alice = SubscriberId::new(1);
    let fs = broker
        .subscribe(
            &mut cluster,
            alice,
            "CityAlerts",
            ParamBindings::from_pairs([("city", DataValue::from("irvine"))]),
            t(2),
        )
        .unwrap();

    // Publish two matching reports and one that does not match.
    for (sec, city) in [(3u64, "irvine"), (4, "tustin"), (5, "irvine")] {
        for n in cluster
            .publish("Reports", t(sec), report(city, sec as i64))
            .unwrap()
        {
            broker.on_notification(&mut cluster, n, t(sec));
        }
    }

    let delivery = broker.get_results(&mut cluster, alice, fs, t(6)).unwrap();
    assert_eq!(delivery.hit_objects, 2);
    assert_eq!(delivery.miss_objects, 0);

    // The enriched payloads are in the cluster's result store; check one.
    let results = cluster.fetch(
        broker.subscriptions().frontend(fs).unwrap().backend,
        TimeRange::closed(t(0), t(10)),
    );
    assert_eq!(results.len(), 2);
    for result in &results {
        let shelters = result.payload.get("shelters").unwrap().as_array().unwrap();
        assert_eq!(shelters.len(), 1, "enrichment embedded the shelter");
    }
}

#[test]
fn eviction_causes_misses_that_are_refetched_exactly_once() {
    let mut cluster = city_cluster();
    let mut config = BrokerConfig::default();
    config.cache.budget = ByteSize::new(300); // fits ~1 report object
    let mut broker = Broker::new(PolicyName::Lru, config);
    let alice = SubscriberId::new(1);
    let fs = broker
        .subscribe(
            &mut cluster,
            alice,
            "CityAlerts",
            ParamBindings::from_pairs([("city", DataValue::from("irvine"))]),
            t(0),
        )
        .unwrap();

    // Three results; the tiny budget evicts the older ones.
    for sec in [1u64, 2, 3] {
        for n in cluster
            .publish("Reports", t(sec), report("irvine", sec as i64))
            .unwrap()
        {
            broker.on_notification(&mut cluster, n, t(sec));
        }
    }
    assert!(broker.cache().metrics().evicted_objects >= 2);

    let delivery = broker.get_results(&mut cluster, alice, fs, t(4)).unwrap();
    // All three objects still arrive: hits + misses partition them.
    assert_eq!(delivery.total_objects(), 3);
    assert!(delivery.miss_objects >= 2);
    assert!(delivery.hit_objects >= 1);

    // Nothing left pending afterwards.
    assert!(!broker.has_pending(fs));
    let again = broker.get_results(&mut cluster, alice, fs, t(5)).unwrap();
    assert_eq!(again.total_objects(), 0);
}

#[test]
fn bcs_routes_subscribers_across_brokers() {
    let mut cluster = city_cluster();
    let mut bcs = BrokerCoordinationService::new();
    let broker_ids = [
        bcs.register_broker("broker-a"),
        bcs.register_broker("broker-b"),
    ];
    let mut brokers = [
        Broker::new(PolicyName::Lsc, BrokerConfig::default()),
        Broker::new(PolicyName::Lsc, BrokerConfig::default()),
    ];

    // Four subscribers get spread across the two brokers.
    let mut fss = Vec::new();
    for i in 0..4u64 {
        let subscriber = SubscriberId::new(i);
        let assigned = bcs.assign(subscriber).unwrap();
        let idx = broker_ids.iter().position(|b| *b == assigned).unwrap();
        let fs = brokers[idx]
            .subscribe(
                &mut cluster,
                subscriber,
                "CityAlerts",
                ParamBindings::from_pairs([("city", DataValue::from("irvine"))]),
                t(0),
            )
            .unwrap();
        fss.push((idx, subscriber, fs));
    }
    assert_eq!(brokers[0].subscriptions().frontend_count(), 2);
    assert_eq!(brokers[1].subscriptions().frontend_count(), 2);
    // Each broker merged its two frontends into one backend; the cluster
    // sees one subscription per broker.
    assert_eq!(cluster.subscription_count(), 2);

    // A publication reaches subscribers on both brokers.
    let notifications = cluster
        .publish("Reports", t(1), report("irvine", 1))
        .unwrap();
    assert_eq!(notifications.len(), 2);
    for n in notifications {
        for broker in brokers.iter_mut() {
            broker.on_notification(&mut cluster, n, t(1));
        }
    }
    for (idx, subscriber, fs) in fss {
        let delivery = brokers[idx]
            .get_results(&mut cluster, subscriber, fs, t(2))
            .unwrap();
        assert_eq!(delivery.total_objects(), 1, "{subscriber} got the alert");
    }
}

#[test]
fn repetitive_channels_deliver_in_batches() {
    let mut cluster = DataCluster::new();
    cluster.create_dataset("Reports", Schema::open()).unwrap();
    cluster
        .register_channel(
            "channel Batched(city: string) from Reports r \
             where r.city == $city select r every 30s",
        )
        .unwrap();
    let mut broker = Broker::new(PolicyName::Ttl, BrokerConfig::default());
    let alice = SubscriberId::new(1);
    let fs = broker
        .subscribe(
            &mut cluster,
            alice,
            "Batched",
            ParamBindings::from_pairs([("city", DataValue::from("irvine"))]),
            t(0),
        )
        .unwrap();

    for sec in [5u64, 10, 15] {
        assert!(cluster
            .publish("Reports", t(sec), report("irvine", sec as i64))
            .unwrap()
            .is_empty());
    }
    // Nothing delivered until the channel executes.
    assert!(!broker.has_pending(fs));
    let notifications = cluster.tick(t(30)).unwrap();
    assert_eq!(notifications.len(), 1);
    assert_eq!(notifications[0].count, 3);
    broker.on_notification(&mut cluster, notifications[0], t(30));
    let delivery = broker.get_results(&mut cluster, alice, fs, t(31)).unwrap();
    assert_eq!(delivery.total_objects(), 3);
}
