//! Integration tests of policy-level behaviour on seeded simulated
//! workloads: the qualitative claims of the paper's Section V, asserted
//! against the real simulator at small scale.

use big_active_data::cache::PolicyName;
use big_active_data::prelude::*;
use big_active_data::sim::SimReport;

fn run(policy: PolicyName, budget: ByteSize, seed: u64) -> SimReport {
    let mut config = SimConfig::table_ii_scaled(50);
    config.duration = SimDuration::from_mins(20);
    config.cache_budget = budget;
    Simulation::new(policy, config, seed).unwrap().run()
}

#[test]
fn caching_reduces_latency_and_fetches_vs_nc() {
    let budget = ByteSize::from_mib(1);
    let nc = run(PolicyName::Nc, budget, 1);
    for policy in [PolicyName::Lru, PolicyName::Lsc, PolicyName::Ttl] {
        let cached = run(policy, budget, 1);
        assert!(
            cached.mean_latency < nc.mean_latency,
            "{policy}: latency {} !< NC {}",
            cached.mean_latency,
            nc.mean_latency
        );
        assert!(
            cached.fetched_bytes < nc.fetched_bytes,
            "{policy}: fetched {} !< NC {}",
            cached.fetched_bytes,
            nc.fetched_bytes
        );
        assert!(cached.hit_ratio > 0.0);
    }
}

#[test]
fn hit_ratio_increases_with_cache_size() {
    for policy in [PolicyName::Lru, PolicyName::Lsc, PolicyName::Ttl] {
        let small = run(policy, ByteSize::from_kib(256), 2);
        let large = run(policy, ByteSize::from_mib(8), 2);
        assert!(
            large.hit_ratio >= small.hit_ratio,
            "{policy}: {} !>= {}",
            large.hit_ratio,
            small.hit_ratio
        );
        // Latency moves the opposite way (allowing a small tolerance for
        // discrete effects).
        assert!(
            large.mean_latency.as_secs_f64() <= small.mean_latency.as_secs_f64() * 1.05,
            "{policy}: latency did not improve"
        );
    }
}

#[test]
fn eviction_bounded_ttl_unbounded() {
    let budget = ByteSize::from_kib(512);
    for policy in [
        PolicyName::Lru,
        PolicyName::Lsc,
        PolicyName::Lscz,
        PolicyName::Lsd,
        PolicyName::Exp,
    ] {
        let report = run(policy, budget, 3);
        assert!(
            report.max_cache_bytes <= budget,
            "{policy} exceeded its budget: {}",
            report.max_cache_bytes
        );
    }
    let ttl = run(PolicyName::Ttl, budget, 3);
    assert!(
        ttl.max_cache_bytes > budget,
        "TTL never exceeded the budget — not expected under load"
    );
}

#[test]
fn fetch_equals_vol_plus_misses_for_caching_policies() {
    // For every caching policy the broker pulls Vol once (population)
    // plus re-fetches for misses; fetched == populated + missed.
    for policy in [PolicyName::Lru, PolicyName::Ttl] {
        let report = run(policy, ByteSize::from_mib(1), 4);
        let lower = report.vol_bytes;
        assert!(
            report.fetched_bytes >= lower,
            "{policy}: fetched {} < vol {}",
            report.fetched_bytes,
            lower
        );
        assert_eq!(
            report.fetched_bytes,
            report.vol_bytes + report.miss_bytes,
            "{policy}: fetch decomposition broken"
        );
    }
}

#[test]
fn ttl_holding_time_tracks_assigned_ttl() {
    // Fig. 5(b): under the TTL policy, holding times approach the
    // assigned TTLs (objects may leave earlier via consumption).
    let report = run(PolicyName::Ttl, ByteSize::from_kib(512), 5);
    assert!(report.mean_ttl > SimDuration::ZERO);
    // The end-of-run TTL and the run-averaged holding time track each
    // other within an order of magnitude (TTLs adapt over the run, and
    // consumption can drop objects before expiry, so the match is
    // approximate — exactly as in Fig. 5b).
    let ratio = report.mean_holding.as_secs_f64() / report.mean_ttl.as_secs_f64();
    assert!(
        (0.2..=5.0).contains(&ratio),
        "holding {} vs TTL {} (ratio {ratio:.2}) diverged",
        report.mean_holding,
        report.mean_ttl
    );
}

#[test]
fn same_trace_same_results_across_policies_inputs() {
    // The backend production process is policy-independent: Vol and the
    // produced object count must match across policies for a fixed seed.
    let a = run(PolicyName::Lru, ByteSize::from_mib(1), 6);
    let b = run(PolicyName::Ttl, ByteSize::from_mib(1), 6);
    let c = run(PolicyName::Nc, ByteSize::from_mib(1), 6);
    assert_eq!(a.produced_objects, b.produced_objects);
    assert_eq!(b.produced_objects, c.produced_objects);
    assert_eq!(a.vol_bytes, b.vol_bytes);
    assert_eq!(b.vol_bytes, c.vol_bytes);
}
