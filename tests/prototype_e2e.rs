//! End-to-end tests of the prototype deployments: the deterministic
//! full-stack harness and the threaded runtime.

use big_active_data::broker::BrokerConfig;
use big_active_data::cache::PolicyName;
use big_active_data::prelude::*;
use big_active_data::proto::harness::build_emergency_cluster;
use big_active_data::proto::ClientEvent;

#[test]
fn harness_prototype_replays_trace_for_all_policies() {
    let config = PrototypeConfig::smoke();
    let mut reports = Vec::new();
    for policy in [
        PolicyName::Nc,
        PolicyName::Lru,
        PolicyName::Lsc,
        PolicyName::Ttl,
    ] {
        let report = run_prototype(policy, &config, 11).unwrap();
        assert!(report.deliveries > 0, "{policy}: nothing delivered");
        reports.push(report);
    }
    // Same trace: identical publication counts and subscription shapes.
    for pair in reports.windows(2) {
        assert_eq!(pair[0].publications, pair[1].publications);
        assert_eq!(
            pair[0].frontend_subscriptions,
            pair[1].frontend_subscriptions
        );
    }
    // NC is the latency/fetch worst case.
    let nc = &reports[0];
    for cached in &reports[1..] {
        assert!(cached.hit_ratio > nc.hit_ratio);
        assert!(cached.mean_latency <= nc.mean_latency);
    }
}

#[test]
fn threaded_deployment_serves_many_clients() {
    let cluster = build_emergency_cluster().unwrap();
    let deployment = Deployment::start(PolicyName::Lsc, BrokerConfig::default(), cluster, 50_000.0);

    // Ten clients share one hot interest.
    let params = ParamBindings::from_pairs([("etype", DataValue::from("tornado"))]);
    let clients: Vec<_> = (0..10)
        .map(|i| {
            let client = deployment.client(SubscriberId::new(i));
            let fs = client
                .subscribe("EmergenciesOfType", params.clone())
                .unwrap();
            (client, fs)
        })
        .collect();

    deployment
        .publish(
            "EmergencyReports",
            DataValue::object([
                ("kind", DataValue::from("tornado")),
                ("severity", DataValue::from(5i64)),
                ("district", DataValue::from("district-2")),
            ]),
        )
        .unwrap();

    // Pump ticks until everyone has been notified (compressed periods).
    let mut notified = 0;
    for _ in 0..500 {
        deployment.tick().unwrap();
        notified = clients.iter().filter(|(c, _)| !c.events.is_empty()).count();
        if notified == clients.len() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    assert_eq!(notified, clients.len(), "all clients notified");

    let mut total = 0u64;
    for (client, fs) in &clients {
        let ClientEvent::ResultsAvailable { frontend, .. } = client.events.recv().unwrap();
        assert_eq!(frontend, *fs);
        total += client.get_results(*fs).unwrap().total_objects();
    }
    assert_eq!(total, 10, "each client received the tornado alert once");

    let (metrics, hit_ratio) = deployment.broker_metrics();
    assert_eq!(metrics.deliveries, 10);
    // One backend fetch, ten deliveries: the shared cache turned nine of
    // them into hits.
    assert!(hit_ratio > 0.85, "hit ratio {hit_ratio}");
    deployment.shutdown();
}

#[test]
fn threaded_deployment_survives_churny_clients() {
    let cluster = build_emergency_cluster().unwrap();
    let deployment = Deployment::start(PolicyName::Ttl, BrokerConfig::default(), cluster, 50_000.0);
    for i in 0..20u64 {
        let client = deployment.client(SubscriberId::new(i));
        let fs = client
            .subscribe(
                "SevereEmergencies",
                ParamBindings::from_pairs([("minsev", DataValue::from(1i64))]),
            )
            .unwrap();
        if i % 2 == 0 {
            client.unsubscribe(fs).unwrap();
        }
        // Half the clients disconnect immediately (handles dropped).
    }
    deployment
        .publish(
            "EmergencyReports",
            DataValue::object([
                ("kind", DataValue::from("fire")),
                ("severity", DataValue::from(3i64)),
                ("district", DataValue::from("district-0")),
            ]),
        )
        .unwrap();
    for _ in 0..50 {
        deployment.tick().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    deployment.shutdown();
}
