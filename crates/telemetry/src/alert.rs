//! SLO error budgets, multi-window burn-rate rules and the alert state
//! machine.
//!
//! An SLO like "at most 1% of deliveries may violate the latency
//! deadline" defines an *error budget*. The burn rate over a window is
//! the observed violation fraction divided by that budget: burning at
//! 1× exhausts the budget exactly at the end of the SLO period,
//! burning at 14× exhausts it fourteen times too fast. Following the
//! multi-window construction from the SRE literature, a rule only
//! trips when *both* a fast window (catches sudden regressions,
//! provides fast reset) and a slow window (suppresses blips) burn
//! above their thresholds — all in virtual time, so the simulator and
//! the proto runtime alert identically.
//!
//! Rule condition changes drive a four-state machine:
//!
//! ```text
//! Inactive ──cond──▶ Pending ──held pending_for──▶ Firing
//!    ▲                  │                            │
//!    │               !cond (early clear)           !cond
//!    │                  ▼                            ▼
//!    └──── resolve_hold elapsed ◀───────────────  Resolved ──cond──▶ Pending
//! ```
//!
//! Every transition bumps a counter, lands in the [`FlightRecorder`]
//! as an anomaly note (entering `Firing` only — resolution is not an
//! anomaly) and is forwarded to the event sink as a typed
//! [`Event::AlertTransition`], so alerts interleave with lifecycle
//! spans in one JSONL trace.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::event::{Event, SharedSink};
use crate::histogram::Histogram;
use crate::json::ObjectWriter;
use crate::registry::{Counter, Gauge, Registry};
use crate::trace::FlightRecorder;

/// Alert lifecycle states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Condition false, nothing brewing.
    Inactive,
    /// Condition true, waiting out `pending_for_us` before firing.
    Pending,
    /// Condition held long enough; the alert is live.
    Firing,
    /// Condition cleared after firing; lingers `resolve_hold_us` so a
    /// flapping rule stays visible before returning to `Inactive`.
    Resolved,
}

impl AlertState {
    /// Stable lowercase label (JSON, events).
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// The pending→firing→resolved state machine, separated from rule
/// evaluation so the transition table can be tested exhaustively with
/// a plain boolean condition.
#[derive(Clone, Copy, Debug)]
pub struct AlertStateMachine {
    state: AlertState,
    /// Virtual time the current state was entered.
    since_us: u64,
    /// How long the condition must hold before `Pending` → `Firing`.
    pending_for_us: u64,
    /// How long `Resolved` lingers before `Inactive`.
    resolve_hold_us: u64,
}

impl AlertStateMachine {
    /// Creates a machine in `Inactive`.
    pub fn new(pending_for_us: u64, resolve_hold_us: u64) -> Self {
        Self {
            state: AlertState::Inactive,
            since_us: 0,
            pending_for_us,
            resolve_hold_us,
        }
    }

    /// Current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// Virtual time the current state was entered.
    pub fn since_us(&self) -> u64 {
        self.since_us
    }

    /// Advances the machine at virtual `t_us` with the rule condition,
    /// returning `Some((from, to))` when the state changed. Time jumps
    /// (a sim fast-forwarding hours) are handled by `>=` deadline
    /// checks: a jump simply accelerates the dwell-time transitions.
    /// `Pending` → `Firing` can complete within one `step` call when
    /// `pending_for_us` is zero or already elapsed — the externally
    /// visible transition is the full hop.
    pub fn step(&mut self, t_us: u64, condition: bool) -> Option<(AlertState, AlertState)> {
        let from = self.state;
        let to = if condition {
            match self.state {
                AlertState::Inactive | AlertState::Resolved => {
                    // Zero dwell goes straight to Firing rather than
                    // burning an extra window in Pending.
                    if self.pending_for_us == 0 {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                AlertState::Pending => {
                    if t_us.saturating_sub(self.since_us) >= self.pending_for_us {
                        AlertState::Firing
                    } else {
                        AlertState::Pending
                    }
                }
                AlertState::Firing => AlertState::Firing,
            }
        } else {
            match self.state {
                AlertState::Inactive => AlertState::Inactive,
                // An early clear cancels a pending alert outright.
                AlertState::Pending => AlertState::Inactive,
                AlertState::Firing => AlertState::Resolved,
                AlertState::Resolved => {
                    if t_us.saturating_sub(self.since_us) >= self.resolve_hold_us {
                        AlertState::Inactive
                    } else {
                        AlertState::Resolved
                    }
                }
            }
        };
        if to == from {
            return None;
        }
        self.state = to;
        self.since_us = t_us;
        Some((from, to))
    }
}

/// Where a burn-rate rule reads its request denominator: a plain
/// counter, or a histogram's derived observation count (the tracer
/// tracks delivery volume as histograms, not counters).
#[derive(Clone, Debug)]
pub enum ValueSource {
    /// `Counter::get`.
    Counter(Counter),
    /// `Histogram::count` (sum of buckets).
    HistogramCount(Histogram),
}

impl ValueSource {
    fn get(&self) -> u64 {
        match self {
            ValueSource::Counter(c) => c.get(),
            ValueSource::HistogramCount(h) => h.count(),
        }
    }
}

/// Configuration of one multi-window burn-rate rule.
#[derive(Clone, Copy, Debug)]
pub struct BurnRateRule {
    /// Stable rule name (`&'static` so transitions stay `Copy`).
    pub name: &'static str,
    /// Error budget as a fraction of requests (0.01 = 1% may violate).
    pub budget: f64,
    /// Fast window width in virtual microseconds.
    pub fast_window_us: u64,
    /// Slow window width in virtual microseconds.
    pub slow_window_us: u64,
    /// Burn-rate threshold over the fast window.
    pub fast_factor: f64,
    /// Burn-rate threshold over the slow window.
    pub slow_factor: f64,
    /// Dwell time before `Pending` → `Firing`.
    pub pending_for_us: u64,
    /// Linger time in `Resolved`.
    pub resolve_hold_us: u64,
}

/// A recorded state change, kept in a bounded log for `/alerts`.
#[derive(Clone, Copy, Debug)]
pub struct TransitionRecord {
    /// Virtual time of the change.
    pub t_us: u64,
    /// Rule that moved.
    pub rule: &'static str,
    /// State left.
    pub from: AlertState,
    /// State entered.
    pub to: AlertState,
    /// Triggering measurement (fast-window burn rate, or drift score).
    pub value: f64,
}

enum RuleKind {
    Burn {
        cfg: BurnRateRule,
        violations: ValueSource,
        requests: ValueSource,
        /// `(t_us, cumulative violations, cumulative requests)` samples
        /// at evaluation times, pruned to the slow window.
        history: VecDeque<(u64, u64, u64)>,
    },
    /// Fires while `gauge / 1000 >= threshold` (gauges are u64, so
    /// fractional scores are stored ×1000).
    GaugeAbove {
        name: &'static str,
        gauge: Gauge,
        threshold: f64,
    },
}

struct Rule {
    kind: RuleKind,
    sm: AlertStateMachine,
    /// Last measurement that drove the condition (for JSON readout).
    last_value: f64,
}

impl Rule {
    fn name(&self) -> &'static str {
        match &self.kind {
            RuleKind::Burn { cfg, .. } => cfg.name,
            RuleKind::GaugeAbove { name, .. } => name,
        }
    }
}

/// Burn rate of the `(then, now]` cumulative samples against `budget`.
fn burn_rate(then: (u64, u64), now: (u64, u64), budget: f64) -> f64 {
    let bad = now.0.saturating_sub(then.0);
    let total = now.1.saturating_sub(then.1);
    if total == 0 || budget <= 0.0 {
        return 0.0;
    }
    (bad as f64 / total as f64) / budget
}

struct ManagerInner {
    rules: Vec<Rule>,
    log: VecDeque<TransitionRecord>,
}

const TRANSITION_LOG_CAPACITY: usize = 64;

/// Owns every alert rule, evaluates them on the health-engine window
/// cadence, and fans transitions out to metrics, the flight recorder
/// and the event sink.
pub struct AlertManager {
    inner: Mutex<ManagerInner>,
    recorder: Arc<FlightRecorder>,
    sink: SharedSink,
    firing: Gauge,
    pending: Gauge,
    transitions_total: Counter,
}

impl AlertManager {
    /// Creates an empty manager, registering its own summary metrics
    /// (`bad_health_alerts_firing`, `bad_health_alerts_pending`,
    /// `bad_health_alert_transitions_total`) on `registry`.
    pub fn new(registry: &Registry, recorder: Arc<FlightRecorder>, sink: SharedSink) -> Self {
        Self {
            inner: Mutex::new(ManagerInner {
                rules: Vec::new(),
                log: VecDeque::with_capacity(TRANSITION_LOG_CAPACITY),
            }),
            recorder,
            sink,
            firing: registry.gauge("bad_health_alerts_firing"),
            pending: registry.gauge("bad_health_alerts_pending"),
            transitions_total: registry.counter("bad_health_alert_transitions_total"),
        }
    }

    /// Adds a multi-window burn-rate rule over a violation source and a
    /// request (denominator) source.
    pub fn add_burn_rate(&self, cfg: BurnRateRule, violations: ValueSource, requests: ValueSource) {
        let sm = AlertStateMachine::new(cfg.pending_for_us, cfg.resolve_hold_us);
        self.lock().rules.push(Rule {
            kind: RuleKind::Burn {
                cfg,
                violations,
                requests,
                history: VecDeque::new(),
            },
            sm,
            last_value: 0.0,
        });
    }

    /// Adds a threshold rule over a gauge storing a ×1000 fixed-point
    /// score (the drift detector's output).
    pub fn add_gauge_above(
        &self,
        name: &'static str,
        gauge: Gauge,
        threshold: f64,
        pending_for_us: u64,
        resolve_hold_us: u64,
    ) {
        self.lock().rules.push(Rule {
            kind: RuleKind::GaugeAbove {
                name,
                gauge,
                threshold,
            },
            sm: AlertStateMachine::new(pending_for_us, resolve_hold_us),
            last_value: 0.0,
        });
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManagerInner> {
        self.inner.lock().expect("alert manager poisoned")
    }

    /// Evaluates every rule at virtual `t_us`, returning the
    /// transitions that occurred. Called once per health window — never
    /// on a data hot path.
    pub fn evaluate(&self, t_us: u64) -> Vec<TransitionRecord> {
        let mut out = Vec::new();
        let mut firing = 0u64;
        let mut pending = 0u64;
        let mut inner = self.lock();
        for rule in &mut inner.rules {
            let (condition, value) = match &mut rule.kind {
                RuleKind::Burn {
                    cfg,
                    violations,
                    requests,
                    history,
                } => {
                    let now = (violations.get(), requests.get());
                    history.push_back((t_us, now.0, now.1));
                    let slow_cutoff = t_us.saturating_sub(cfg.slow_window_us);
                    // Keep one sample at-or-before the cutoff as the
                    // subtraction base for the full slow window.
                    while history.len() > 1 && history[1].0 <= slow_cutoff {
                        history.pop_front();
                    }
                    let base_at = |window_us: u64| {
                        let cutoff = t_us.saturating_sub(window_us);
                        let mut base = (history[0].1, history[0].2);
                        for &(ht, hv, hr) in history.iter() {
                            if ht <= cutoff {
                                base = (hv, hr);
                            } else {
                                break;
                            }
                        }
                        base
                    };
                    let fast = burn_rate(base_at(cfg.fast_window_us), now, cfg.budget);
                    let slow = burn_rate(base_at(cfg.slow_window_us), now, cfg.budget);
                    (fast >= cfg.fast_factor && slow >= cfg.slow_factor, fast)
                }
                RuleKind::GaugeAbove {
                    gauge, threshold, ..
                } => {
                    let value = gauge.get() as f64 / 1000.0;
                    (value >= *threshold, value)
                }
            };
            rule.last_value = value;
            if let Some((from, to)) = rule.sm.step(t_us, condition) {
                out.push(TransitionRecord {
                    t_us,
                    rule: rule.name(),
                    from,
                    to,
                    value,
                });
            }
            match rule.sm.state() {
                AlertState::Firing => firing += 1,
                AlertState::Pending => pending += 1,
                _ => {}
            }
        }
        for t in &out {
            if inner.log.len() == TRANSITION_LOG_CAPACITY {
                inner.log.pop_front();
            }
            inner.log.push_back(*t);
        }
        drop(inner);
        self.firing.set(firing);
        self.pending.set(pending);
        for t in &out {
            self.transitions_total.inc();
            if t.to == AlertState::Firing {
                self.recorder
                    .note_anomaly(&format!("alert_firing:{}", t.rule), t.t_us);
            }
            if self.sink.enabled() {
                self.sink.record(&Event::AlertTransition {
                    t_us: t.t_us,
                    rule: t.rule,
                    from: t.from.label(),
                    to: t.to.label(),
                    value_milli: (t.value.max(0.0) * 1000.0).min(u64::MAX as f64) as u64,
                });
            }
        }
        out
    }

    /// State of rule `name`, if registered.
    pub fn state_of(&self, name: &str) -> Option<AlertState> {
        self.lock()
            .rules
            .iter()
            .find(|r| r.name() == name)
            .map(|r| r.sm.state())
    }

    /// `(firing, pending)` rule counts.
    pub fn counts(&self) -> (u64, u64) {
        (self.firing.get(), self.pending.get())
    }

    /// The `/alerts` endpoint body: every rule's state and last
    /// measurement plus the recent transition log.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut body = String::with_capacity(1024);
        {
            let mut obj = ObjectWriter::new(&mut body);
            obj.field_u64("firing", self.firing.get());
            obj.field_u64("pending", self.pending.get());
            obj.field_u64("transitions_total", self.transitions_total.get());
            let mut rules = String::from("[");
            for (i, rule) in inner.rules.iter().enumerate() {
                if i > 0 {
                    rules.push(',');
                }
                let mut row = String::new();
                {
                    let mut o = ObjectWriter::new(&mut row);
                    o.field_str("rule", rule.name());
                    o.field_str("state", rule.sm.state().label());
                    o.field_u64("since_us", rule.sm.since_us());
                    o.field_f64("value", rule.last_value);
                }
                rules.push_str(&row);
            }
            rules.push(']');
            obj.field_raw("rules", &rules);
            let mut log = String::from("[");
            for (i, t) in inner.log.iter().enumerate() {
                if i > 0 {
                    log.push(',');
                }
                let mut row = String::new();
                {
                    let mut o = ObjectWriter::new(&mut row);
                    o.field_u64("t_us", t.t_us);
                    o.field_str("rule", t.rule);
                    o.field_str("from", t.from.label());
                    o.field_str("to", t.to.label());
                    o.field_f64("value", t.value);
                }
                log.push_str(&row);
            }
            log.push(']');
            obj.field_raw("transitions", &log);
        }
        body
    }

    /// A compact summary object for embedding in `/healthz`.
    pub fn summary_json(&self) -> String {
        let inner = self.lock();
        let mut body = String::with_capacity(256);
        {
            let mut obj = ObjectWriter::new(&mut body);
            obj.field_u64("firing", self.firing.get());
            obj.field_u64("pending", self.pending.get());
            let mut names = String::from("[");
            let mut first = true;
            for rule in &inner.rules {
                if rule.sm.state() == AlertState::Firing {
                    if !first {
                        names.push(',');
                    }
                    first = false;
                    names.push_str(&crate::json::quote(rule.name()));
                }
            }
            names.push(']');
            obj.field_raw("firing_rules", &names);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{null_sink, RingBufferSink};

    const S: u64 = 1_000_000;

    fn machine(pending_s: u64, hold_s: u64) -> AlertStateMachine {
        AlertStateMachine::new(pending_s * S, hold_s * S)
    }

    /// The exhaustive transition table: each row is
    /// `(start state, dwell already elapsed, condition) → end state`.
    #[test]
    fn transition_table_is_exhaustive() {
        use AlertState::*;
        // (state, entered_at, t, condition, expected)
        let table: &[(AlertState, u64, u64, bool, AlertState)] = &[
            // Inactive rows.
            (Inactive, 0, 10 * S, false, Inactive),
            (Inactive, 0, 10 * S, true, Pending),
            // Pending rows: early clear, dwell not met, dwell met.
            (Pending, 10 * S, 11 * S, false, Inactive),
            (Pending, 10 * S, 11 * S, true, Pending),
            (Pending, 10 * S, 15 * S, true, Firing),
            // Dwell exactly met fires (>=, not >).
            (Pending, 10 * S, 13 * S, true, Firing),
            // Firing rows.
            (Firing, 0, 20 * S, true, Firing),
            (Firing, 0, 20 * S, false, Resolved),
            // Resolved rows: retrigger, hold not met, hold met.
            (Resolved, 20 * S, 21 * S, true, Pending),
            (Resolved, 20 * S, 21 * S, false, Resolved),
            (Resolved, 20 * S, 26 * S, false, Inactive),
        ];
        for &(start, entered, t, cond, expected) in table {
            let mut sm = machine(3, 5);
            sm.state = start;
            sm.since_us = entered;
            sm.step(t, cond);
            assert_eq!(
                sm.state(),
                expected,
                "({start:?}, entered={entered}, t={t}, cond={cond})"
            );
        }
    }

    #[test]
    fn virtual_time_jumps_accelerate_not_break() {
        let mut sm = machine(3, 5);
        assert_eq!(
            sm.step(0, true),
            Some((AlertState::Inactive, AlertState::Pending))
        );
        // A huge jump satisfies the dwell immediately.
        assert_eq!(
            sm.step(1_000_000 * S, true),
            Some((AlertState::Pending, AlertState::Firing))
        );
        assert_eq!(
            sm.step(1_000_001 * S, false),
            Some((AlertState::Firing, AlertState::Resolved))
        );
        // Jump past the hold: straight back to Inactive.
        assert_eq!(
            sm.step(2_000_000 * S, false),
            Some((AlertState::Resolved, AlertState::Inactive))
        );
        // Time going backwards must not panic or fire spuriously.
        assert_eq!(sm.step(0, false), None);
    }

    #[test]
    fn zero_dwell_fires_in_one_step() {
        let mut sm = machine(0, 0);
        assert_eq!(
            sm.step(5 * S, true),
            Some((AlertState::Inactive, AlertState::Firing))
        );
        assert_eq!(
            sm.step(6 * S, false),
            Some((AlertState::Firing, AlertState::Resolved))
        );
        // Zero hold: next evaluation returns to Inactive.
        assert_eq!(
            sm.step(7 * S, false),
            Some((AlertState::Resolved, AlertState::Inactive))
        );
    }

    fn burn_manager(registry: &Registry) -> (AlertManager, Counter, Counter) {
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let manager = AlertManager::new(registry, recorder, null_sink());
        let bad = registry.counter("bad_test_violations_total");
        let total = registry.counter("bad_test_requests_total");
        manager.add_burn_rate(
            BurnRateRule {
                name: "test_burn",
                budget: 0.01,
                fast_window_us: 2 * S,
                slow_window_us: 10 * S,
                fast_factor: 10.0,
                slow_factor: 5.0,
                pending_for_us: S,
                resolve_hold_us: S,
            },
            ValueSource::Counter(bad.clone()),
            ValueSource::Counter(total.clone()),
        );
        (manager, bad, total)
    }

    #[test]
    fn burn_rate_crosses_up_and_down() {
        let registry = Registry::new();
        let (manager, bad, total) = burn_manager(&registry);
        // Healthy traffic: 1000 requests, 1 violation (0.1% < 1%·10).
        total.add(1000);
        bad.add(1);
        manager.evaluate(0);
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Inactive));
        // Regression: 50% violations — burn 50× the budget on both
        // windows. Pending first, firing after the dwell.
        total.add(1000);
        bad.add(500);
        manager.evaluate(S);
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Pending));
        total.add(1000);
        bad.add(500);
        manager.evaluate(2 * S);
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Firing));
        assert_eq!(manager.counts().0, 1);
        // Recovery: violations stop; the fast window clears first.
        total.add(10_000);
        manager.evaluate(5 * S);
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Resolved));
        total.add(10_000);
        manager.evaluate(7 * S);
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Inactive));
    }

    #[test]
    fn no_traffic_means_no_burn() {
        let registry = Registry::new();
        let (manager, _bad, _total) = burn_manager(&registry);
        for i in 0..5 {
            assert!(manager.evaluate(i * S).is_empty());
        }
        assert_eq!(manager.state_of("test_burn"), Some(AlertState::Inactive));
    }

    #[test]
    fn transitions_feed_recorder_sink_and_log() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let ring = Arc::new(RingBufferSink::new(64));
        let sink: SharedSink = ring.clone();
        let manager = AlertManager::new(&registry, recorder.clone(), sink);
        let score = registry.gauge("bad_test_score_milli");
        manager.add_gauge_above("test_gauge", score.clone(), 0.5, 0, 0);
        score.set(900); // 0.9 >= 0.5
        let transitions = manager.evaluate(3 * S);
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].to, AlertState::Firing);
        // Firing noted as an anomaly; event forwarded; log retained.
        assert_eq!(recorder.anomalies(), 1);
        assert_eq!(ring.len(), 1);
        let json = manager.to_json();
        assert!(json.contains("\"rule\":\"test_gauge\""));
        assert!(json.contains("\"to\":\"firing\""));
        assert!(registry
            .render()
            .contains("bad_health_alert_transitions_total 1"));
        // Resolution is not an anomaly.
        score.set(0);
        manager.evaluate(4 * S);
        assert_eq!(recorder.anomalies(), 1);
        let summary = manager.summary_json();
        assert!(summary.contains("\"firing\":0"));
    }
}
