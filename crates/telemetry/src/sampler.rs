//! A virtual-time sampler: periodic per-broker snapshots of cache
//! occupancy, hit ratio and the expected TTL-bounded size `Σ ρ_i·T_i`.
//!
//! The simulator's event loop (and, in principle, a wall-clock
//! maintenance thread) asks [`Sampler::due`] whether the next epoch
//! has arrived and then calls [`Sampler::record`] with a freshly
//! measured [`Sample`]. The retained series is the raw data behind
//! the paper's Fig. 5a, rather than just its end-of-run mean.

/// One sampler epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Virtual timestamp of the epoch, in microseconds.
    pub t_us: u64,
    /// Total bytes resident in the broker's caches.
    pub occupancy_bytes: u64,
    /// Cumulative hit ratio at this epoch (0 when nothing requested).
    pub hit_ratio: f64,
    /// Expected TTL-bounded cache size `Σ ρ_i·T_i` in bytes (0 for
    /// non-TTL policies).
    pub expected_ttl_bytes: f64,
}

/// Collects [`Sample`]s every `interval_us` of virtual time.
#[derive(Clone, Debug)]
pub struct Sampler {
    interval_us: u64,
    next_due_us: u64,
    samples: Vec<Sample>,
}

impl Sampler {
    /// Creates a sampler firing every `interval_us` microseconds
    /// (min 1), with the first epoch due at one interval.
    pub fn new(interval_us: u64) -> Self {
        let interval_us = interval_us.max(1);
        Self {
            interval_us,
            next_due_us: interval_us,
            samples: Vec::new(),
        }
    }

    /// The configured epoch length in microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Whether the next epoch boundary has been reached at `t_us`.
    pub fn due(&self, t_us: u64) -> bool {
        t_us >= self.next_due_us
    }

    /// Records one epoch and schedules the next one `interval_us`
    /// after the recorded timestamp (not after the previous deadline,
    /// so a stalled caller doesn't produce a burst of make-up epochs).
    /// The deadline never moves backwards: an out-of-order sample (a
    /// broker thread racing virtual time) must not re-arm an epoch
    /// that already fired.
    pub fn record(&mut self, sample: Sample) {
        self.next_due_us = self
            .next_due_us
            .max(sample.t_us.saturating_add(self.interval_us));
        self.samples.push(sample);
    }

    /// The series collected so far, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Consumes the sampler, returning the collected series.
    pub fn into_samples(self) -> Vec<Sample> {
        self.samples
    }

    /// Mean of `expected_ttl_bytes` across epochs (0 when empty) —
    /// the scalar that [`crate::Registry`]-free callers previously
    /// tracked by hand.
    pub fn mean_expected_ttl_bytes(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|s| s.expected_ttl_bytes).sum();
        sum / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t_us: u64, expected: f64) -> Sample {
        Sample {
            t_us,
            occupancy_bytes: 100,
            hit_ratio: 0.5,
            expected_ttl_bytes: expected,
        }
    }

    #[test]
    fn epochs_fire_on_interval() {
        let mut sampler = Sampler::new(60_000_000);
        assert!(!sampler.due(59_999_999));
        assert!(sampler.due(60_000_000));
        sampler.record(sample(60_000_000, 10.0));
        assert!(!sampler.due(119_999_999));
        assert!(sampler.due(120_000_000));
    }

    #[test]
    fn late_epochs_do_not_burst() {
        let mut sampler = Sampler::new(10);
        sampler.record(sample(35, 0.0));
        // Next epoch is relative to the recorded time, not the missed
        // deadlines at t=10/20/30.
        assert!(!sampler.due(44));
        assert!(sampler.due(45));
    }

    #[test]
    fn non_monotonic_samples_never_rearm_a_fired_epoch() {
        let mut sampler = Sampler::new(10);
        sampler.record(sample(50, 0.0));
        assert!(!sampler.due(59));
        assert!(sampler.due(60));
        // A stale sample arrives out of order: the next deadline must
        // stay at 60, not jump back to 35 + 10 = 45.
        sampler.record(sample(35, 0.0));
        assert!(!sampler.due(45));
        assert!(sampler.due(60));
        // And a sample from "time zero" must not make every instant due.
        sampler.record(sample(0, 0.0));
        assert!(!sampler.due(59));
        assert!(sampler.due(60));
        assert_eq!(sampler.samples().len(), 3);
    }

    #[test]
    fn mean_expected_ttl() {
        let mut sampler = Sampler::new(1);
        assert_eq!(sampler.mean_expected_ttl_bytes(), 0.0);
        sampler.record(sample(1, 10.0));
        sampler.record(sample(2, 30.0));
        assert_eq!(sampler.mean_expected_ttl_bytes(), 20.0);
        assert_eq!(sampler.samples().len(), 2);
    }
}
