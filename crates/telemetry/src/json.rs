//! A minimal, allocation-conscious JSON writer.
//!
//! The build environment has no crates.io access, so the telemetry layer
//! hand-rolls the tiny subset of JSON it needs: object literals with
//! string, integer and float values, and RFC 8259 string escaping. The
//! writer appends into a caller-provided `String` so a JSONL sink can
//! reuse one buffer per line.

/// Escapes `s` per RFC 8259 and appends it (without quotes) to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Escapes `s` into a freshly quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Formats an `f64` so the output is always valid JSON: finite values
/// print with up to six significant decimals, non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim trailing zeros for compactness while staying parseable.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_owned()
        } else {
            s.to_owned()
        }
    } else {
        "null".to_owned()
    }
}

/// An incremental writer for one JSON object appended to a `String`.
///
/// # Examples
///
/// ```
/// let mut buf = String::new();
/// {
///     let mut obj = bad_telemetry::json::ObjectWriter::new(&mut buf);
///     obj.field_str("kind", "cache.evict");
///     obj.field_u64("bytes", 42);
///     obj.field_f64("score", 0.5);
/// }
/// assert_eq!(buf, r#"{"kind":"cache.evict","bytes":42,"score":0.5}"#);
/// ```
pub struct ObjectWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjectWriter<'a> {
    /// Opens an object literal on `out`.
    pub fn new(out: &'a mut String) -> Self {
        out.push('{');
        Self { out, first: true }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(self.out, key);
        self.out.push_str("\":");
    }

    /// Writes a string field.
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        escape_into(self.out, value);
        self.out.push('"');
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        self.out.push_str(&value.to_string());
    }

    /// Writes a float field (`null` for non-finite values).
    pub fn field_f64(&mut self, key: &str, value: f64) {
        self.key(key);
        self.out.push_str(&number(value));
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes an array of strings, each escaped.
    pub fn field_array_str(&mut self, key: &str, values: &[String]) {
        self.key(key);
        self.out.push('[');
        for (i, value) in values.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push('"');
            escape_into(self.out, value);
            self.out.push('"');
        }
        self.out.push(']');
    }

    /// Writes a pre-rendered JSON value verbatim (caller guarantees
    /// validity — used for nested arrays/objects).
    pub fn field_raw(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push_str(value);
    }
}

impl Drop for ObjectWriter<'_> {
    fn drop(&mut self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
        assert_eq!(quote("héllo"), "\"héllo\"");
    }

    #[test]
    fn numbers_are_compact_and_valid() {
        assert_eq!(number(1.0), "1");
        assert_eq!(number(0.25), "0.25");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(0.0), "0");
    }

    #[test]
    fn object_writer_emits_valid_object() {
        let mut buf = String::new();
        {
            let mut obj = ObjectWriter::new(&mut buf);
            obj.field_str("a", "x\"y");
            obj.field_u64("b", 7);
            obj.field_f64("c", f64::NAN);
            obj.field_raw("d", "[1,2]");
        }
        assert_eq!(buf, r#"{"a":"x\"y","b":7,"c":null,"d":[1,2]}"#);
    }

    #[test]
    fn empty_object() {
        let mut buf = String::new();
        drop(ObjectWriter::new(&mut buf));
        assert_eq!(buf, "{}");
    }
}
