//! Log-bucketed histograms with approximate quantile readout.
//!
//! Values (latencies in microseconds, sizes in bytes) are binned into
//! power-of-two buckets: bucket 0 holds exactly zero, bucket `i` holds
//! `[2^(i-1), 2^i)`. Recording is a handful of relaxed atomic adds, so
//! the histogram is safe to touch from hot paths; readout walks the 65
//! buckets and reports each quantile as the upper bound of the bucket
//! it falls in, clamped to the largest value actually recorded.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BUCKETS: usize = 65;

/// Number of log buckets in every [`Histogram`] (bucket 0 plus one per
/// bit of `u64`). Exposed so windowed snapshots (`timeseries`) can
/// store sparse per-bucket deltas without guessing the layout.
pub const BUCKET_COUNT: usize = BUCKETS;

#[derive(Debug)]
struct HistogramData {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    /// Per-bucket exemplar slots (most recent trace id to land in the
    /// bucket, 0 = none yet). Allocated only by
    /// [`Histogram::with_exemplars`]: ordinary histograms carry no
    /// exemplar storage and [`Histogram::record_exemplar`] degrades to
    /// a plain [`Histogram::record`], so quantile math and the
    /// Prometheus render are byte-identical either way.
    exemplars: Option<Box<[AtomicU64; BUCKETS]>>,
}

/// A cheap, thread-safe, log-bucketed histogram handle.
///
/// Cloning shares the underlying buckets, mirroring [`super::Counter`].
#[derive(Clone, Debug)]
pub struct Histogram {
    data: Arc<HistogramData>,
}

/// A point-in-time readout of a [`Histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Approximate 50th percentile.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            data: Arc::new(HistogramData {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                exemplars: None,
            }),
        }
    }

    /// Creates an empty histogram with per-bucket exemplar retention:
    /// [`Histogram::record_exemplar`] remembers the most recent trace
    /// id that landed in each bucket, linking a latency outlier back to
    /// the flight-recorder spans that produced it.
    pub fn with_exemplars() -> Self {
        Self {
            data: Arc::new(HistogramData {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
                exemplars: Some(Box::new(std::array::from_fn(|_| AtomicU64::new(0)))),
            }),
        }
    }

    /// Whether this histogram retains per-bucket exemplars.
    pub fn has_exemplars(&self) -> bool {
        self.data.exemplars.is_some()
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Upper bound of bucket `index` (inclusive). Public so windowed
    /// quantile readout over merged bucket deltas can reuse the exact
    /// bucket layout instead of re-deriving it.
    pub fn bucket_upper(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    ///
    /// Kept to two relaxed RMWs (bucket + sum): the observation count
    /// is derived from the buckets at read time, and the max register
    /// is only touched when the value actually raises it — span
    /// emission sits on the cache hot path, so every atomic counts.
    #[inline]
    pub fn record(&self, value: u64) {
        let data = &self.data;
        data.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        data.sum.fetch_add(value, Ordering::Relaxed);
        if value > data.max.load(Ordering::Relaxed) {
            data.max.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records one observation tagged with the trace id that produced
    /// it. On an exemplar-enabled histogram the bucket's exemplar slot
    /// is overwritten with `trace` (one extra relaxed store on top of
    /// [`Histogram::record`]'s two RMWs); on a plain histogram the tag
    /// is dropped and this is exactly `record`. A `trace` of 0 records
    /// the value but leaves the exemplar slot untouched, since 0 is the
    /// "no exemplar yet" sentinel.
    #[inline]
    pub fn record_exemplar(&self, value: u64, trace: u64) {
        let data = &self.data;
        let bucket = Self::bucket_index(value);
        data.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        data.sum.fetch_add(value, Ordering::Relaxed);
        if value > data.max.load(Ordering::Relaxed) {
            data.max.fetch_max(value, Ordering::Relaxed);
        }
        if trace != 0 {
            if let Some(exemplars) = &data.exemplars {
                exemplars[bucket].store(trace, Ordering::Relaxed);
            }
        }
    }

    /// The most recent trace id recorded into bucket `index`, or `None`
    /// if the bucket has no exemplar (never hit, exemplars disabled, or
    /// only 0-tagged records).
    pub fn exemplar(&self, index: usize) -> Option<u64> {
        let exemplars = self.data.exemplars.as_ref()?;
        match exemplars.get(index)?.load(Ordering::Relaxed) {
            0 => None,
            trace => Some(trace),
        }
    }

    /// Number of observations so far (a 65-bucket sum — readout-path
    /// cost traded for a cheaper `record`).
    pub fn count(&self) -> u64 {
        self.data
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> u64 {
        self.data.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 when empty).
    pub fn max(&self) -> u64 {
        self.data.max.load(Ordering::Relaxed)
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q * count)`-th observation, clamped
    /// to the recorded maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.data.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Reads every bucket at once (relaxed loads). The timeseries
    /// snapshotter diffs consecutive readouts to reconstruct windowed
    /// distributions, so this is the raw material — not a quantile.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.data.buckets[i].load(Ordering::Relaxed))
    }

    /// Reads count, sum, max and the p50/p90/p99 quantiles at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_bound_the_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // Bucket upper bounds over-approximate, never under-approximate.
        assert!(h.quantile(0.5) >= 500);
        assert!(h.quantile(0.99) >= 990);
        assert!(h.quantile(1.0) <= h.max());
        assert!(h.quantile(0.5) <= h.quantile(0.9));
        assert!(h.quantile(0.9) <= h.quantile(0.99));
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(
            snap,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn zeros_land_in_bucket_zero() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(8);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 8);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty: every quantile reads 0, including the extremes.
        let h = Histogram::new();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        // Out-of-range q clamps rather than panics or wraps.
        assert_eq!(h.quantile(-1.0), 0);
        assert_eq!(h.quantile(2.0), 0);

        // Single observation: q=0.0 still targets the first
        // observation (target is floored at 1), q=1.0 the last — both
        // are the same sample, clamped to the exact max.
        let h = Histogram::new();
        h.record(700);
        assert_eq!(h.quantile(0.0), 700);
        assert_eq!(h.quantile(0.5), 700);
        assert_eq!(h.quantile(1.0), 700);

        // Saturation: all mass in one bucket reads that bucket's upper
        // bound clamped to the recorded max, even at q=1.0 with values
        // in the top bucket.
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(u64::MAX);
        }
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.max(), u64::MAX);

        // Clamping also binds when a bucket's range exceeds the max
        // actually recorded: 1025 lands in [1024, 2047], whose upper
        // bound 2047 must be clamped down to 1025.
        let h = Histogram::new();
        h.record(1025);
        assert_eq!(h.quantile(1.0), 1025);

        // Out-of-range q on a non-empty histogram clamps to the ends.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn exemplars_tag_the_bucket_that_was_hit() {
        let h = Histogram::with_exemplars();
        assert!(h.has_exemplars());
        h.record_exemplar(0, 11); // bucket 0
        h.record_exemplar(3, 22); // bucket 2
        h.record_exemplar(2, 33); // bucket 2 again: overwrites
        h.record_exemplar(1024, 44); // bucket 11
        assert_eq!(h.exemplar(0), Some(11));
        assert_eq!(h.exemplar(1), None);
        assert_eq!(h.exemplar(2), Some(33));
        assert_eq!(h.exemplar(11), Some(44));
        assert_eq!(h.exemplar(64), None);
        assert_eq!(h.exemplar(1000), None);
        // A 0 trace records the value but never claims an exemplar slot.
        h.record_exemplar(5, 0);
        assert_eq!(h.exemplar(3), None);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 2 + 1024 + 5);
    }

    #[test]
    fn plain_histograms_drop_exemplars_but_count_the_record() {
        let h = Histogram::new();
        assert!(!h.has_exemplars());
        h.record_exemplar(7, 99);
        assert_eq!(h.exemplar(3), None);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn exemplars_survive_concurrent_records() {
        use std::sync::Arc;
        // Each thread records values into a disjoint set of buckets,
        // tagged with traces that encode (bucket, thread). Afterwards
        // every hit bucket must hold an exemplar some thread actually
        // recorded into that bucket — overwrites race, misfiles do not.
        let h = Arc::new(Histogram::with_exemplars());
        let threads = 4;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for round in 0..1000u64 {
                        for bucket in 1..16usize {
                            // Value 2^(bucket-1) lands exactly in `bucket`.
                            let value = 1u64 << (bucket - 1);
                            let trace = (bucket as u64) << 32 | (t as u64) << 16 | (round & 0xFFFF);
                            h.record_exemplar(value, trace);
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        for bucket in 1..16usize {
            let trace = h.exemplar(bucket).expect("bucket was hit");
            assert_eq!(
                trace >> 32,
                bucket as u64,
                "bucket {bucket} holds an exemplar recorded for another bucket"
            );
        }
        // Quantile math is untouched by the extra exemplar store.
        assert_eq!(h.count(), threads as u64 * 1000 * 15);
    }

    #[test]
    fn clones_share_state() {
        let a = Histogram::new();
        let b = a.clone();
        a.record(5);
        b.record(7);
        assert_eq!(a.count(), 2);
        assert_eq!(b.max(), 7);
    }
}
