//! A named-metric registry with a Prometheus text exposition renderer.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed:
//! registration takes a lock on a `BTreeMap`, but every subsequent
//! increment is a single relaxed atomic op, so hot paths register once
//! and keep the handle. The registry itself is cheaply cloneable and
//! all clones share the same metric store.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `u64` (occupancy bytes, queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increments by one (queue-depth gauges: one enqueue).
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements by one, saturating at zero (one dequeue — saturation
    /// guards a racing read between a send and its depth bump).
    #[inline]
    pub fn dec(&self) {
        let mut current = self.value.load(Ordering::Relaxed);
        while current > 0 {
            match self.value.compare_exchange_weak(
                current,
                current - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote and newline must be escaped or a hostile
/// value (a policy name, a cache label) would corrupt the scrape text.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds the storage/render key `name{k="v",…}` (or just `name` with
/// no labels), escaping every label value.
fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut key = String::with_capacity(name.len() + labels.len() * 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(&escape_label_value(v));
        key.push('"');
    }
    key.push('}');
    key
}

/// Splits a storage key into its metric base name and the label block
/// (without braces), if any.
fn split_key(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(brace) => (&key[..brace], Some(&key[brace + 1..key.len() - 1])),
        None => (key, None),
    }
}

/// Renders one scalar metric kind (counters or gauges), grouping
/// labeled series of the same base name under one `# TYPE` header.
fn render_scalar<T>(
    out: &mut String,
    kind: &str,
    map: &BTreeMap<String, T>,
    get: impl Fn(&T) -> u64,
) {
    let mut families: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
    for (key, metric) in map {
        let (base, _) = split_key(key);
        families.entry(base).or_default().push((key, get(metric)));
    }
    for (base, series) in &families {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        for (key, value) in series {
            let _ = writeln!(out, "{key} {value}");
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The shared metric store. `Clone` is shallow: all clones render the
/// same metrics, so one registry can span broker, cache and cluster.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Returns the counter `name{labels}`, creating it on first use.
    /// Label values are escaped; series of one name render under a
    /// single `# TYPE` header.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .expect("counter registry poisoned");
        map.entry(labeled_key(name, labels)).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Returns the gauge `name{labels}`, creating it on first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge registry poisoned");
        map.entry(labeled_key(name, labels)).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Returns the histogram `name{labels}`, creating it on first use.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        map.entry(labeled_key(name, labels)).or_default().clone()
    }

    /// Returns the histogram `name{labels}`, creating it *with
    /// per-bucket exemplar retention* on first use (see
    /// [`Histogram::with_exemplars`]). If the series already exists —
    /// with or without exemplars — the existing handle is returned
    /// unchanged, so registration order decides exemplar storage.
    /// Rendering is identical either way: exemplars never appear in
    /// the Prometheus text format.
    pub fn histogram_with_exemplars(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        map.entry(labeled_key(name, labels))
            .or_insert_with(Histogram::with_exemplars)
            .clone()
    }

    /// Enumerates every registered counter as `(key, value)` in key
    /// order, where `key` is the full storage key (`name{labels}`).
    /// One lock + one pass; the timeseries snapshotter calls this once
    /// per window, never on the hot path.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Enumerates every registered gauge as `(key, value)` in key order.
    pub fn gauge_values(&self) -> Vec<(String, u64)> {
        self.inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Enumerates every registered histogram as `(key, buckets, sum)`
    /// in key order — raw bucket counts, not quantiles, so windowed
    /// deltas stay exact under merging.
    pub fn histogram_states(&self) -> Vec<(String, [u64; crate::histogram::BUCKET_COUNT], u64)> {
        self.inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.bucket_counts(), h.sum()))
            .collect()
    }

    /// Renders every registered metric in the Prometheus text
    /// exposition format. Counters and gauges are one sample each;
    /// histograms render as summaries (`{quantile="…"}` samples plus
    /// `_sum`/`_count`) with an extra `_max` gauge, since log-bucketed
    /// maxima are exact while quantiles are approximate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_scalar(
            &mut out,
            "counter",
            &self
                .inner
                .counters
                .lock()
                .expect("counter registry poisoned"),
            Counter::get,
        );
        render_scalar(
            &mut out,
            "gauge",
            &self.inner.gauges.lock().expect("gauge registry poisoned"),
            Gauge::get,
        );
        // Group histogram series by base name so labeled variants of
        // one metric share a single `# TYPE` header. (BTreeMap order
        // alone is not enough: `'{'` sorts after `'_'`, so a labeled
        // series would otherwise split its family around `name_sum`.)
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        let mut families: BTreeMap<&str, Vec<(&str, Option<&str>)>> = BTreeMap::new();
        for key in histograms.keys() {
            let (base, labels) = split_key(key);
            families.entry(base).or_default().push((key, labels));
        }
        for (base, series) in &families {
            let _ = writeln!(out, "# TYPE {base} summary");
            for (key, labels) in series {
                let snap = histograms[*key].snapshot();
                for (q, v) in [("0.5", snap.p50), ("0.9", snap.p90), ("0.99", snap.p99)] {
                    match labels {
                        Some(labels) => {
                            let _ = writeln!(out, "{base}{{{labels},quantile=\"{q}\"}} {v}");
                        }
                        None => {
                            let _ = writeln!(out, "{base}{{quantile=\"{q}\"}} {v}");
                        }
                    }
                }
                let suffix = labels.map_or(String::new(), |l| format!("{{{l}}}"));
                let _ = writeln!(out, "{base}_sum{suffix} {}", snap.sum);
                let _ = writeln!(out, "{base}_count{suffix} {}", snap.count);
            }
            let _ = writeln!(out, "# TYPE {base}_max gauge");
            for (key, labels) in series {
                let suffix = labels.map_or(String::new(), |l| format!("{{{l}}}"));
                let _ = writeln!(out, "{base}_max{suffix} {}", histograms[*key].max());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let registry = Registry::new();
        let a = registry.counter("bad_test_total");
        let b = registry.counter("bad_test_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("bad_test_total").get(), 3);
    }

    #[test]
    fn clones_render_the_same_store() {
        let registry = Registry::new();
        let clone = registry.clone();
        registry.counter("bad_clone_total").add(5);
        assert!(clone.render().contains("bad_clone_total 5"));
    }

    #[test]
    fn render_is_prometheus_text() {
        let registry = Registry::new();
        registry.counter("bad_hits_total").add(7);
        registry.gauge("bad_occupancy_bytes").set(1024);
        let h = registry.histogram("bad_latency_us");
        h.record(100);
        h.record(300);
        let text = registry.render();
        assert!(text.contains("# TYPE bad_hits_total counter\nbad_hits_total 7\n"));
        assert!(text.contains("# TYPE bad_occupancy_bytes gauge\nbad_occupancy_bytes 1024\n"));
        assert!(text.contains("# TYPE bad_latency_us summary\n"));
        assert!(text.contains("bad_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("bad_latency_us_sum 400\n"));
        assert!(text.contains("bad_latency_us_count 2\n"));
        assert!(text.contains("bad_latency_us_max 300\n"));
    }

    #[test]
    fn labeled_series_share_one_type_header() {
        let registry = Registry::new();
        registry
            .counter_with("bad_spans_total", &[("kind", "insert")])
            .add(2);
        registry
            .counter_with("bad_spans_total", &[("kind", "drop")])
            .inc();
        registry.counter("bad_spans_total").add(10);
        let text = registry.render();
        assert_eq!(text.matches("# TYPE bad_spans_total counter").count(), 1);
        assert!(text.contains("bad_spans_total{kind=\"insert\"} 2\n"));
        assert!(text.contains("bad_spans_total{kind=\"drop\"} 1\n"));
        assert!(text.contains("\nbad_spans_total 10\n"));
        // Same name + labels resolves to the same series.
        assert_eq!(
            registry
                .counter_with("bad_spans_total", &[("kind", "insert")])
                .get(),
            2
        );
    }

    #[test]
    fn labeled_histograms_merge_quantile_labels() {
        let registry = Registry::new();
        let h = registry.histogram_with("bad_lag_us", &[("stage", "insert")]);
        h.record(10);
        h.record(20);
        registry.histogram("bad_lag_us").record(5);
        let text = registry.render();
        assert_eq!(text.matches("# TYPE bad_lag_us summary").count(), 1);
        assert_eq!(text.matches("# TYPE bad_lag_us_max gauge").count(), 1);
        assert!(text.contains("bad_lag_us{stage=\"insert\",quantile=\"0.5\"}"));
        assert!(text.contains("bad_lag_us{quantile=\"0.5\"}"));
        assert!(text.contains("bad_lag_us_sum{stage=\"insert\"} 30\n"));
        assert!(text.contains("bad_lag_us_count{stage=\"insert\"} 2\n"));
        assert!(text.contains("bad_lag_us_max{stage=\"insert\"} 20\n"));
        assert!(text.contains("\nbad_lag_us_sum 5\n"));
    }

    /// Inverse of [`escape_label_value`], for the round-trip test.
    fn unescape_label_value(escaped: &str) -> String {
        let mut out = String::with_capacity(escaped.len());
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn hostile_label_values_round_trip_through_render() {
        let hostile = "lsc\"z\\phi\nnewline";
        let registry = Registry::new();
        registry
            .counter_with("bad_drop_total", &[("policy", hostile)])
            .add(3);
        let text = registry.render();
        // The scrape text must stay line-oriented: exactly the TYPE
        // line and one sample line, raw newline escaped away.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "# TYPE bad_drop_total counter");
        let sample = lines[1];
        assert!(sample.ends_with(" 3"));
        // Parse the label value back out and invert the escaping.
        let start = sample.find("policy=\"").unwrap() + "policy=\"".len();
        let end = sample.rfind("\"}").unwrap();
        assert_eq!(unescape_label_value(&sample[start..end]), hostile);
    }
}
