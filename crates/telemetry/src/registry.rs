//! A named-metric registry with a Prometheus text exposition renderer.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed:
//! registration takes a lock on a `BTreeMap`, but every subsequent
//! increment is a single relaxed atomic op, so hot paths register once
//! and keep the handle. The registry itself is cheaply cloneable and
//! all clones share the same metric store.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::Histogram;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `u64` (occupancy bytes, queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The shared metric store. `Clone` is shallow: all clones render the
/// same metrics, so one registry can span broker, cache and cluster.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self
            .inner
            .counters
            .lock()
            .expect("counter registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("gauge registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Returns the histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned");
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Renders every registered metric in the Prometheus text
    /// exposition format. Counters and gauges are one sample each;
    /// histograms render as summaries (`{quantile="…"}` samples plus
    /// `_sum`/`_count`) with an extra `_max` gauge, since log-bucketed
    /// maxima are exact while quantiles are approximate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self
            .inner
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
        {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", counter.get());
        }
        for (name, gauge) in self
            .inner
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
        {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", gauge.get());
        }
        for (name, histogram) in self
            .inner
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
        {
            let snap = histogram.snapshot();
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", snap.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", snap.p90);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", snap.p99);
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
            let _ = writeln!(out, "# TYPE {name}_max gauge");
            let _ = writeln!(out, "{name}_max {}", snap.max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_shared_by_name() {
        let registry = Registry::new();
        let a = registry.counter("bad_test_total");
        let b = registry.counter("bad_test_total");
        a.inc();
        b.add(2);
        assert_eq!(registry.counter("bad_test_total").get(), 3);
    }

    #[test]
    fn clones_render_the_same_store() {
        let registry = Registry::new();
        let clone = registry.clone();
        registry.counter("bad_clone_total").add(5);
        assert!(clone.render().contains("bad_clone_total 5"));
    }

    #[test]
    fn render_is_prometheus_text() {
        let registry = Registry::new();
        registry.counter("bad_hits_total").add(7);
        registry.gauge("bad_occupancy_bytes").set(1024);
        let h = registry.histogram("bad_latency_us");
        h.record(100);
        h.record(300);
        let text = registry.render();
        assert!(text.contains("# TYPE bad_hits_total counter\nbad_hits_total 7\n"));
        assert!(text.contains("# TYPE bad_occupancy_bytes gauge\nbad_occupancy_bytes 1024\n"));
        assert!(text.contains("# TYPE bad_latency_us summary\n"));
        assert!(text.contains("bad_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("bad_latency_us_sum 400\n"));
        assert!(text.contains("bad_latency_us_count 2\n"));
        assert!(text.contains("bad_latency_us_max 300\n"));
    }
}
