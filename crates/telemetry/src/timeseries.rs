//! Windowed time-series history over the metric registry.
//!
//! The `/metrics` scrape is a point-in-time readout: it can say what
//! the counters are *now*, but not how fast they are moving, nor what
//! the p99 looked like over the last five minutes. This module closes
//! that gap with a fixed-capacity ring of periodic snapshots taken in
//! *virtual* time: every `window_us` the store diffs the registry
//! against the previous snapshot and appends one delta-encoded
//! [`Window`]. Counters store sparse non-zero deltas, gauges store
//! their (dense) current values, histograms store sparse per-bucket
//! count deltas plus the sum delta — so a window is exact windowed
//! data, not a lossy rate estimate, and arbitrary lookbacks are just
//! merges of consecutive windows.
//!
//! The store is read by the `/timeseries` scrape endpoint and by the
//! health engine (rates feed burn-rate alerting, windowed hit/miss
//! deltas feed drift detection). Snapshots take the registry locks
//! once per window — never on a metric hot path — so the overhead
//! rides the same amortised-maintenance budget as TTL retuning.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, BUCKET_COUNT};
use crate::json::{self, ObjectWriter};
use crate::registry::Registry;

/// How often to snapshot and how much history to keep.
#[derive(Clone, Copy, Debug)]
pub struct TimeSeriesConfig {
    /// Virtual-time width of one window in microseconds.
    pub window_us: u64,
    /// Number of windows retained; the ring overwrites the oldest.
    pub capacity: usize,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        Self {
            // One virtual minute per window, ~2 virtual hours of
            // history: enough to span the paper's 5-minute TTL
            // recompute interval many times over.
            window_us: 60_000_000,
            capacity: 128,
        }
    }
}

/// One retained window: sparse deltas against the previous snapshot.
#[derive(Clone, Debug)]
pub struct Window {
    /// Monotonic sequence number (total windows ever taken, 1-based).
    pub seq: u64,
    /// Virtual timestamp at which the snapshot was taken (window end).
    pub t_us: u64,
    /// `(metric id, counter delta)` — only non-zero deltas stored.
    pub counters: Vec<(u32, u64)>,
    /// `(metric id, gauge value)` — absolute, stored every window.
    pub gauges: Vec<(u32, u64)>,
    /// Per-histogram sparse bucket deltas.
    pub histograms: Vec<HistogramDelta>,
}

/// Sparse windowed change of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramDelta {
    /// Metric id (see [`TimeSeriesStore::metric_name`]).
    pub id: u32,
    /// `(bucket index, count delta)` — only buckets that moved.
    pub buckets: Vec<(u8, u64)>,
    /// Delta of the histogram sum over the window.
    pub sum_delta: u64,
}

/// Windowed summary statistics over a lookback (see
/// [`TimeSeriesStore::stats`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesStats {
    /// Number of windows that contributed.
    pub windows: usize,
    /// Smallest per-window value (counter delta or gauge level).
    pub min: u64,
    /// Largest per-window value.
    pub max: u64,
    /// Mean per-window value.
    pub avg: f64,
    /// Value in the newest contributing window.
    pub last: u64,
}

struct Inner {
    registry: Registry,
    config: TimeSeriesConfig,
    next_due_us: u64,
    /// Interned metric names; `Window` rows refer to them by index.
    names: Vec<String>,
    ids: BTreeMap<String, u32>,
    /// Cumulative counter value as of the latest snapshot, by id.
    last_counters: BTreeMap<u32, u64>,
    /// Cumulative counter value *before* the oldest retained window,
    /// by id — maintained on eviction so full series reconstruction
    /// survives ring overwrite.
    base_counters: BTreeMap<u32, u64>,
    /// Histogram bucket/sum state as of the latest snapshot.
    last_histograms: BTreeMap<u32, ([u64; BUCKET_COUNT], u64)>,
    ring: VecDeque<Window>,
    seq: u64,
    overwritten: u64,
}

impl Inner {
    fn intern(names: &mut Vec<String>, ids: &mut BTreeMap<String, u32>, name: &str) -> u32 {
        if let Some(&id) = ids.get(name) {
            return id;
        }
        let id = names.len() as u32;
        names.push(name.to_owned());
        ids.insert(name.to_owned(), id);
        id
    }

    fn snapshot(&mut self, t_us: u64) {
        self.seq += 1;
        let mut window = Window {
            seq: self.seq,
            t_us,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        for (key, value) in self.registry.counter_values() {
            let id = Self::intern(&mut self.names, &mut self.ids, &key);
            let prev = self.last_counters.get(&id).copied().unwrap_or(0);
            // Counters are monotone; saturate defensively anyway.
            let delta = value.saturating_sub(prev);
            self.last_counters.insert(id, value);
            if delta != 0 {
                window.counters.push((id, delta));
            }
        }
        for (key, value) in self.registry.gauge_values() {
            let id = Self::intern(&mut self.names, &mut self.ids, &key);
            window.gauges.push((id, value));
        }
        for (key, buckets, sum) in self.registry.histogram_states() {
            let id = Self::intern(&mut self.names, &mut self.ids, &key);
            let (prev_buckets, prev_sum) = self
                .last_histograms
                .get(&id)
                .copied()
                .unwrap_or(([0; BUCKET_COUNT], 0));
            let mut sparse = Vec::new();
            for (i, (&now, &then)) in buckets.iter().zip(prev_buckets.iter()).enumerate() {
                let d = now.saturating_sub(then);
                if d != 0 {
                    sparse.push((i as u8, d));
                }
            }
            let sum_delta = sum.saturating_sub(prev_sum);
            self.last_histograms.insert(id, (buckets, sum));
            if !sparse.is_empty() || sum_delta != 0 {
                window.histograms.push(HistogramDelta {
                    id,
                    buckets: sparse,
                    sum_delta,
                });
            }
        }
        if self.ring.len() == self.config.capacity {
            if let Some(evicted) = self.ring.pop_front() {
                // Fold the evicted deltas into the base so cumulative
                // reconstruction stays exact after overwrite.
                for (id, delta) in evicted.counters {
                    *self.base_counters.entry(id).or_insert(0) += delta;
                }
                self.overwritten += 1;
            }
        }
        self.ring.push_back(window);
    }

    /// Windows whose end time falls in `(now_us - lookback_us, now_us]`,
    /// oldest first.
    fn select(&self, lookback_us: u64, now_us: u64) -> impl Iterator<Item = &Window> {
        let cutoff = now_us.saturating_sub(lookback_us);
        self.ring
            .iter()
            .filter(move |w| w.t_us > cutoff && w.t_us <= now_us)
    }
}

/// The shared, cloneable time-series store. All clones snapshot and
/// query the same ring.
#[derive(Clone)]
pub struct TimeSeriesStore {
    inner: Arc<Mutex<Inner>>,
}

impl TimeSeriesStore {
    /// Creates a store observing `registry`. The first window is due
    /// `window_us` after the first `due`/`tick` timestamp seen.
    pub fn new(registry: Registry, config: TimeSeriesConfig) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Inner {
                registry,
                config,
                next_due_us: 0,
                names: Vec::new(),
                ids: BTreeMap::new(),
                last_counters: BTreeMap::new(),
                base_counters: BTreeMap::new(),
                last_histograms: BTreeMap::new(),
                ring: VecDeque::with_capacity(config.capacity),
                seq: 0,
                overwritten: 0,
            })),
        }
    }

    /// Virtual window width in microseconds.
    pub fn window_us(&self) -> u64 {
        self.lock().config.window_us
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("timeseries store poisoned")
    }

    /// Whether a window boundary has been crossed at virtual `t_us`.
    pub fn due(&self, t_us: u64) -> bool {
        t_us >= self.lock().next_due_us
    }

    /// Takes a snapshot if the window has elapsed; returns whether one
    /// was taken. The deadline advances to `max(deadline, t + window)`
    /// like [`crate::Sampler`], so bursts and non-monotonic clocks
    /// cannot schedule storms of snapshots.
    pub fn tick(&self, t_us: u64) -> bool {
        let mut inner = self.lock();
        if t_us < inner.next_due_us {
            return false;
        }
        inner.snapshot(t_us);
        let window = inner.config.window_us;
        inner.next_due_us = inner.next_due_us.max(t_us.saturating_add(window));
        true
    }

    /// Forces a snapshot regardless of the deadline (tests, shutdown
    /// flushes).
    pub fn force_snapshot(&self, t_us: u64) {
        let mut inner = self.lock();
        inner.snapshot(t_us);
        let window = inner.config.window_us;
        inner.next_due_us = inner.next_due_us.max(t_us.saturating_add(window));
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Whether no window has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// Total windows ever taken (retained + overwritten).
    pub fn total_windows(&self) -> u64 {
        self.lock().seq
    }

    /// Windows evicted by ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.lock().overwritten
    }

    /// Resolves an interned metric id back to its name.
    pub fn metric_name(&self, id: u32) -> Option<String> {
        self.lock().names.get(id as usize).cloned()
    }

    /// Per-second rate of counter `name` over the trailing
    /// `lookback_us` of virtual time ending at `now_us`: the summed
    /// windowed deltas divided by the covered span (`window_us` per
    /// contributing window). `None` when no window covers the range or
    /// the counter is unknown.
    pub fn rate_per_sec(&self, name: &str, lookback_us: u64, now_us: u64) -> Option<f64> {
        let inner = self.lock();
        let id = *inner.ids.get(name)?;
        let mut total = 0u64;
        let mut windows = 0usize;
        for w in inner.select(lookback_us, now_us) {
            windows += 1;
            if let Some(&(_, delta)) = w.counters.iter().find(|(i, _)| *i == id) {
                total += delta;
            }
        }
        if windows == 0 {
            return None;
        }
        let span_s = (windows as u64 * inner.config.window_us) as f64 / 1e6;
        if span_s <= 0.0 {
            return None;
        }
        Some(total as f64 / span_s)
    }

    /// Sum of counter `name`'s deltas over the lookback (the windowed
    /// count itself, before rate normalisation). `None` when no window
    /// covers the range or the counter is unknown.
    pub fn windowed_delta(&self, name: &str, lookback_us: u64, now_us: u64) -> Option<u64> {
        let inner = self.lock();
        let id = *inner.ids.get(name)?;
        let mut total = 0u64;
        let mut any = false;
        for w in inner.select(lookback_us, now_us) {
            any = true;
            if let Some(&(_, delta)) = w.counters.iter().find(|(i, _)| *i == id) {
                total += delta;
            }
        }
        any.then_some(total)
    }

    /// Sliding-window quantile of histogram `name`: merges the bucket
    /// deltas of every window in the lookback and reads the quantile
    /// off the merged distribution, reporting the containing bucket's
    /// upper bound (an over-approximation, same contract as
    /// [`Histogram::quantile`] minus the exact-max clamp, which a
    /// windowed view cannot know).
    pub fn window_quantile(
        &self,
        name: &str,
        q: f64,
        lookback_us: u64,
        now_us: u64,
    ) -> Option<u64> {
        let inner = self.lock();
        let id = *inner.ids.get(name)?;
        let mut merged = [0u64; BUCKET_COUNT];
        let mut count = 0u64;
        for w in inner.select(lookback_us, now_us) {
            for h in &w.histograms {
                if h.id == id {
                    for &(bucket, delta) in &h.buckets {
                        merged[bucket as usize] += delta;
                        count += delta;
                    }
                }
            }
        }
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in merged.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Histogram::bucket_upper(i));
            }
        }
        Some(Histogram::bucket_upper(BUCKET_COUNT - 1))
    }

    /// Min/max/avg/last of a series over the lookback. For counters the
    /// per-window value is the delta; for gauges it is the sampled
    /// level. `None` for unknown names or empty ranges.
    pub fn stats(&self, name: &str, lookback_us: u64, now_us: u64) -> Option<SeriesStats> {
        let inner = self.lock();
        let id = *inner.ids.get(name)?;
        let is_gauge = inner
            .ring
            .iter()
            .any(|w| w.gauges.iter().any(|(i, _)| *i == id));
        let mut values = Vec::new();
        for w in inner.select(lookback_us, now_us) {
            if is_gauge {
                if let Some(&(_, v)) = w.gauges.iter().find(|(i, _)| *i == id) {
                    values.push(v);
                }
            } else {
                // Counter: a window without a stored delta is a zero.
                let v = w
                    .counters
                    .iter()
                    .find(|(i, _)| *i == id)
                    .map(|&(_, d)| d)
                    .unwrap_or(0);
                values.push(v);
            }
        }
        if values.is_empty() {
            return None;
        }
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let sum: u64 = values.iter().sum();
        Some(SeriesStats {
            windows: values.len(),
            min,
            max,
            avg: sum as f64 / values.len() as f64,
            last: *values.last().expect("non-empty"),
        })
    }

    /// Reconstructs the cumulative series of counter `name` across the
    /// retained ring: `(t_us, cumulative value)` per window, oldest
    /// first. The base absorbed from overwritten windows is included,
    /// so the newest point equals the live counter as of the last
    /// snapshot — the delta round-trip is exact.
    pub fn reconstruct_counter(&self, name: &str) -> Vec<(u64, u64)> {
        let inner = self.lock();
        let Some(&id) = inner.ids.get(name) else {
            return Vec::new();
        };
        let mut acc = inner.base_counters.get(&id).copied().unwrap_or(0);
        let mut out = Vec::with_capacity(inner.ring.len());
        for w in &inner.ring {
            if let Some(&(_, delta)) = w.counters.iter().find(|(i, _)| *i == id) {
                acc += delta;
            }
            out.push((w.t_us, acc));
        }
        out
    }

    /// Renders the store as JSON for the `/timeseries` endpoint: ring
    /// metadata, a per-metric summary over the trailing
    /// `summary_lookback_windows` windows, and the raw counter deltas
    /// of the newest `raw_tail_windows` windows (bounded so the body
    /// stays curl-sized even with a full ring).
    pub fn to_json(&self, raw_tail_windows: usize, summary_lookback_windows: usize) -> String {
        let inner = self.lock();
        let now_us = inner.ring.back().map(|w| w.t_us).unwrap_or(0);
        let lookback_us = (summary_lookback_windows as u64).saturating_mul(inner.config.window_us);
        let mut body = String::with_capacity(4096);
        {
            let mut obj = ObjectWriter::new(&mut body);
            obj.field_u64("window_us", inner.config.window_us);
            obj.field_u64("capacity", inner.config.capacity as u64);
            obj.field_u64("windows", inner.ring.len() as u64);
            obj.field_u64("total_windows", inner.seq);
            obj.field_u64("overwritten", inner.overwritten);
            obj.field_u64("newest_t_us", now_us);

            // Per-metric summaries over the trailing lookback.
            let mut series = String::from("[");
            let mut first = true;
            let cutoff = now_us.saturating_sub(lookback_us);
            let selected: Vec<&Window> = inner
                .ring
                .iter()
                .filter(|w| w.t_us > cutoff && w.t_us <= now_us)
                .collect();
            let span_s = (selected.len() as u64 * inner.config.window_us) as f64 / 1e6;
            // Counters.
            let mut counter_totals: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
            for w in &selected {
                for &(id, delta) in &w.counters {
                    let entry = counter_totals.entry(id).or_insert((0, 0, 0));
                    entry.0 += delta;
                    entry.1 = entry.1.max(delta);
                    entry.2 = delta;
                }
            }
            for (id, (total, max_delta, last_delta)) in &counter_totals {
                if !first {
                    series.push(',');
                }
                first = false;
                let mut row = String::new();
                {
                    let mut o = ObjectWriter::new(&mut row);
                    o.field_str("name", &inner.names[*id as usize]);
                    o.field_str("kind", "counter");
                    o.field_u64("delta", *total);
                    o.field_u64("max_window_delta", *max_delta);
                    o.field_u64("last_window_delta", *last_delta);
                    if span_s > 0.0 {
                        o.field_f64("rate_per_s", *total as f64 / span_s);
                    }
                }
                series.push_str(&row);
            }
            // Gauges: last sampled level.
            if let Some(last) = selected.last() {
                for &(id, value) in &last.gauges {
                    if !first {
                        series.push(',');
                    }
                    first = false;
                    let mut row = String::new();
                    {
                        let mut o = ObjectWriter::new(&mut row);
                        o.field_str("name", &inner.names[id as usize]);
                        o.field_str("kind", "gauge");
                        o.field_u64("last", value);
                    }
                    series.push_str(&row);
                }
            }
            // Histograms: merged windowed count + sum.
            let mut hist_totals: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
            for w in &selected {
                for h in &w.histograms {
                    let entry = hist_totals.entry(h.id).or_insert((0, 0));
                    entry.0 += h.buckets.iter().map(|&(_, d)| d).sum::<u64>();
                    entry.1 += h.sum_delta;
                }
            }
            for (id, (count, sum)) in &hist_totals {
                if !first {
                    series.push(',');
                }
                first = false;
                let mut row = String::new();
                {
                    let mut o = ObjectWriter::new(&mut row);
                    o.field_str("name", &inner.names[*id as usize]);
                    o.field_str("kind", "histogram");
                    o.field_u64("count", *count);
                    o.field_u64("sum", *sum);
                    if *count > 0 {
                        o.field_f64("mean", *sum as f64 / *count as f64);
                    }
                }
                series.push_str(&row);
            }
            series.push(']');
            obj.field_raw("series", &series);

            // Raw counter deltas of the newest windows (bounded tail).
            let tail_start = inner.ring.len().saturating_sub(raw_tail_windows);
            let mut samples = String::from("[");
            for (i, w) in inner.ring.iter().enumerate().skip(tail_start) {
                if i > tail_start {
                    samples.push(',');
                }
                let mut row = String::new();
                {
                    let mut o = ObjectWriter::new(&mut row);
                    o.field_u64("seq", w.seq);
                    o.field_u64("t_us", w.t_us);
                    let mut deltas = String::from("{");
                    for (j, &(id, delta)) in w.counters.iter().enumerate() {
                        if j > 0 {
                            deltas.push(',');
                        }
                        deltas.push_str(&json::quote(&inner.names[id as usize]));
                        deltas.push(':');
                        deltas.push_str(&delta.to_string());
                    }
                    deltas.push('}');
                    o.field_raw("counters", &deltas);
                }
                samples.push_str(&row);
            }
            samples.push(']');
            obj.field_raw("samples", &samples);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(window_us: u64, capacity: usize) -> (Registry, TimeSeriesStore) {
        let registry = Registry::new();
        let ts = TimeSeriesStore::new(
            registry.clone(),
            TimeSeriesConfig {
                window_us,
                capacity,
            },
        );
        (registry, ts)
    }

    #[test]
    fn tick_honours_the_window_deadline() {
        let (_registry, ts) = store(1_000_000, 8);
        assert!(ts.tick(0)); // first tick snapshots immediately
        assert!(!ts.tick(500_000));
        assert!(ts.tick(1_000_000));
        assert_eq!(ts.len(), 2);
        // Burst of late ticks cannot storm: deadline moved past t.
        assert!(!ts.tick(1_000_001));
        assert!(!ts.tick(1_000_002));
    }

    #[test]
    fn rate_is_windowed_delta_over_span() {
        let (registry, ts) = store(1_000_000, 8);
        let c = registry.counter("bad_ts_ops_total");
        ts.force_snapshot(0);
        c.add(100);
        ts.force_snapshot(1_000_000);
        c.add(300);
        ts.force_snapshot(2_000_000);
        // Lookback of one window: 300 ops / 1 s.
        let r = ts.rate_per_sec("bad_ts_ops_total", 1_000_000, 2_000_000);
        assert_eq!(r, Some(300.0));
        // Lookback of two windows: 400 ops / 2 s.
        let r = ts.rate_per_sec("bad_ts_ops_total", 2_000_000, 2_000_000);
        assert_eq!(r, Some(200.0));
        assert_eq!(ts.rate_per_sec("unknown", 1_000_000, 2_000_000), None);
    }

    #[test]
    fn stats_cover_counters_and_gauges() {
        let (registry, ts) = store(1_000_000, 8);
        let c = registry.counter("bad_ts_n_total");
        let g = registry.gauge("bad_ts_level");
        ts.force_snapshot(0);
        c.add(5);
        g.set(10);
        ts.force_snapshot(1_000_000);
        c.add(15);
        g.set(30);
        ts.force_snapshot(2_000_000);
        let s = ts.stats("bad_ts_n_total", 2_000_000, 2_000_000).unwrap();
        assert_eq!((s.min, s.max, s.last, s.windows), (5, 15, 15, 2));
        assert_eq!(s.avg, 10.0);
        let s = ts.stats("bad_ts_level", 2_000_000, 2_000_000).unwrap();
        assert_eq!((s.min, s.max, s.last), (10, 30, 30));
    }

    #[test]
    fn window_quantile_merges_bucket_deltas() {
        let (registry, ts) = store(1_000_000, 8);
        let h = registry.histogram("bad_ts_lat_us");
        ts.force_snapshot(0);
        for _ in 0..90 {
            h.record(100); // bucket [64,127]
        }
        ts.force_snapshot(1_000_000);
        for _ in 0..10 {
            h.record(10_000); // bucket [8192,16383]
        }
        ts.force_snapshot(2_000_000);
        // Over both windows: p50 in the low bucket, p99 in the high one.
        let p50 = ts
            .window_quantile("bad_ts_lat_us", 0.5, 2_000_000, 2_000_000)
            .unwrap();
        let p99 = ts
            .window_quantile("bad_ts_lat_us", 0.99, 2_000_000, 2_000_000)
            .unwrap();
        assert!(p50 >= 100 && p50 < 128, "p50={p50}");
        assert!(p99 >= 10_000 && p99 < 16_384, "p99={p99}");
        // Only the newest window: all mass is high.
        let p50 = ts
            .window_quantile("bad_ts_lat_us", 0.5, 1_000_000, 2_000_000)
            .unwrap();
        assert!(p50 >= 10_000, "p50={p50}");
    }

    #[test]
    fn ring_overwrites_oldest_and_reconstruction_round_trips() {
        let (registry, ts) = store(1_000_000, 4);
        let c = registry.counter("bad_ts_rt_total");
        // 10 windows into a 4-slot ring, varying deltas.
        for i in 0..10u64 {
            c.add(i + 1);
            ts.force_snapshot(i * 1_000_000);
        }
        assert_eq!(ts.len(), 4);
        assert_eq!(ts.total_windows(), 10);
        assert_eq!(ts.overwritten(), 6);
        let series = ts.reconstruct_counter("bad_ts_rt_total");
        assert_eq!(series.len(), 4);
        // The newest reconstructed point must equal the live counter:
        // deltas + evicted base lose nothing.
        assert_eq!(series.last().unwrap().1, c.get());
        assert_eq!(c.get(), (1..=10).sum::<u64>());
        // And each retained step matches the per-window delta.
        assert_eq!(series[3].1 - series[2].1, 10);
        assert_eq!(series[1].1 - series[0].1, 8);
        // Oldest retained window is seq 7 (1-based), t = 6s.
        assert_eq!(series[0].0, 6_000_000);
    }

    #[test]
    fn to_json_is_bounded_and_valid_shape() {
        let (registry, ts) = store(1_000_000, 8);
        let c = registry.counter("bad_ts_json_total");
        let h = registry.histogram("bad_ts_json_us");
        registry.gauge("bad_ts_json_level").set(42);
        for i in 0..6u64 {
            c.add(2);
            h.record(50);
            ts.force_snapshot(i * 1_000_000);
        }
        let body = ts.to_json(2, 8);
        assert!(body.starts_with('{') && body.ends_with('}'));
        assert!(body.contains("\"window_us\":1000000"));
        assert!(body.contains("\"windows\":6"));
        assert!(body.contains("bad_ts_json_total"));
        assert!(body.contains("\"kind\":\"gauge\""));
        assert!(body.contains("\"kind\":\"histogram\""));
        // Raw tail bounded to 2 windows.
        assert_eq!(body.matches("\"seq\":").count(), 2);
    }

    #[test]
    fn late_registered_metrics_join_the_series() {
        let (registry, ts) = store(1_000_000, 8);
        ts.force_snapshot(0);
        let c = registry.counter("bad_ts_late_total");
        c.add(7);
        ts.force_snapshot(1_000_000);
        // First sighting records the full value as the first delta.
        assert_eq!(
            ts.windowed_delta("bad_ts_late_total", 1_000_000, 1_000_000),
            Some(7)
        );
    }
}
