//! Continuous hot-path profiler: lock-contention attribution and
//! stage-latency breakdown for the paper's Algorithm 1 GET path.
//!
//! Three layers, all std-only and cheap enough to leave on:
//!
//! - **Instrumented locks** — [`LockSite::lock`] wraps a shard mutex
//!   (or the coalescer mutex) acquisition. The uncontended fast path is
//!   one `try_lock` plus one tick pair for hold time, no allocation;
//!   only when `try_lock` would block does the site count a contention
//!   and time the wait. Wait/hold distributions and contention counts
//!   render as `bad_profile_lock_*{site="…"}` series.
//! - **Stage timers** — an [`OpTimer`] carries a running timestamp
//!   through one operation; each [`Profiler::stage`] call attributes
//!   the time since the previous boundary to a static [`StagePath`]
//!   (`get_all_pending;lock_wait`, `insert;victim_scan`, …). Deltas
//!   accumulate *inside* the timer (a boundary is one tick read and
//!   two stores); [`Profiler::finish`] drains one entry per touched
//!   path into a fixed-capacity per-thread ring, which folds into the
//!   shared per-path histograms in batches when it fills — the
//!   shared-memory traffic is amortized over [`RING_CAPACITY`]
//!   records. Every boundary also notes its path in a thread-local
//!   ([`last_stage_path`]), the "what was this thread doing" hook for
//!   anomaly dumps.
//! - **Exemplars** — every stage histogram bucket retains the most
//!   recent trace id that landed in it
//!   ([`crate::Histogram::with_exemplars`]), so a `/profile` latency
//!   outlier links straight to the flight-recorder spans of the
//!   operation that produced it.
//!
//! Timestamps come from [`ticks`]: the TSC on `x86_64` (calibrated
//! against `Instant` once per process, assuming the constant-TSC
//! behaviour of every post-2008 part), a monotonic `Instant` delta
//! elsewhere. Reading the TSC costs a fraction of a `clock_gettime`,
//! which is what keeps full profiling inside the ≤10 % overhead gate.
//!
//! The profiler is metadata-only: no instrumentation point influences
//! an admission, eviction or TTL decision, so a profiled `shards = 1`
//! manager stays byte-identical to the monolithic oracle (pinned by
//! `oracle_parity`).

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, TryLockError, Weak};
use std::time::Instant;

use crate::histogram::{Histogram, BUCKET_COUNT};
use crate::json::ObjectWriter;
use crate::registry::{Counter, Registry};

/// Capacity of the per-thread stage-sample ring. Folding into the
/// shared histograms happens at most once per this many records.
pub const RING_CAPACITY: usize = 64;

// ---------------------------------------------------------------------------
// Cheap clock
// ---------------------------------------------------------------------------

struct Clock {
    /// Process-start reference for the non-TSC fallback; only read by
    /// the fallback `raw_ticks`, so it is dead weight on `x86_64`.
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    start: Instant,
    /// Nanoseconds per raw tick (1.0 on the `Instant` fallback).
    ns_per_tick: f64,
}

static CLOCK: OnceLock<Clock> = OnceLock::new();

#[cfg(target_arch = "x86_64")]
#[inline]
fn raw_ticks() -> u64 {
    // SAFETY: RDTSC has no preconditions; it is unprivileged on every
    // OS this runs on.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(target_arch = "x86_64")]
fn make_clock() -> Clock {
    // Calibrate the TSC against the OS monotonic clock over a short
    // spin. 2 ms keeps first-use latency negligible while bounding the
    // frequency error well under 1 % — stage timings are attribution
    // data, not billing data.
    let start = Instant::now();
    let t0 = raw_ticks();
    let elapsed = loop {
        let elapsed = start.elapsed();
        if elapsed.as_micros() >= 2_000 {
            break elapsed;
        }
        std::hint::spin_loop();
    };
    let ticks = raw_ticks().wrapping_sub(t0);
    let ns_per_tick = if ticks == 0 {
        1.0
    } else {
        elapsed.as_nanos() as f64 / ticks as f64
    };
    Clock { start, ns_per_tick }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn raw_ticks() -> u64 {
    clock().start.elapsed().as_nanos() as u64
}

#[cfg(not(target_arch = "x86_64"))]
fn make_clock() -> Clock {
    Clock {
        start: Instant::now(),
        ns_per_tick: 1.0,
    }
}

fn clock() -> &'static Clock {
    CLOCK.get_or_init(make_clock)
}

/// A raw timestamp from the cheapest monotonic-enough source the
/// target offers. Only differences of two `ticks()` readings are
/// meaningful; convert with [`ticks_to_ns`].
#[inline]
pub fn ticks() -> u64 {
    // Touch the calibration before the first reading so a tick pair
    // never straddles the calibration spin.
    let _ = clock();
    raw_ticks()
}

/// Converts a difference of two [`ticks`] readings to nanoseconds.
#[inline]
pub fn ticks_to_ns(delta: u64) -> u64 {
    (delta as f64 * clock().ns_per_tick) as u64
}

// ---------------------------------------------------------------------------
// Stage paths
// ---------------------------------------------------------------------------

/// The closed set of stage paths the hot paths decompose into. Paths
/// are static so recording is an array index, not an interning lookup;
/// the `root;leaf` names are already in folded-stack form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StagePath {
    /// Whole `get_all_pending` / `plan_get` operation (root).
    GetTotal,
    /// Shard routing: splitmix64 hash + per-shard grouping.
    GetRoute,
    /// Waiting on (and acquiring) shard mutexes on the GET path.
    GetLockWait,
    /// In-cache range lookup under the shard lock.
    GetLookup,
    /// Ghost-cache shadow replay of the GET access.
    GetShadowReplay,
    /// Serving misses out of the coalescer's sideline buffer.
    GetCoalesceHold,
    /// The cluster round trip for deduplicated primary fetches.
    GetClusterRtt,
    /// Post-delivery consume acknowledgement under the shard lock.
    GetAck,
    /// Seqlock snapshot read that served a plan without the shard lock.
    GetOptimisticRead,
    /// Optimistic read attempt that lost the generation race and fell
    /// back to the locked path.
    GetSeqlockRetry,
    /// Draining deferred hit/ack records from the read mailbox while a
    /// shard lock is held.
    GetAckDrain,
    /// Whole `insert` operation (root).
    InsertTotal,
    /// Waiting on (and acquiring) the shard mutex on the insert path.
    InsertLockWait,
    /// Admission + map insert + policy reindex.
    InsertApply,
    /// The `enforce_budget` victim-selection/eviction loop.
    InsertVictimScan,
    /// Ghost-cache shadow replay of the insert.
    InsertShadowReplay,
    /// Whole `maintain` operation (root).
    MaintainTotal,
    /// Waiting on (and acquiring) shard mutexes during maintenance.
    MaintainLockWait,
    /// TTL recomputation + expiry sweep under the shard lock.
    MaintainTtlExpiry,
    /// Occupancy-weighted budget rebalancing across shards.
    MaintainRebalance,
    /// Autopilot snapshot/evaluate/promote tick.
    MaintainAutopilot,
}

impl StagePath {
    /// Number of stage paths (array sizes).
    pub const COUNT: usize = 21;

    /// Every path, in render order.
    pub const ALL: [StagePath; Self::COUNT] = [
        StagePath::GetTotal,
        StagePath::GetRoute,
        StagePath::GetLockWait,
        StagePath::GetLookup,
        StagePath::GetShadowReplay,
        StagePath::GetCoalesceHold,
        StagePath::GetClusterRtt,
        StagePath::GetAck,
        StagePath::GetOptimisticRead,
        StagePath::GetSeqlockRetry,
        StagePath::GetAckDrain,
        StagePath::InsertTotal,
        StagePath::InsertLockWait,
        StagePath::InsertApply,
        StagePath::InsertVictimScan,
        StagePath::InsertShadowReplay,
        StagePath::MaintainTotal,
        StagePath::MaintainLockWait,
        StagePath::MaintainTtlExpiry,
        StagePath::MaintainRebalance,
        StagePath::MaintainAutopilot,
    ];

    /// The folded-stack name (`root` or `root;leaf`).
    pub const fn name(self) -> &'static str {
        match self {
            StagePath::GetTotal => "get_all_pending",
            StagePath::GetRoute => "get_all_pending;route",
            StagePath::GetLockWait => "get_all_pending;lock_wait",
            StagePath::GetLookup => "get_all_pending;lookup",
            StagePath::GetShadowReplay => "get_all_pending;shadow_replay",
            StagePath::GetCoalesceHold => "get_all_pending;coalesce_hold",
            StagePath::GetClusterRtt => "get_all_pending;cluster_rtt",
            StagePath::GetAck => "get_all_pending;ack_consume",
            StagePath::GetOptimisticRead => "get_all_pending;optimistic_read",
            StagePath::GetSeqlockRetry => "get_all_pending;seqlock_retry",
            StagePath::GetAckDrain => "get_all_pending;ack_drain",
            StagePath::InsertTotal => "insert",
            StagePath::InsertLockWait => "insert;lock_wait",
            StagePath::InsertApply => "insert;apply",
            StagePath::InsertVictimScan => "insert;victim_scan",
            StagePath::InsertShadowReplay => "insert;shadow_replay",
            StagePath::MaintainTotal => "maintain",
            StagePath::MaintainLockWait => "maintain;lock_wait",
            StagePath::MaintainTtlExpiry => "maintain;ttl_expiry",
            StagePath::MaintainRebalance => "maintain;rebalance",
            StagePath::MaintainAutopilot => "maintain;autopilot",
        }
    }

    /// The root this path belongs to (`self` for roots).
    const fn root(self) -> StagePath {
        match self {
            StagePath::GetTotal
            | StagePath::GetRoute
            | StagePath::GetLockWait
            | StagePath::GetLookup
            | StagePath::GetShadowReplay
            | StagePath::GetCoalesceHold
            | StagePath::GetClusterRtt
            | StagePath::GetAck
            | StagePath::GetOptimisticRead
            | StagePath::GetSeqlockRetry
            | StagePath::GetAckDrain => StagePath::GetTotal,
            StagePath::InsertTotal
            | StagePath::InsertLockWait
            | StagePath::InsertApply
            | StagePath::InsertVictimScan
            | StagePath::InsertShadowReplay => StagePath::InsertTotal,
            StagePath::MaintainTotal
            | StagePath::MaintainLockWait
            | StagePath::MaintainTtlExpiry
            | StagePath::MaintainRebalance
            | StagePath::MaintainAutopilot => StagePath::MaintainTotal,
        }
    }

    /// Whether this is an operation root (whole-op duration) rather
    /// than a leaf stage.
    const fn is_root(self) -> bool {
        matches!(
            self,
            StagePath::GetTotal | StagePath::InsertTotal | StagePath::MaintainTotal
        )
    }
}

// ---------------------------------------------------------------------------
// Per-thread sample ring
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct RingEntry {
    path: StagePath,
    /// Raw tick delta — converted to nanoseconds only at flush time,
    /// keeping the float multiply off the per-stage hot path.
    raw: u64,
    trace: u64,
}

struct ThreadRing {
    /// `Arc::as_ptr` of the profiler the buffered entries belong to.
    owner: usize,
    owner_weak: Weak<ProfilerInner>,
    entries: Vec<RingEntry>,
}

impl ThreadRing {
    const fn new() -> Self {
        Self {
            owner: 0,
            owner_weak: Weak::new(),
            entries: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.entries.is_empty() {
            return;
        }
        if let Some(inner) = self.owner_weak.upgrade() {
            for entry in &self.entries {
                inner.stages[entry.path as usize]
                    .record_exemplar(ticks_to_ns(entry.raw), entry.trace);
            }
        }
        self.entries.clear();
    }

    fn push(&mut self, inner: &Arc<ProfilerInner>, entry: RingEntry) {
        let owner = Arc::as_ptr(inner) as usize;
        if self.owner != owner {
            // A different profiler was active on this thread (tests,
            // multiple deployments in-process): hand its buffered
            // samples back before rebinding.
            self.flush();
            self.owner = owner;
            self.owner_weak = Arc::downgrade(inner);
            self.entries.reserve_exact(RING_CAPACITY);
        }
        self.entries.push(entry);
        if self.entries.len() >= RING_CAPACITY {
            self.flush();
        }
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = const { RefCell::new(ThreadRing::new()) };
    /// Per-thread operation sequence for 1-in-`n` sampling.
    static OP_SEQ: Cell<u64> = const { Cell::new(0) };
    /// The stage this thread most recently crossed a boundary into —
    /// written at every boundary (a plain TLS store, no ring borrow)
    /// so a thread stuck *mid-op* still reports where it was.
    static LAST_PATH: Cell<Option<StagePath>> = const { Cell::new(None) };
}

/// The folded name of the stage this thread most recently recorded,
/// if a profiler has run on this thread. Anomaly dumps attach this so
/// a flight-recorder drop or SLO breach carries "what was the thread
/// doing" attribution.
pub fn last_stage_path() -> Option<&'static str> {
    LAST_PATH.with(|last| last.get().map(StagePath::name))
}

// ---------------------------------------------------------------------------
// Stage timing
// ---------------------------------------------------------------------------

/// A running per-operation timestamp chain. One is issued per sampled
/// operation by [`Profiler::op`]; each [`Profiler::stage`] boundary
/// costs one [`ticks`] read plus two plain stores — deltas accumulate
/// *inside* the timer, per path, and reach the thread ring only once
/// at [`Profiler::finish`]. A batched GET that crosses four shards
/// therefore pays four tick reads but buffers two ring entries, not
/// eight.
#[derive(Clone, Copy, Debug)]
pub struct OpTimer {
    start: u64,
    last: u64,
    /// The most recent nonzero trace id seen at a boundary; stamped on
    /// every entry this op emits at finish.
    trace: u64,
    /// Per-path raw tick deltas accumulated across this op's
    /// boundaries; `touched` is the bitmask of live slots.
    acc: [u64; StagePath::COUNT],
    touched: u32,
}

impl OpTimer {
    /// Crosses a stage boundary at `now`: attributes `now − last` to
    /// `path` and advances the chain.
    #[inline]
    fn boundary(&mut self, path: StagePath, now: u64, trace: u64) {
        self.acc[path as usize] = self.acc[path as usize].wrapping_add(now.wrapping_sub(self.last));
        self.touched |= 1 << path as usize;
        self.last = now;
        if trace != 0 {
            self.trace = trace;
        }
        LAST_PATH.with(|last| last.set(Some(path)));
    }
}

/// Configuration for [`Profiler::new`].
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Stage-timer sampling: 1 profiles every operation (full), `n`
    /// profiles one in `n`, 0 disables stage timers entirely (lock
    /// sites stay live). Default 1 — the profiler is built to be left
    /// on.
    pub sample_every_n: u32,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        Self { sample_every_n: 1 }
    }
}

#[derive(Debug)]
struct ProfilerInner {
    sample_every_n: u32,
    sampled: Counter,
    stages: [Histogram; StagePath::COUNT],
    /// Lock sites registered through this profiler, for `/profile`
    /// rendering. The owning structures hold their own clones.
    sites: Mutex<Vec<LockSite>>,
    registry: Registry,
}

/// The profiler handle: cheap to clone, `disabled()` by default.
///
/// All methods are no-ops (one branch) on a disabled profiler, so the
/// instrumented hot paths carry no configuration flags of their own.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl Profiler {
    /// A profiler that records nothing and issues detached lock sites.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Creates a live profiler whose `bad_profile_*` series register
    /// on `registry` (so they ride `/metrics` and `/timeseries` for
    /// free).
    pub fn new(registry: &Registry, config: ProfileConfig) -> Self {
        let stages = StagePath::ALL.map(|path| {
            registry.histogram_with_exemplars("bad_profile_stage_ns", &[("stage", path.name())])
        });
        Self {
            inner: Some(Arc::new(ProfilerInner {
                sample_every_n: config.sample_every_n,
                sampled: registry.counter("bad_profile_sampled_ops_total"),
                stages,
                sites: Mutex::new(Vec::new()),
                registry: registry.clone(),
            })),
        }
    }

    /// Whether this profiler records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Starts timing one operation, or returns `None` when the
    /// operation is not sampled (disabled profiler, `sample_every_n`
    /// of 0, or an off-cycle op). The instrumented paths thread the
    /// returned timer through their stage boundaries.
    ///
    /// The 1-in-`n` cycle is tracked per thread: a shared counter
    /// would bounce its cache line between every worker on every
    /// unsampled op — exactly the cost sampling exists to avoid.
    #[inline]
    pub fn op(&self) -> Option<OpTimer> {
        let inner = self.inner.as_deref()?;
        match inner.sample_every_n {
            0 => return None,
            1 => {}
            n => {
                let due = OP_SEQ.with(|seq| {
                    let v = seq.get();
                    seq.set(v.wrapping_add(1));
                    v % n as u64 == 0
                });
                if !due {
                    return None;
                }
            }
        }
        inner.sampled.inc();
        let now = ticks();
        Some(OpTimer {
            start: now,
            last: now,
            trace: 0,
            acc: [0; StagePath::COUNT],
            touched: 0,
        })
    }

    /// Attributes the time since the previous boundary to `path`,
    /// tagged with `trace` (0 = no exemplar). No-op when `timer` is
    /// `None`. The delta accumulates inside the timer; nothing touches
    /// the thread ring until [`Profiler::finish`].
    #[inline]
    pub fn stage(&self, timer: &mut Option<OpTimer>, path: StagePath, trace: u64) {
        if let Some(timer) = timer.as_mut() {
            timer.boundary(path, ticks(), trace);
        }
    }

    /// Moves the boundary to now without attributing the elapsed time
    /// to any stage — used to exclude un-profiled work (e.g. the
    /// caller's own bookkeeping) from the next stage.
    #[inline]
    pub fn stage_skip(&self, timer: &mut Option<OpTimer>) {
        if let Some(timer) = timer.as_mut() {
            timer.last = ticks();
        }
    }

    /// Ends the operation: drains the timer's per-path accumulators
    /// into the thread ring (one entry per *touched* path — the
    /// breakdown) and attributes the whole duration since
    /// [`Profiler::op`] to the root path (the envelope). One ring
    /// borrow covers every entry.
    #[inline]
    pub fn finish(&self, timer: Option<OpTimer>, root: StagePath, trace: u64) {
        let (Some(inner), Some(timer)) = (self.inner.as_ref(), timer) else {
            return;
        };
        let raw = ticks().wrapping_sub(timer.start);
        let trace = if trace != 0 { trace } else { timer.trace };
        RING.with(|ring| {
            let mut ring = ring.borrow_mut();
            let mut touched = timer.touched;
            while touched != 0 {
                let i = touched.trailing_zeros() as usize;
                touched &= touched - 1;
                ring.push(
                    inner,
                    RingEntry {
                        path: StagePath::ALL[i],
                        raw: timer.acc[i],
                        trace,
                    },
                );
            }
            ring.push(
                inner,
                RingEntry {
                    path: root,
                    raw,
                    trace,
                },
            );
        });
    }

    /// Registers (or re-fetches) the named lock site. A disabled
    /// profiler returns a detached site whose `lock` degrades to a
    /// plain mutex acquisition.
    pub fn lock_site(&self, name: &str) -> LockSite {
        let Some(inner) = self.inner.as_deref() else {
            return LockSite::detached();
        };
        let mut sites = inner.sites.lock().expect("profiler site list poisoned");
        if let Some(site) = sites.iter().find(|s| s.name.as_ref() == name) {
            return site.clone();
        }
        let labels = [("site", name)];
        let site = LockSite {
            name: Arc::from(name),
            enabled: true,
            wait_ns: inner
                .registry
                .histogram_with("bad_profile_lock_wait_ns", &labels),
            hold_ns: inner
                .registry
                .histogram_with("bad_profile_lock_hold_ns", &labels),
            acquisitions: inner
                .registry
                .counter_with("bad_profile_lock_acquisitions_total", &labels),
            contended: inner
                .registry
                .counter_with("bad_profile_lock_contended_total", &labels),
        };
        sites.push(site.clone());
        site
    }

    /// Force-folds the calling thread's sample ring into the shared
    /// histograms. Called from maintenance paths (and tests) so scrape
    /// readouts lag a thread by at most one maintenance interval, not
    /// by up to [`RING_CAPACITY`] samples forever.
    pub fn flush_thread(&self) {
        if self.inner.is_none() {
            return;
        }
        RING.with(|ring| ring.borrow_mut().flush());
    }

    /// Snapshot of every lock site (for `/healthz` top-k summaries).
    pub fn lock_sites(&self) -> Vec<LockSite> {
        match self.inner.as_deref() {
            Some(inner) => inner
                .sites
                .lock()
                .expect("profiler site list poisoned")
                .clone(),
            None => Vec::new(),
        }
    }

    /// The `k` most contended lock sites, ordered by contention count
    /// descending (ties by name), sites with zero contentions omitted.
    pub fn top_contended(&self, k: usize) -> Vec<LockSite> {
        let mut sites = self.lock_sites();
        sites.retain(|s| s.contended.get() > 0);
        sites.sort_by(|a, b| {
            b.contended
                .get()
                .cmp(&a.contended.get())
                .then_with(|| a.name.cmp(&b.name))
        });
        sites.truncate(k);
        sites
    }

    /// The aggregated stage tree as flamegraph-compatible folded-stack
    /// lines: `path total_ns`, one per path with samples, roots
    /// reporting their *self* time (envelope minus attributed leaf
    /// stages) so `flamegraph.pl` stacks add up.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        let Some(inner) = self.inner.as_deref() else {
            return out;
        };
        // Root self time = root envelope − Σ(leaf stages under it).
        let sums: Vec<u64> = StagePath::ALL
            .iter()
            .map(|p| inner.stages[*p as usize].sum())
            .collect();
        for path in StagePath::ALL {
            let mut value = sums[path as usize];
            if path.is_root() {
                let children: u64 = StagePath::ALL
                    .iter()
                    .filter(|p| !p.is_root() && p.root() == path)
                    .map(|p| sums[*p as usize])
                    .sum();
                value = value.saturating_sub(children);
            }
            if value == 0 && inner.stages[path as usize].count() == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", path.name(), value);
        }
        out
    }

    /// The full `/profile` payload: sampling config, folded-stack
    /// lines, the structured stage tree (count/total/max/quantiles +
    /// per-bucket exemplars) and every lock site's wait/hold/contention
    /// readout.
    pub fn render_json(&self) -> String {
        self.render_json_limit(usize::MAX)
    }

    /// Like [`Profiler::render_json`], but rendering at most `limit`
    /// lock sites (the most contended first, via
    /// [`Profiler::top_contended`]) — the scrape endpoint caps
    /// `/profile` with this, since lock sites are the only part of the
    /// payload that grows with deployment size (one per shard). The
    /// stage tree is a fixed enum and never needs capping. A
    /// `locks_total` field always reports the uncapped count so
    /// truncation is visible.
    pub fn render_json_limit(&self, limit: usize) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return r#"{"enabled":false}"#.to_owned();
        };
        let mut out = String::new();
        {
            let mut obj = ObjectWriter::new(&mut out);
            obj.field_bool("enabled", true);
            obj.field_u64("sample_every_n", inner.sample_every_n as u64);
            obj.field_u64("sampled_ops", inner.sampled.get());
            let folded: Vec<String> = self.render_folded().lines().map(|l| l.to_owned()).collect();
            obj.field_array_str("folded", &folded);
            let mut stages = String::from("[");
            let mut first = true;
            for path in StagePath::ALL {
                let hist = &inner.stages[path as usize];
                let count = hist.count();
                if count == 0 {
                    continue;
                }
                if !first {
                    stages.push(',');
                }
                first = false;
                let mut stage = String::new();
                {
                    let mut s = ObjectWriter::new(&mut stage);
                    s.field_str("path", path.name());
                    s.field_u64("count", count);
                    s.field_u64("total_ns", hist.sum());
                    s.field_u64("max_ns", hist.max());
                    s.field_u64("p50_ns", hist.quantile(0.50));
                    s.field_u64("p99_ns", hist.quantile(0.99));
                    let mut exemplars = String::from("[");
                    let mut ex_first = true;
                    for bucket in 0..BUCKET_COUNT {
                        if let Some(trace) = hist.exemplar(bucket) {
                            if !ex_first {
                                exemplars.push(',');
                            }
                            ex_first = false;
                            let _ = write!(
                                exemplars,
                                r#"{{"le_ns":{},"trace":"{trace:016x}"}}"#,
                                Histogram::bucket_upper(bucket)
                            );
                        }
                    }
                    exemplars.push(']');
                    s.field_raw("exemplars", &exemplars);
                }
                stages.push_str(&stage);
            }
            stages.push(']');
            obj.field_raw("stages", &stages);
            let all_sites = self.lock_sites();
            obj.field_u64("locks_total", all_sites.len() as u64);
            let sites = if all_sites.len() > limit {
                self.top_contended(limit)
            } else {
                all_sites
            };
            let mut locks = String::from("[");
            for (i, site) in sites.iter().enumerate() {
                if i > 0 {
                    locks.push(',');
                }
                locks.push_str(&site.render_json());
            }
            locks.push(']');
            obj.field_raw("locks", &locks);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Lock sites
// ---------------------------------------------------------------------------

/// One instrumented mutex acquisition point (a cache shard, the
/// coalescer). Clones share the underlying series.
#[derive(Clone, Debug)]
pub struct LockSite {
    name: Arc<str>,
    enabled: bool,
    wait_ns: Histogram,
    hold_ns: Histogram,
    acquisitions: Counter,
    contended: Counter,
}

impl LockSite {
    /// A site that records nothing; `lock` is a plain acquisition.
    pub fn detached() -> Self {
        Self {
            name: Arc::from(""),
            enabled: false,
            wait_ns: Histogram::new(),
            hold_ns: Histogram::new(),
            acquisitions: Counter::default(),
            contended: Counter::default(),
        }
    }

    /// The site name (`shard0`, `coalescer`, …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total acquisitions through this site.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions.get()
    }

    /// Acquisitions that found the mutex held (and waited).
    pub fn contentions(&self) -> u64 {
        self.contended.get()
    }

    /// Total nanoseconds spent waiting for this mutex.
    pub fn wait_total_ns(&self) -> u64 {
        self.wait_ns.sum()
    }

    /// The wait-time distribution.
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait_ns
    }

    /// The hold-time distribution.
    pub fn hold_histogram(&self) -> &Histogram {
        &self.hold_ns
    }

    /// Acquires `mutex` through this site.
    ///
    /// Fast path (uncontended, site enabled): one `try_lock`, one tick
    /// pair for hold time, no allocation. Contended path: counts the
    /// contention and records the wait. `timed` gates the hold-time
    /// pair — pass the per-op sampling decision so a sampled profile
    /// run leaves almost nothing on unsampled ops (waits on a
    /// *contended* acquisition are always recorded: they are rare and
    /// exactly what the profiler exists to attribute).
    ///
    /// Lock ordering is unchanged from the uninstrumented manager:
    /// sites wrap individual acquisitions and never themselves lock,
    /// so autopilot → shard → policy ordering (see `sharded.rs`) is
    /// preserved verbatim.
    #[inline]
    pub fn lock<'a, T>(&'a self, mutex: &'a Mutex<T>, timed: bool) -> ProfiledGuard<'a, T> {
        if !self.enabled {
            return ProfiledGuard {
                guard: mutex.lock().expect("profiled mutex poisoned"),
                hold: None,
            };
        }
        self.acquisitions.inc();
        let guard = match mutex.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                self.contended.inc();
                let t0 = ticks();
                let guard = mutex.lock().expect("profiled mutex poisoned");
                self.wait_ns.record(ticks_to_ns(ticks().wrapping_sub(t0)));
                guard
            }
            Err(TryLockError::Poisoned(_)) => panic!("profiled mutex poisoned"),
        };
        let hold = timed.then(|| (&self.hold_ns, ticks()));
        ProfiledGuard { guard, hold }
    }

    /// Acquires `mutex` through this site *and* feeds the sampled op's
    /// `path` (lock-wait) stage — but only on a *contended*
    /// acquisition, mirroring the site's own wait histogram: an
    /// uncontended `try_lock` waits ~nothing, so the fast path reads no
    /// tick at all. On contention the single post-acquisition tick
    /// serves as the lock-wait boundary and the hold-time start; on the
    /// fast path the hold clock starts at the op's previous boundary
    /// (the smear is the caller's bookkeeping since then — tens of
    /// nanoseconds against microsecond-scale holds, attributed to the
    /// *next* stage crossed at release).
    #[inline]
    pub fn lock_staged<'a, T>(
        &'a self,
        mutex: &'a Mutex<T>,
        timer: &mut Option<OpTimer>,
        path: StagePath,
        trace: u64,
    ) -> ProfiledGuard<'a, T> {
        if !self.enabled {
            return ProfiledGuard::plain(mutex);
        }
        self.acquisitions.inc();
        match mutex.try_lock() {
            Ok(guard) => {
                let hold = timer.as_mut().map(|timer| (&self.hold_ns, timer.last));
                ProfiledGuard { guard, hold }
            }
            Err(TryLockError::WouldBlock) => {
                self.contended.inc();
                let t0 = ticks();
                let guard = mutex.lock().expect("profiled mutex poisoned");
                let now = ticks();
                self.wait_ns.record(ticks_to_ns(now.wrapping_sub(t0)));
                let hold = timer.as_mut().map(|timer| {
                    timer.boundary(path, now, trace);
                    (&self.hold_ns, now)
                });
                ProfiledGuard { guard, hold }
            }
            Err(TryLockError::Poisoned(_)) => panic!("profiled mutex poisoned"),
        }
    }

    /// One lock site as a JSON object (for `/profile` and `/healthz`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        {
            let mut obj = ObjectWriter::new(&mut out);
            obj.field_str("site", &self.name);
            obj.field_u64("acquisitions", self.acquisitions.get());
            obj.field_u64("contended", self.contended.get());
            obj.field_u64("wait_total_ns", self.wait_ns.sum());
            obj.field_u64("wait_max_ns", self.wait_ns.max());
            obj.field_u64("wait_p99_ns", self.wait_ns.quantile(0.99));
            obj.field_u64("hold_total_ns", self.hold_ns.sum());
            obj.field_u64("hold_max_ns", self.hold_ns.max());
            obj.field_u64("hold_p99_ns", self.hold_ns.quantile(0.99));
        }
        out
    }
}

/// A mutex guard that records hold time into its site on drop.
/// Dereferences to the protected value, so instrumented call sites
/// read like plain `MutexGuard` code.
pub struct ProfiledGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    hold: Option<(&'a Histogram, u64)>,
}

impl<'a, T> ProfiledGuard<'a, T> {
    /// Acquires `mutex` with no site attached (plain lock, panics on
    /// poison like the uninstrumented managers did).
    pub fn plain(mutex: &'a Mutex<T>) -> Self {
        Self {
            guard: mutex.lock().expect("profiled mutex poisoned"),
            hold: None,
        }
    }

    /// Releases the guard, recording the hold time *and* crossing the
    /// sampled op's `path` boundary with one shared tick read — the
    /// release-side counterpart of [`LockSite::lock_staged`]. `path`
    /// is the stage the under-lock tail belongs to (lookup,
    /// shadow-replay, ack); callers that let the guard drop implicitly
    /// instead pay a separate read for the next boundary.
    #[inline]
    pub fn unlock_staged(mut self, timer: &mut Option<OpTimer>, path: StagePath) {
        let hold = self.hold.take();
        if hold.is_none() && timer.is_none() {
            return;
        }
        let now = ticks();
        if let Some((hold_ns, t0)) = hold {
            hold_ns.record(ticks_to_ns(now.wrapping_sub(t0)));
        }
        if let Some(timer) = timer.as_mut() {
            timer.boundary(path, now, 0);
        }
    }
}

impl<T> std::ops::Deref for ProfiledGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for ProfiledGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for ProfiledGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((hold_ns, t0)) = self.hold.take() {
            hold_ns.record(ticks_to_ns(ticks().wrapping_sub(t0)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_monotonic_enough_and_convert_to_ns() {
        let t0 = ticks();
        let start = Instant::now();
        while start.elapsed().as_micros() < 1_000 {
            std::hint::spin_loop();
        }
        let ns = ticks_to_ns(ticks().wrapping_sub(t0));
        // 1 ms of wall time must read as 1 ms ± 50 % through the
        // calibrated clock — attribution data, not billing data.
        assert!((500_000..5_000_000).contains(&ns), "ns = {ns}");
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let profiler = Profiler::disabled();
        assert!(!profiler.enabled());
        let mut timer = profiler.op();
        assert!(timer.is_none());
        profiler.stage(&mut timer, StagePath::GetLookup, 1);
        profiler.finish(timer, StagePath::GetTotal, 1);
        assert_eq!(profiler.render_folded(), "");
        assert!(profiler.render_json().contains(r#""enabled":false"#));
        let site = profiler.lock_site("shard0");
        let mutex = Mutex::new(5u32);
        {
            let guard = site.lock(&mutex, true);
            assert_eq!(*guard, 5);
        }
        assert_eq!(site.acquisitions(), 0);
    }

    #[test]
    fn stages_fold_into_the_tree_with_root_self_time() {
        let registry = Registry::new();
        let profiler = Profiler::new(&registry, ProfileConfig::default());
        let mut timer = profiler.op();
        assert!(timer.is_some());
        profiler.stage(&mut timer, StagePath::InsertApply, 7);
        profiler.stage(&mut timer, StagePath::InsertVictimScan, 7);
        profiler.finish(timer, StagePath::InsertTotal, 7);
        profiler.flush_thread();

        let folded = profiler.render_folded();
        assert!(folded.contains("insert;apply "), "{folded}");
        assert!(folded.contains("insert;victim_scan "), "{folded}");
        // The root line reports self time: envelope − leaves ≥ 0.
        let root_value: u64 = folded
            .lines()
            .find(|l| l.starts_with("insert "))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse().ok())
            .expect("root line present");
        let leaves: u64 = folded
            .lines()
            .filter(|l| l.starts_with("insert;"))
            .filter_map(|l| l.split(' ').nth(1))
            .filter_map(|v| v.parse::<u64>().ok())
            .sum();
        let envelope = registry
            .histogram_with("bad_profile_stage_ns", &[("stage", "insert")])
            .sum();
        assert_eq!(root_value, envelope.saturating_sub(leaves));

        // The stage series rides the shared registry (and thus
        // /metrics and /timeseries).
        let text = registry.render();
        assert!(
            text.contains(r#"bad_profile_stage_ns_count{stage="insert;victim_scan"} 1"#),
            "{text}"
        );
        assert!(text.contains("bad_profile_sampled_ops_total 1"), "{text}");

        // The JSON view carries the structured tree and the exemplar
        // trace id recorded above.
        let json = profiler.render_json();
        assert!(json.contains(r#""path":"insert;victim_scan""#), "{json}");
        assert!(json.contains(r#""trace":"0000000000000007""#), "{json}");
    }

    #[test]
    fn sampling_profiles_one_op_in_n() {
        let registry = Registry::new();
        let profiler = Profiler::new(&registry, ProfileConfig { sample_every_n: 4 });
        let sampled = (0..16).filter(|_| profiler.op().is_some()).count();
        assert_eq!(sampled, 4);
        let off = Profiler::new(&registry, ProfileConfig { sample_every_n: 0 });
        assert!(off.op().is_none());
    }

    #[test]
    fn ring_flushes_on_wrap_and_tracks_last_stage() {
        let registry = Registry::new();
        let profiler = Profiler::new(&registry, ProfileConfig::default());
        for _ in 0..RING_CAPACITY {
            let mut timer = profiler.op();
            profiler.stage(&mut timer, StagePath::GetLookup, 3);
            profiler.finish(timer, StagePath::GetTotal, 3);
        }
        // Each op buffered two entries (leaf + root), so the ring
        // wrapped exactly twice: all samples are visible without an
        // explicit flush.
        let hist = registry.histogram_with(
            "bad_profile_stage_ns",
            &[("stage", "get_all_pending;lookup")],
        );
        assert_eq!(hist.count(), RING_CAPACITY as u64);
        // The boundary write (not the op envelope) is what the
        // anomaly-dump attribution reads back.
        assert_eq!(last_stage_path(), Some("get_all_pending;lookup"));
    }

    #[test]
    fn lock_site_times_waits_holds_and_contention() {
        let registry = Registry::new();
        let profiler = Profiler::new(&registry, ProfileConfig::default());
        let site = profiler.lock_site("shard0");
        // Re-fetching by name returns the same series.
        assert_eq!(profiler.lock_site("shard0").acquisitions(), 0);
        let mutex = Arc::new(Mutex::new(0u64));

        // Uncontended acquisition: hold recorded, no contention.
        {
            let mut guard = site.lock(&mutex, true);
            *guard += 1;
        }
        assert_eq!(site.acquisitions(), 1);
        assert_eq!(site.contentions(), 0);
        assert_eq!(site.hold_histogram().count(), 1);

        // Contended acquisition: a thread holds the mutex while we
        // acquire, so the wait path must fire.
        let held = Arc::clone(&mutex);
        let holder_site = site.clone();
        let handle = std::thread::spawn(move || {
            let _guard = holder_site.lock(&held, false);
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        {
            let _guard = site.lock(&mutex, true);
        }
        handle.join().unwrap();
        assert_eq!(site.acquisitions(), 3);
        assert_eq!(site.contentions(), 1);
        assert_eq!(site.wait_histogram().count(), 1);
        assert!(site.wait_total_ns() > 1_000_000, "{}", site.wait_total_ns());

        // Series land on the registry under the site label.
        let text = registry.render();
        assert!(
            text.contains(r#"bad_profile_lock_contended_total{site="shard0"} 1"#),
            "{text}"
        );
        // And the top-contended summary surfaces the site.
        let top = profiler.top_contended(4);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name(), "shard0");
    }

    #[test]
    fn exemplar_histograms_render_byte_identically_to_plain_ones() {
        // Satellite: quantile math and the Prometheus text are
        // unchanged when exemplars are off — and *also* when they are
        // on, since exemplars never render in the text format.
        let plain = Registry::new();
        let tagged = Registry::new();
        let h_plain = plain.histogram_with("bad_x_ns", &[("stage", "s")]);
        let h_tagged = tagged.histogram_with_exemplars("bad_x_ns", &[("stage", "s")]);
        for v in [0u64, 1, 7, 900, 4096, 123_456] {
            h_plain.record(v);
            h_tagged.record_exemplar(v, 0xABCD);
        }
        assert_eq!(plain.render(), tagged.render());
        assert_eq!(h_plain.snapshot(), h_tagged.snapshot());
        assert!(h_tagged.exemplar(3).is_some());
        assert!(h_plain.exemplar(3).is_none());
    }
}
