//! The continuous health engine: timeseries + alerts + drift in one
//! windowed tick.
//!
//! The engine composes the three layers of this PR into a single
//! cache-agnostic object owned by whoever drives virtual time (the
//! proto runtime's maintenance arm, the simulator's sampler epoch, a
//! bench loop):
//!
//! * a [`TimeSeriesStore`] snapshotting the whole registry each window,
//! * an [`AlertManager`] with two SLO burn-rate rules over the
//!   tracer's violation counters (`delivery_latency`, `staleness`)
//!   plus a `model_drift` threshold rule,
//! * a [`DriftDetector`] fed per-window observed hit ratio (cache
//!   hit/miss counter deltas), observed staleness
//!   (`bad_trace_staleness_us` deltas) and occupancy, against the
//!   eq. 5–7 prediction supplied by the caller (the cache tier owns
//!   λ/η/ρ/TTL measurement; the engine never reaches into a cache).
//!
//! Everything happens inside `tick`, which is deadline-gated exactly
//! like [`crate::Sampler`]: hot paths pay nothing, the per-window work
//! is two registry sweeps and a handful of subtractions, and the
//! `health_overhead` bench gates the total at ≤10%.

use std::sync::{Arc, Mutex};

use crate::alert::{AlertManager, BurnRateRule, TransitionRecord, ValueSource};
use crate::drift::{DriftConfig, DriftDetector, DriftSample, ModelPrediction};
use crate::event::SharedSink;
use crate::registry::{Counter, Gauge, Registry};
use crate::timeseries::{TimeSeriesConfig, TimeSeriesStore};
use crate::trace::FlightRecorder;

/// Health-engine tuning: window cadence, SLO budgets, burn-rate
/// windows (all in virtual time) and drift scoring.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Snapshot / evaluation window in virtual microseconds.
    pub window_us: u64,
    /// Retained windows in the timeseries ring.
    pub timeseries_capacity: usize,
    /// SLO error budget (fraction of requests allowed to violate).
    pub slo_budget: f64,
    /// Fast burn window, in health windows.
    pub fast_windows: u32,
    /// Slow burn window, in health windows.
    pub slow_windows: u32,
    /// Fast-window burn threshold.
    pub fast_factor: f64,
    /// Slow-window burn threshold.
    pub slow_factor: f64,
    /// Dwell before Pending → Firing, in health windows.
    pub pending_windows: u32,
    /// Linger in Resolved, in health windows.
    pub resolve_hold_windows: u32,
    /// Drift scoring knobs.
    pub drift: DriftConfig,
    /// `hot_skew` alert threshold: the top-K share of all requests
    /// (from the sketch layer's heavy-hitter readout) above which the
    /// demand-concentration alert arms. `≥ 1.0` effectively disables
    /// it on non-degenerate workloads.
    pub hot_skew_threshold: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            window_us: TimeSeriesConfig::default().window_us,
            timeseries_capacity: TimeSeriesConfig::default().capacity,
            slo_budget: 0.01,
            // The classic multi-window pairing scaled to virtual
            // minutes: a 5-window fast burn catches regressions within
            // minutes, the 30-window slow burn suppresses blips.
            fast_windows: 5,
            slow_windows: 30,
            fast_factor: 14.4,
            slow_factor: 6.0,
            pending_windows: 1,
            resolve_hold_windows: 2,
            drift: DriftConfig::default(),
            hot_skew_threshold: 0.9,
        }
    }
}

/// What the driving tier observed this window — the only inputs the
/// engine cannot read off the registry itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealthObservation {
    /// Current cache occupancy in bytes.
    pub occupancy_bytes: u64,
    /// Configured cache budget in bytes.
    pub budget_bytes: u64,
    /// The eq. 5–7 prediction for this window, when the cache tier has
    /// model inputs (see `bad_cache`'s `model_inputs`). `None` skips
    /// drift scoring for the window.
    pub model: Option<ModelPrediction>,
    /// Demand concentration from the sketch layer: the top-K keys'
    /// share of all requests in `[0, 1]` (see
    /// `bad_telemetry::sketch::HotSnapshot::skew`). `None` when
    /// sketches are disabled — the gauge holds its last value and the
    /// `hot_skew` rule stays quiet.
    pub hot_skew: Option<f64>,
}

/// Cumulative counter readings from the previous window, for delta
/// computation.
#[derive(Clone, Copy, Debug, Default)]
struct LastObserved {
    hits: u64,
    misses: u64,
    staleness_sum: u64,
    staleness_count: u64,
}

/// The assembled engine. Shareable; all methods are `&self`.
pub struct HealthEngine {
    timeseries: TimeSeriesStore,
    alerts: AlertManager,
    drift: Mutex<DriftDetector>,
    last: Mutex<LastObserved>,
    hits: Counter,
    misses: Counter,
    staleness_us: crate::Histogram,
    drift_score_milli: Gauge,
    hot_skew_milli: Gauge,
    observed_hit_ratio_milli: Gauge,
    predicted_hit_ratio_milli: Gauge,
    windows_total: Counter,
    window_us: u64,
}

impl HealthEngine {
    /// Builds the engine over `registry`, wiring the two SLO burn-rate
    /// rules and the `model_drift` rule. `recorder`/`sink` receive
    /// alert transitions. The counter/histogram handles are fetched by
    /// the tracer's and cache telemetry's metric names, so the engine
    /// observes whatever those layers record — including nothing, when
    /// tracing is disabled (no traffic, no burn).
    pub fn new(
        registry: &Registry,
        recorder: Arc<FlightRecorder>,
        sink: SharedSink,
        config: HealthConfig,
    ) -> Arc<Self> {
        let w = config.window_us;
        let windows = |n: u32| w.saturating_mul(n as u64);
        let alerts = AlertManager::new(registry, recorder, sink);
        let delivery_violations = registry.counter("bad_delivery_latency_slo_violations_total");
        let delivery_volume = registry.histogram("bad_trace_delivery_lag_us");
        let staleness_violations = registry.counter("bad_staleness_slo_violations_total");
        let staleness_volume = registry.histogram("bad_trace_staleness_us");
        alerts.add_burn_rate(
            BurnRateRule {
                name: "delivery_latency_burn",
                budget: config.slo_budget,
                fast_window_us: windows(config.fast_windows),
                slow_window_us: windows(config.slow_windows),
                fast_factor: config.fast_factor,
                slow_factor: config.slow_factor,
                pending_for_us: windows(config.pending_windows),
                resolve_hold_us: windows(config.resolve_hold_windows),
            },
            ValueSource::Counter(delivery_violations),
            ValueSource::HistogramCount(delivery_volume),
        );
        alerts.add_burn_rate(
            BurnRateRule {
                name: "staleness_burn",
                budget: config.slo_budget,
                fast_window_us: windows(config.fast_windows),
                slow_window_us: windows(config.slow_windows),
                fast_factor: config.fast_factor,
                slow_factor: config.slow_factor,
                pending_for_us: windows(config.pending_windows),
                resolve_hold_us: windows(config.resolve_hold_windows),
            },
            ValueSource::Counter(staleness_violations),
            ValueSource::HistogramCount(staleness_volume.clone()),
        );
        let drift_score_milli = registry.gauge("bad_health_drift_score_milli");
        alerts.add_gauge_above(
            "model_drift",
            drift_score_milli.clone(),
            config.drift.threshold,
            windows(config.pending_windows),
            windows(config.resolve_hold_windows),
        );
        let hot_skew_milli = registry.gauge("bad_health_hot_skew_milli");
        alerts.add_gauge_above(
            "hot_skew",
            hot_skew_milli.clone(),
            config.hot_skew_threshold,
            windows(config.pending_windows),
            windows(config.resolve_hold_windows),
        );
        Arc::new(Self {
            timeseries: TimeSeriesStore::new(
                registry.clone(),
                TimeSeriesConfig {
                    window_us: config.window_us,
                    capacity: config.timeseries_capacity,
                },
            ),
            alerts,
            drift: Mutex::new(DriftDetector::new(config.drift)),
            last: Mutex::new(LastObserved::default()),
            hits: registry.counter("bad_cache_hit_objects_total"),
            misses: registry.counter("bad_cache_miss_objects_total"),
            staleness_us: staleness_volume,
            drift_score_milli,
            hot_skew_milli,
            observed_hit_ratio_milli: registry.gauge("bad_health_observed_hit_ratio_milli"),
            predicted_hit_ratio_milli: registry.gauge("bad_health_predicted_hit_ratio_milli"),
            windows_total: registry.counter("bad_health_windows_total"),
            window_us: config.window_us,
        })
    }

    /// Whether a window boundary has been crossed — callers on
    /// maintenance paths check this before assembling observations.
    pub fn due(&self, t_us: u64) -> bool {
        self.timeseries.due(t_us)
    }

    /// The health window width in virtual microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// Runs one health window at virtual `t_us` if due: snapshots the
    /// timeseries, scores drift against `observation`, evaluates every
    /// alert rule. Returns the alert transitions (empty when not due).
    pub fn tick(&self, t_us: u64, observation: HealthObservation) -> Vec<TransitionRecord> {
        if !self.timeseries.tick(t_us) {
            return Vec::new();
        }
        self.windows_total.inc();
        // Windowed observed values: deltas of the cumulative counters
        // since the previous window.
        let now = LastObserved {
            hits: self.hits.get(),
            misses: self.misses.get(),
            staleness_sum: self.staleness_us.sum(),
            staleness_count: self.staleness_us.count(),
        };
        let prev = {
            let mut last = self.last.lock().expect("health last poisoned");
            std::mem::replace(&mut *last, now)
        };
        let d_hits = now.hits.saturating_sub(prev.hits);
        let d_misses = now.misses.saturating_sub(prev.misses);
        let observed_hit_ratio =
            (d_hits + d_misses > 0).then(|| d_hits as f64 / (d_hits + d_misses) as f64);
        let d_st_count = now.staleness_count.saturating_sub(prev.staleness_count);
        let observed_staleness_us = (d_st_count > 0).then(|| {
            now.staleness_sum.saturating_sub(prev.staleness_sum) as f64 / d_st_count as f64
        });
        if let Some(h) = observed_hit_ratio {
            self.observed_hit_ratio_milli.set((h * 1000.0) as u64);
        }
        if let Some(skew) = observation.hot_skew {
            self.hot_skew_milli
                .set((skew.clamp(0.0, 1.0) * 1000.0) as u64);
        }
        if let Some(model) = observation.model {
            self.predicted_hit_ratio_milli
                .set((model.hit_ratio.clamp(0.0, 1.0) * 1000.0) as u64);
            let score = self
                .drift
                .lock()
                .expect("drift detector poisoned")
                .observe(DriftSample {
                    predicted: model,
                    observed_hit_ratio,
                    observed_staleness_us,
                    occupancy_bytes: observation.occupancy_bytes,
                    budget_bytes: observation.budget_bytes,
                });
            self.drift_score_milli
                .set((score.clamp(0.0, 1.0) * 1000.0) as u64);
        }
        self.alerts.evaluate(t_us)
    }

    /// The timeseries store (queries, JSON).
    pub fn timeseries(&self) -> &TimeSeriesStore {
        &self.timeseries
    }

    /// The alert manager (states, JSON).
    pub fn alerts(&self) -> &AlertManager {
        &self.alerts
    }

    /// Current smoothed drift score in `[0, 1]`.
    pub fn drift_score(&self) -> f64 {
        self.drift.lock().expect("drift detector poisoned").score()
    }

    /// The `/timeseries` endpoint body (bounded raw tail of 8 windows,
    /// summaries over the trailing 30).
    pub fn timeseries_json(&self) -> String {
        self.timeseries.to_json(8, 30)
    }

    /// The `/alerts` endpoint body.
    pub fn alerts_json(&self) -> String {
        self.alerts.to_json()
    }

    /// The compact health summary embedded in `/healthz`: alert counts
    /// + firing rule names + drift state.
    pub fn summary_json(&self) -> String {
        let mut body = String::with_capacity(384);
        {
            let mut obj = crate::json::ObjectWriter::new(&mut body);
            obj.field_u64("windows", self.timeseries.total_windows());
            obj.field_raw("alerts", &self.alerts.summary_json());
            obj.field_raw(
                "drift",
                &self
                    .drift
                    .lock()
                    .expect("drift detector poisoned")
                    .to_json(),
            );
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::null_sink;

    const W: u64 = 60_000_000; // default window

    fn engine(registry: &Registry, config: HealthConfig) -> Arc<HealthEngine> {
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        HealthEngine::new(registry, recorder, null_sink(), config)
    }

    #[test]
    fn tick_is_window_gated() {
        let registry = Registry::new();
        let e = engine(&registry, HealthConfig::default());
        assert!(e.due(0));
        e.tick(0, HealthObservation::default());
        assert!(!e.due(W / 2));
        assert!(e.tick(W / 2, HealthObservation::default()).is_empty());
        assert_eq!(e.timeseries().total_windows(), 1);
        e.tick(W, HealthObservation::default());
        assert_eq!(e.timeseries().total_windows(), 2);
        assert!(registry.render().contains("bad_health_windows_total 2"));
    }

    #[test]
    fn drift_alert_fires_when_model_diverges() {
        let registry = Registry::new();
        let config = HealthConfig {
            drift: DriftConfig {
                warmup_windows: 0,
                alpha: 0.5,
                ..DriftConfig::default()
            },
            ..HealthConfig::default()
        };
        let e = engine(&registry, config);
        let hits = registry.counter("bad_cache_hit_objects_total");
        let misses = registry.counter("bad_cache_miss_objects_total");
        // Model predicts 90% hits; reality delivers 90%: no drift.
        let model = ModelPrediction {
            hit_ratio: 0.9,
            mean_staleness_us: 0.0,
            expected_bytes: 1000.0,
            subscriptions: 1,
        };
        let obs = HealthObservation {
            occupancy_bytes: 1000,
            budget_bytes: 100_000,
            model: Some(model),
            hot_skew: None,
        };
        for i in 0..4u64 {
            hits.add(90);
            misses.add(10);
            e.tick(i * W, obs);
        }
        assert_eq!(
            e.alerts().state_of("model_drift"),
            Some(crate::alert::AlertState::Inactive)
        );
        assert!(e.drift_score() < 0.05, "score {}", e.drift_score());
        // Regime shift: reality collapses to 0% hits. The score rises
        // and the alert walks pending → firing within a bounded number
        // of windows.
        let mut fired_at = None;
        for i in 4..16u64 {
            misses.add(100);
            let transitions = e.tick(i * W, obs);
            if transitions
                .iter()
                .any(|t| t.rule == "model_drift" && t.to == crate::alert::AlertState::Firing)
            {
                fired_at = Some(i - 4);
                break;
            }
        }
        let fired_at = fired_at.expect("drift alert never fired");
        assert!(fired_at <= 8, "took {fired_at} windows");
        assert!(registry.render().contains("bad_health_alerts_firing 1"));
        assert!(e.summary_json().contains("model_drift"));
    }

    #[test]
    fn hot_skew_alert_fires_on_sustained_concentration() {
        let registry = Registry::new();
        let e = engine(&registry, HealthConfig::default());
        // Below threshold: rule stays inactive.
        e.tick(
            0,
            HealthObservation {
                hot_skew: Some(0.5),
                ..HealthObservation::default()
            },
        );
        assert_eq!(
            e.alerts().state_of("hot_skew"),
            Some(crate::alert::AlertState::Inactive)
        );
        assert!(registry.render().contains("bad_health_hot_skew_milli 500"));
        // Sustained concentration above the 0.9 default walks the rule
        // pending → firing.
        let mut fired = false;
        for i in 1..6u64 {
            let transitions = e.tick(
                i * W,
                HealthObservation {
                    hot_skew: Some(0.97),
                    ..HealthObservation::default()
                },
            );
            if transitions
                .iter()
                .any(|t| t.rule == "hot_skew" && t.to == crate::alert::AlertState::Firing)
            {
                fired = true;
                break;
            }
        }
        assert!(fired, "hot_skew never fired");
        // Sketches off (None): the gauge holds and the alert resolves
        // back down eventually rather than flapping on missing data.
        e.tick(10 * W, HealthObservation::default());
        assert!(registry.render().contains("bad_health_hot_skew_milli 970"));
    }

    #[test]
    fn summary_and_endpoint_bodies_are_json_objects() {
        let registry = Registry::new();
        let e = engine(&registry, HealthConfig::default());
        e.tick(0, HealthObservation::default());
        for body in [e.timeseries_json(), e.alerts_json(), e.summary_json()] {
            assert!(body.starts_with('{') && body.ends_with('}'), "{body}");
        }
        assert!(e.alerts_json().contains("delivery_latency_burn"));
        assert!(e.alerts_json().contains("staleness_burn"));
        assert!(e.alerts_json().contains("model_drift"));
        assert!(e.summary_json().contains("\"drift\""));
    }
}
