//! The structured event layer: a typed taxonomy of per-decision events
//! and the sinks that record them.
//!
//! Every variant is `Copy` (timestamps in virtual microseconds, raw
//! `u64` ids, `&'static str` labels) so constructing an event never
//! allocates. Hot paths guard construction behind
//! [`EventSink::enabled`]:
//!
//! ```
//! use bad_telemetry::{null_sink, Event};
//! let sink = null_sink();
//! if sink.enabled() {
//!     sink.record(&Event::CacheConsume { t_us: 0, cache: 1, objects: 1, bytes: 64 });
//! }
//! ```
//!
//! The [`NullSink`] default reports `enabled() == false`, so disabled
//! tracing costs one virtual call per site and nothing else.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::ObjectWriter;
use crate::trace::{Span, SpanKind};

/// One structured telemetry event. Field conventions: `t_us` is the
/// virtual-time timestamp in microseconds, ids are the raw `u64` of
/// the typed id newtypes, byte quantities are raw bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// An object was admitted into a backend-subscription cache.
    CacheInsert {
        t_us: u64,
        cache: u64,
        object: u64,
        bytes: u64,
        total_bytes: u64,
    },
    /// A retrieval was served (partly) from cache.
    CacheHit {
        t_us: u64,
        cache: u64,
        objects: u64,
        bytes: u64,
    },
    /// A retrieval missed and had to fetch from the backend.
    CacheMiss {
        t_us: u64,
        cache: u64,
        objects: u64,
        bytes: u64,
    },
    /// The eviction policy dropped a victim to make room; `score` is
    /// the victim cache's φ/s utility-per-byte at eviction time.
    CacheEvict {
        t_us: u64,
        cache: u64,
        object: u64,
        bytes: u64,
        policy: &'static str,
        score: f64,
    },
    /// A TTL policy expired an object; `ttl_us` is the TTL in force.
    CacheExpire {
        t_us: u64,
        cache: u64,
        object: u64,
        bytes: u64,
        ttl_us: u64,
    },
    /// All pending subscribers consumed an object, releasing it.
    CacheConsume {
        t_us: u64,
        cache: u64,
        objects: u64,
        bytes: u64,
    },
    /// Objects were dropped because their cache lost its subscribers.
    CacheUnsubscribe {
        t_us: u64,
        cache: u64,
        objects: u64,
        bytes: u64,
    },
    /// The TTL tuner recomputed a cache's TTL from its measured
    /// arrival rate λ, consumption rate η and growth rate ρ = (λ−η)⁺.
    TtlRetune {
        t_us: u64,
        cache: u64,
        lambda: f64,
        eta: f64,
        rho: f64,
        ttl_us: u64,
    },
    /// A subscriber retrieval was classified into hits and misses.
    BrokerRetrieve {
        t_us: u64,
        subscriber: u64,
        hit_objects: u64,
        miss_objects: u64,
        hit_bytes: u64,
        miss_bytes: u64,
    },
    /// A batch of results left the broker for a subscriber.
    BrokerDeliver {
        t_us: u64,
        subscriber: u64,
        objects: u64,
        bytes: u64,
        latency_us: u64,
    },
    /// A failed broker's subscribers were migrated to survivors.
    BrokerFailover {
        t_us: u64,
        failed_broker: u64,
        migrated: u64,
    },
    /// A continuous/repetitive channel matched and produced results.
    ClusterChannelFire {
        t_us: u64,
        channel: u64,
        subscription: u64,
        results: u64,
        bytes: u64,
    },
    /// Enrichment rules ran over a channel's freshly produced results.
    ClusterEnrich { t_us: u64, channel: u64, rules: u64 },
    /// One virtual-time sampler epoch (the raw series behind Fig. 5a).
    EpochSample {
        t_us: u64,
        broker: u64,
        occupancy_bytes: u64,
        hit_ratio: f64,
        expected_ttl_bytes: f64,
    },
    /// One notification-lifecycle span (see [`crate::trace`]). Sampled
    /// spans flow through the same sinks as every other event so one
    /// JSONL trace interleaves decisions and lifecycles in time order.
    Span(Span),
    /// An alert rule changed state (see [`crate::alert`]). `value_milli`
    /// is the rule's triggering measurement ×1000 (burn rate or drift
    /// score) so the event stays `Copy` without an f64 formatting
    /// dependency in the state machine.
    AlertTransition {
        t_us: u64,
        rule: &'static str,
        from: &'static str,
        to: &'static str,
        value_milli: u64,
    },
    /// The policy autopilot promoted a shadow policy to live (see
    /// `bad_cache::autopilot`). `net_regret` and `requested` are the
    /// deciding window's counters: objects the incoming policy's ghost
    /// hit beyond the outgoing live policy, out of the window's
    /// requested objects.
    PolicySwitch {
        t_us: u64,
        from: &'static str,
        to: &'static str,
        window: u64,
        net_regret: u64,
        requested: u64,
    },
}

impl Event {
    /// The stable `layer.event` label of this variant, used as the
    /// JSONL `kind` field and for filtering traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CacheInsert { .. } => "cache.insert",
            Event::CacheHit { .. } => "cache.hit",
            Event::CacheMiss { .. } => "cache.miss",
            Event::CacheEvict { .. } => "cache.evict",
            Event::CacheExpire { .. } => "cache.expire",
            Event::CacheConsume { .. } => "cache.consume",
            Event::CacheUnsubscribe { .. } => "cache.unsubscribe",
            Event::TtlRetune { .. } => "cache.ttl_retune",
            Event::BrokerRetrieve { .. } => "broker.retrieve",
            Event::BrokerDeliver { .. } => "broker.deliver",
            Event::BrokerFailover { .. } => "broker.failover",
            Event::ClusterChannelFire { .. } => "cluster.channel_fire",
            Event::ClusterEnrich { .. } => "cluster.enrich",
            Event::EpochSample { .. } => "sim.epoch_sample",
            Event::Span(span) => match span.kind {
                SpanKind::ResultProduced => "span.result_produced",
                SpanKind::CacheInsert => "span.cache_insert",
                SpanKind::RetrieveHit => "span.retrieve_hit",
                SpanKind::RetrieveMiss => "span.retrieve_miss",
                SpanKind::BackendFetch => "span.backend_fetch",
                SpanKind::Drop => "span.drop",
                SpanKind::Expire => "span.expire",
                SpanKind::FullyConsumed => "span.fully_consumed",
                SpanKind::CoalescedFetch => "span.coalesced_fetch",
            },
            Event::AlertTransition { .. } => "health.alert_transition",
            Event::PolicySwitch { .. } => "cache.policy_switch",
        }
    }

    /// The event's virtual-time timestamp in microseconds.
    pub fn t_us(&self) -> u64 {
        match *self {
            Event::CacheInsert { t_us, .. }
            | Event::CacheHit { t_us, .. }
            | Event::CacheMiss { t_us, .. }
            | Event::CacheEvict { t_us, .. }
            | Event::CacheExpire { t_us, .. }
            | Event::CacheConsume { t_us, .. }
            | Event::CacheUnsubscribe { t_us, .. }
            | Event::TtlRetune { t_us, .. }
            | Event::BrokerRetrieve { t_us, .. }
            | Event::BrokerDeliver { t_us, .. }
            | Event::BrokerFailover { t_us, .. }
            | Event::ClusterChannelFire { t_us, .. }
            | Event::ClusterEnrich { t_us, .. }
            | Event::EpochSample { t_us, .. }
            | Event::AlertTransition { t_us, .. }
            | Event::PolicySwitch { t_us, .. } => t_us,
            Event::Span(span) => span.t_us,
        }
    }

    /// Appends this event as one JSON object (no trailing newline) to
    /// `out`. Every object starts with `kind` and `t_us` so traces are
    /// greppable without a JSON parser.
    pub fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field_str("kind", self.kind());
        obj.field_u64("t_us", self.t_us());
        match *self {
            Event::CacheInsert {
                cache,
                object,
                bytes,
                total_bytes,
                ..
            } => {
                obj.field_u64("cache", cache);
                obj.field_u64("object", object);
                obj.field_u64("bytes", bytes);
                obj.field_u64("total_bytes", total_bytes);
            }
            Event::CacheHit {
                cache,
                objects,
                bytes,
                ..
            }
            | Event::CacheMiss {
                cache,
                objects,
                bytes,
                ..
            }
            | Event::CacheConsume {
                cache,
                objects,
                bytes,
                ..
            }
            | Event::CacheUnsubscribe {
                cache,
                objects,
                bytes,
                ..
            } => {
                obj.field_u64("cache", cache);
                obj.field_u64("objects", objects);
                obj.field_u64("bytes", bytes);
            }
            Event::CacheEvict {
                cache,
                object,
                bytes,
                policy,
                score,
                ..
            } => {
                obj.field_u64("cache", cache);
                obj.field_u64("object", object);
                obj.field_u64("bytes", bytes);
                obj.field_str("policy", policy);
                obj.field_f64("score", score);
            }
            Event::CacheExpire {
                cache,
                object,
                bytes,
                ttl_us,
                ..
            } => {
                obj.field_u64("cache", cache);
                obj.field_u64("object", object);
                obj.field_u64("bytes", bytes);
                obj.field_u64("ttl_us", ttl_us);
            }
            Event::TtlRetune {
                cache,
                lambda,
                eta,
                rho,
                ttl_us,
                ..
            } => {
                obj.field_u64("cache", cache);
                obj.field_f64("lambda", lambda);
                obj.field_f64("eta", eta);
                obj.field_f64("rho", rho);
                obj.field_u64("ttl_us", ttl_us);
            }
            Event::BrokerRetrieve {
                subscriber,
                hit_objects,
                miss_objects,
                hit_bytes,
                miss_bytes,
                ..
            } => {
                obj.field_u64("subscriber", subscriber);
                obj.field_u64("hit_objects", hit_objects);
                obj.field_u64("miss_objects", miss_objects);
                obj.field_u64("hit_bytes", hit_bytes);
                obj.field_u64("miss_bytes", miss_bytes);
            }
            Event::BrokerDeliver {
                subscriber,
                objects,
                bytes,
                latency_us,
                ..
            } => {
                obj.field_u64("subscriber", subscriber);
                obj.field_u64("objects", objects);
                obj.field_u64("bytes", bytes);
                obj.field_u64("latency_us", latency_us);
            }
            Event::BrokerFailover {
                failed_broker,
                migrated,
                ..
            } => {
                obj.field_u64("failed_broker", failed_broker);
                obj.field_u64("migrated", migrated);
            }
            Event::ClusterChannelFire {
                channel,
                subscription,
                results,
                bytes,
                ..
            } => {
                obj.field_u64("channel", channel);
                obj.field_u64("subscription", subscription);
                obj.field_u64("results", results);
                obj.field_u64("bytes", bytes);
            }
            Event::ClusterEnrich { channel, rules, .. } => {
                obj.field_u64("channel", channel);
                obj.field_u64("rules", rules);
            }
            Event::EpochSample {
                broker,
                occupancy_bytes,
                hit_ratio,
                expected_ttl_bytes,
                ..
            } => {
                obj.field_u64("broker", broker);
                obj.field_u64("occupancy_bytes", occupancy_bytes);
                obj.field_f64("hit_ratio", hit_ratio);
                obj.field_f64("expected_ttl_bytes", expected_ttl_bytes);
            }
            Event::Span(span) => {
                span.write_fields(&mut obj);
            }
            Event::AlertTransition {
                rule,
                from,
                to,
                value_milli,
                ..
            } => {
                obj.field_str("rule", rule);
                obj.field_str("from", from);
                obj.field_str("to", to);
                obj.field_f64("value", value_milli as f64 / 1000.0);
            }
            Event::PolicySwitch {
                from,
                to,
                window,
                net_regret,
                requested,
                ..
            } => {
                obj.field_str("from", from);
                obj.field_str("to", to);
                obj.field_u64("window", window);
                obj.field_u64("net_regret", net_regret);
                obj.field_u64("requested", requested);
            }
        }
    }

    /// Renders this event as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        self.write_json(&mut out);
        out
    }
}

/// Where structured events go. Implementations must be cheap to call
/// and safe to share across broker threads.
pub trait EventSink: Send + Sync + fmt::Debug {
    /// Whether callers should bother constructing events at all.
    /// Defaults to `true`; only [`NullSink`] returns `false`. Hot
    /// paths check this before building an [`Event`].
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event.
    fn record(&self, event: &Event);
}

/// A shareable handle to any sink.
pub type SharedSink = Arc<dyn EventSink>;

/// The default sink: drops everything and reports `enabled() == false`
/// so instrumented code skips event construction entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: &Event) {}
}

/// A fresh [`NullSink`] handle — the default wiring everywhere.
pub fn null_sink() -> SharedSink {
    Arc::new(NullSink)
}

/// Keeps the newest `capacity` events in memory; ideal for tests and
/// for post-mortem dumps in long-lived processes.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .expect("ring buffer poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("ring buffer poisoned").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for RingBufferSink {
    fn record(&self, event: &Event) {
        let mut events = self.events.lock().expect("ring buffer poisoned");
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(*event);
    }
}

/// Streams events as JSON Lines to any writer (file, stderr, Vec).
/// One event per line; lines are valid standalone JSON objects.
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(writer),
        }
    }

    /// Creates (truncating) a trace file at `path`, buffered.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out.lock().expect("jsonl sink poisoned").flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().map(|mut w| w.flush());
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let _ = self
            .out
            .lock()
            .expect("jsonl sink poisoned")
            .write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let sink = null_sink();
        assert!(!sink.enabled());
        sink.record(&Event::CacheConsume {
            t_us: 1,
            cache: 2,
            objects: 3,
            bytes: 4,
        });
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let sink = RingBufferSink::new(2);
        assert!(sink.enabled());
        for i in 0..3 {
            sink.record(&Event::CacheHit {
                t_us: i,
                cache: 0,
                objects: 1,
                bytes: 1,
            });
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_us(), 1);
        assert_eq!(events[1].t_us(), 2);
    }

    #[test]
    fn evict_event_serializes_policy_and_score() {
        let event = Event::CacheEvict {
            t_us: 1_000_000,
            cache: 7,
            object: 9,
            bytes: 512,
            policy: "lsc",
            score: 0.125,
        };
        assert_eq!(event.kind(), "cache.evict");
        assert_eq!(
            event.to_json(),
            r#"{"kind":"cache.evict","t_us":1000000,"cache":7,"object":9,"bytes":512,"policy":"lsc","score":0.125}"#
        );
    }

    #[test]
    fn ttl_retune_event_serializes_rates() {
        let event = Event::TtlRetune {
            t_us: 60_000_000,
            cache: 3,
            lambda: 10.0,
            eta: 4.0,
            rho: 6.0,
            ttl_us: 30_000_000,
        };
        assert_eq!(
            event.to_json(),
            r#"{"kind":"cache.ttl_retune","t_us":60000000,"cache":3,"lambda":10,"eta":4,"rho":6,"ttl_us":30000000}"#
        );
    }

    #[test]
    fn policy_switch_event_serializes_window_counters() {
        let event = Event::PolicySwitch {
            t_us: 90_000_000,
            from: "LRU",
            to: "LSC",
            window: 12,
            net_regret: 40,
            requested: 200,
        };
        assert_eq!(event.kind(), "cache.policy_switch");
        assert_eq!(event.t_us(), 90_000_000);
        assert_eq!(
            event.to_json(),
            r#"{"kind":"cache.policy_switch","t_us":90000000,"from":"LRU","to":"LSC","window":12,"net_regret":40,"requested":200}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buffer: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let sink = JsonlSink::new(Box::new(Shared(buffer.clone())));
        sink.record(&Event::BrokerFailover {
            t_us: 5,
            failed_broker: 1,
            migrated: 12,
        });
        sink.record(&Event::ClusterEnrich {
            t_us: 6,
            channel: 2,
            rules: 1,
        });
        sink.flush().unwrap();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(r#"{"kind":"broker.failover""#));
        assert!(lines[1].contains(r#""rules":1"#));
    }

    #[test]
    fn jsonl_sink_flushes_buffered_tail_on_drop() {
        // A sim run that ends (or panics and unwinds) without calling
        // `flush()` must not lose the buffered tail of the trace.
        let path = std::env::temp_dir().join(format!(
            "bad-jsonl-drop-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&Event::CacheConsume {
                t_us: 1,
                cache: 2,
                objects: 3,
                bytes: 4,
            });
            // No explicit flush: the event sits in the BufWriter until
            // the sink is dropped here.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with(r#"{"kind":"cache.consume","t_us":1"#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn span_events_share_the_jsonl_taxonomy() {
        use crate::trace::{SpanId, SpanKind, TraceId};

        let trace = TraceId::for_object(9);
        let event = Event::Span(crate::trace::Span {
            trace,
            span: SpanId::derive(trace, SpanKind::BackendFetch, 5),
            parent: Some(SpanId::derive(trace, SpanKind::RetrieveMiss, 5)),
            kind: SpanKind::BackendFetch,
            t_us: 12,
            cache: 4,
            object: 9,
            subscriber: 5,
            bytes: 128,
            lag_us: 900,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
        assert_eq!(event.kind(), "span.backend_fetch");
        assert_eq!(event.t_us(), 12);
        let json = event.to_json();
        assert!(json.starts_with(r#"{"kind":"span.backend_fetch","t_us":12,"trace":"#));
        assert!(json.contains(r#""lag_us":900"#));
    }
}
