//! `bad-telemetry` — zero-dependency observability for the BAD
//! edge-caching system.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the minimal useful subset of `tracing` +
//! `prometheus` on `std` alone:
//!
//! - [`Registry`], [`Counter`], [`Gauge`]: `AtomicU64`-backed named
//!   metrics cheap enough for hot paths, rendered on demand in the
//!   Prometheus text exposition format by [`Registry::render`].
//! - [`Histogram`]: log-bucketed (power-of-two buckets) latency/size
//!   distributions with `p50/p90/p99/max` readout.
//! - [`Event`] + [`EventSink`]: a typed taxonomy of per-decision
//!   events (cache insert/hit/miss/evict/expire/consume/ttl-retune,
//!   broker retrieve/deliver/failover, cluster channel-fire/enrich,
//!   sim epoch samples) with [`RingBufferSink`] (tests, post-mortem)
//!   and [`JsonlSink`] (trace files) implementations. The default
//!   [`NullSink`] reports `enabled() == false`, so instrumented code
//!   skips event construction entirely when tracing is off.
//! - [`Sampler`]: periodic virtual-time snapshots of occupancy, hit
//!   ratio and the expected TTL-bounded size `Σ ρ_i·T_i`.
//! - [`trace`]: end-to-end notification lifecycle spans
//!   ([`TraceId`]/[`SpanId`] derived deterministically via splitmix64,
//!   causal parent links, per-stage lag + staleness histograms, SLO
//!   violation counters) with a [`FlightRecorder`] ring for post-mortem
//!   dumps and a [`Tracer`] emission point shared by every layer.
//! - [`ScrapeServer`]: a std-only TCP endpoint serving `/metrics`
//!   (Prometheus text), `/healthz`, `/trace/recent`, `/policies`,
//!   `/timeseries`, `/alerts`, `/profile` and `/hot` live.
//! - [`sketch`]: fixed-memory hot-key attribution — Space-Saving
//!   heavy hitters along four axes (requests / bytes / misses / SLO
//!   violations), a HyperLogLog-style distinct-active estimator and
//!   top-K-only delivery-lag quantiles, merged order-independently
//!   across cache shards at read time.
//! - [`profile`]: the continuous hot-path profiler — instrumented
//!   shard/coalescer lock acquisition (wait/hold/contention per
//!   [`LockSite`]), per-operation stage timers folded into a
//!   flamegraph-exportable call tree, and per-bucket trace-id
//!   exemplars linking latency outliers to the flight recorder.
//! - [`timeseries`]: a fixed-capacity ring of delta-encoded windowed
//!   registry snapshots — `rate()`, sliding-window quantiles and
//!   min/max/avg over arbitrary virtual-time lookbacks.
//! - [`alert`]: SLO error budgets with multi-window burn-rate rules
//!   and a pending→firing→resolved state machine emitting typed
//!   transitions into the flight recorder and event sinks.
//! - [`drift`]: the paper's eqs. 5–7 as a live predictor — measured
//!   λ/η/ρ/TTL in, predicted hit ratio/staleness/occupancy out,
//!   compared against observed values by an exponentially-smoothed
//!   drift score.
//! - [`HealthEngine`]: the three layers above composed behind one
//!   window-gated `tick`, driven from maintenance paths.
//!
//! ```
//! use bad_telemetry::{Event, Registry, RingBufferSink, SharedSink};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("bad_cache_hit_objects_total");
//! hits.add(3);
//!
//! let ring = Arc::new(RingBufferSink::new(16));
//! let sink: SharedSink = ring.clone();
//! if sink.enabled() {
//!     sink.record(&Event::CacheHit { t_us: 42, cache: 1, objects: 3, bytes: 96 });
//! }
//! assert_eq!(ring.len(), 1);
//! assert!(registry.render().contains("bad_cache_hit_objects_total 3"));
//! ```

pub mod alert;
pub mod drift;
pub mod event;
pub mod health;
pub mod histogram;
pub mod json;
pub mod profile;
pub mod registry;
pub mod sampler;
pub mod scrape;
pub mod sketch;
pub mod timeseries;
pub mod trace;

pub use alert::{AlertManager, AlertState, AlertStateMachine, BurnRateRule, ValueSource};
pub use drift::{
    predict, DriftConfig, DriftDetector, DriftSample, EventRateEstimator, ModelPrediction,
    SubscriptionModel,
};
pub use event::{null_sink, Event, EventSink, JsonlSink, NullSink, RingBufferSink, SharedSink};
pub use health::{HealthConfig, HealthEngine, HealthObservation};
pub use histogram::{Histogram, HistogramSnapshot};
pub use profile::{LockSite, OpTimer, ProfileConfig, ProfiledGuard, Profiler, StagePath};
pub use registry::{escape_label_value, Counter, Gauge, Registry};
pub use sampler::{Sample, Sampler};
pub use scrape::{
    EndpointFn, HealthFn, LimitFn, PoliciesFn, ScrapeEndpoints, ScrapeServer, DEFAULT_SCRAPE_LIMIT,
};
pub use sketch::{
    DistinctEstimator, HotSnapshot, LagHist, SketchConfig, SketchRecorder, SketchTotals,
    SpaceSaving, SsEntry,
};
pub use timeseries::{SeriesStats, TimeSeriesConfig, TimeSeriesStore};
pub use trace::{
    FlightRecorder, SharedTracer, SloConfig, Span, SpanId, SpanKind, TraceConfig, TraceId, Tracer,
};
