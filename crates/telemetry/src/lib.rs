//! `bad-telemetry` — zero-dependency observability for the BAD
//! edge-caching system.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the minimal useful subset of `tracing` +
//! `prometheus` on `std` alone:
//!
//! - [`Registry`], [`Counter`], [`Gauge`]: `AtomicU64`-backed named
//!   metrics cheap enough for hot paths, rendered on demand in the
//!   Prometheus text exposition format by [`Registry::render`].
//! - [`Histogram`]: log-bucketed (power-of-two buckets) latency/size
//!   distributions with `p50/p90/p99/max` readout.
//! - [`Event`] + [`EventSink`]: a typed taxonomy of per-decision
//!   events (cache insert/hit/miss/evict/expire/consume/ttl-retune,
//!   broker retrieve/deliver/failover, cluster channel-fire/enrich,
//!   sim epoch samples) with [`RingBufferSink`] (tests, post-mortem)
//!   and [`JsonlSink`] (trace files) implementations. The default
//!   [`NullSink`] reports `enabled() == false`, so instrumented code
//!   skips event construction entirely when tracing is off.
//! - [`Sampler`]: periodic virtual-time snapshots of occupancy, hit
//!   ratio and the expected TTL-bounded size `Σ ρ_i·T_i`.
//! - [`trace`]: end-to-end notification lifecycle spans
//!   ([`TraceId`]/[`SpanId`] derived deterministically via splitmix64,
//!   causal parent links, per-stage lag + staleness histograms, SLO
//!   violation counters) with a [`FlightRecorder`] ring for post-mortem
//!   dumps and a [`Tracer`] emission point shared by every layer.
//! - [`ScrapeServer`]: a std-only TCP endpoint serving `/metrics`
//!   (Prometheus text), `/healthz` and `/trace/recent` live.
//!
//! ```
//! use bad_telemetry::{Event, Registry, RingBufferSink, SharedSink};
//! use std::sync::Arc;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("bad_cache_hit_objects_total");
//! hits.add(3);
//!
//! let ring = Arc::new(RingBufferSink::new(16));
//! let sink: SharedSink = ring.clone();
//! if sink.enabled() {
//!     sink.record(&Event::CacheHit { t_us: 42, cache: 1, objects: 3, bytes: 96 });
//! }
//! assert_eq!(ring.len(), 1);
//! assert!(registry.render().contains("bad_cache_hit_objects_total 3"));
//! ```

pub mod event;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod sampler;
pub mod scrape;
pub mod trace;

pub use event::{null_sink, Event, EventSink, JsonlSink, NullSink, RingBufferSink, SharedSink};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{escape_label_value, Counter, Gauge, Registry};
pub use sampler::{Sample, Sampler};
pub use scrape::{HealthFn, PoliciesFn, ScrapeServer};
pub use trace::{
    FlightRecorder, SharedTracer, SloConfig, Span, SpanId, SpanKind, TraceConfig, TraceId, Tracer,
};
