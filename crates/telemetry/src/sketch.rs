//! Sketch-based hot-key attribution: who is hot, in fixed memory.
//!
//! Every other observability layer in this crate aggregates *across*
//! subscriptions — counters, histograms, traces and the health engine
//! can say the cache is thrashing but not *which* backend subscriptions
//! are doing it, because one label series per subscription is
//! cardinality-infeasible at millions of subscribers. This module
//! answers the attribution question with three classic streaming
//! sketches, all `std`-only, mergeable and O(capacity) in memory
//! regardless of key cardinality:
//!
//! * [`SpaceSaving`] — top-K heavy hitters (Metwally et al.). Any key
//!   whose true count exceeds `total / capacity` is guaranteed present,
//!   and every estimate is an upper bound overshooting by at most its
//!   recorded `err`. Four independent instances track the four
//!   attribution axes: requests, bytes served, misses, and
//!   delivery-lag SLO violations.
//! * [`DistinctEstimator`] — a HyperLogLog-style register array
//!   estimating how many *distinct* subscriptions were active, which a
//!   heavy-hitter list alone cannot say (ten hot keys out of 50 active
//!   is a very different cache than ten hot keys out of a million).
//! * per-key log-bucketed delivery-lag quantiles ([`LagHist`]) for the
//!   keys currently tracked by the requests sketch *only* — bounding
//!   lag memory by `capacity × buckets` instead of by key cardinality.
//!
//! The write side is [`SketchRecorder`]: a sampling gate (one relaxed
//! RMW per op when skipping; recorded ops weight their increments by
//! the sampling period so estimates stay unbiased) in front of a
//! mutex-protected sketch state. The intended deployment is one
//! recorder per cache shard — the shard mutex already serializes the
//! hot path, so the recorder's own mutex is uncontended — merged at
//! read time by [`HotSnapshot::merge`], whose result is independent of
//! shard order (see `merge_is_order_independent` below; the scrape
//! endpoint's `/hot` body is byte-identical under shard permutation).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The same splitmix64 finalizer the cache tier routes shards with —
/// deterministic across runs and platforms.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Sketch tuning. `Copy` so it rides inside broker/runtime configs.
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Space-Saving slots per axis. The guaranteed-present threshold is
    /// `total / capacity`; 64 slots resolve a Zipf head comfortably
    /// while keeping eviction scans trivial.
    pub capacity: usize,
    /// Keys rendered per axis in JSON views (≤ `capacity`).
    pub top_k: usize,
    /// Record 1 in N ops, weighting increments by N (`≤ 1` records
    /// every op). Skipped ops cost one relaxed RMW.
    pub sample_every_n: u32,
    /// Delivery-lag threshold feeding the SLO-violations axis, in
    /// virtual microseconds. Mirrors the tracer's delivery-lag SLO.
    pub slo_lag_us: u64,
}

impl Default for SketchConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            top_k: 10,
            sample_every_n: 1,
            slo_lag_us: 2_000_000,
        }
    }
}

/// One Space-Saving slot: the estimate and its maximum overcount.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SsEntry {
    /// Estimated count — an upper bound on the true count.
    pub count: u64,
    /// Maximum overestimation: `count - err ≤ true ≤ count`.
    pub err: u64,
}

/// The Space-Saving heavy-hitter sketch over `u64` keys.
///
/// Backed by a `BTreeMap` rather than a hash map so iteration (and
/// therefore min-slot eviction and JSON rendering) is deterministic —
/// `std`'s `HashMap` is randomly seeded per process, which would make
/// two replays of the same tape render different tie-breaks.
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    entries: BTreeMap<u64, SsEntry>,
    /// Total weight recorded (the `N` in the `N / capacity` bound).
    total: u64,
}

impl SpaceSaving {
    /// An empty sketch with `capacity.max(1)` slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            total: 0,
        }
    }

    /// Records `weight` occurrences of `key`. Returns the key evicted
    /// to make room, if any — callers tracking per-key side state (the
    /// lag histograms) prune on eviction.
    pub fn record(&mut self, key: u64, weight: u64) -> Option<u64> {
        if weight == 0 {
            return None;
        }
        self.total += weight;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.count += weight;
            return None;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(
                key,
                SsEntry {
                    count: weight,
                    err: 0,
                },
            );
            return None;
        }
        // Classic Space-Saving: the new key inherits the min slot's
        // count as its overestimate. BTreeMap iterates key-ascending,
        // so `<` (not `<=`) picks the smallest-keyed min deterministically.
        let (&victim, &min) = self
            .entries
            .iter()
            .reduce(|a, b| if b.1.count < a.1.count { b } else { a })
            .expect("capacity ≥ 1");
        self.entries.remove(&victim);
        self.entries.insert(
            key,
            SsEntry {
                count: min.count + weight,
                err: min.count,
            },
        );
        Some(victim)
    }

    /// Total weight recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The guaranteed-presence threshold: any key with true count
    /// strictly above this is in [`SpaceSaving::entries`].
    pub fn epsilon(&self) -> u64 {
        self.total / self.capacity as u64
    }

    /// The count floor for keys *not* in the sketch: when full, a
    /// missing key's true count is at most the minimum slot count.
    pub fn absent_bound(&self) -> u64 {
        if self.entries.len() < self.capacity {
            0
        } else {
            self.entries.values().map(|e| e.count).min().unwrap_or(0)
        }
    }

    /// The tracked entries (≤ capacity), key-ascending.
    pub fn entries(&self) -> &BTreeMap<u64, SsEntry> {
        &self.entries
    }

    /// The top `k` entries ordered by count descending, key ascending
    /// on ties — a total order, so renders are deterministic.
    pub fn top(&self, k: usize) -> Vec<(u64, SsEntry)> {
        let mut all: Vec<(u64, SsEntry)> = self.entries.iter().map(|(&k, &e)| (k, e)).collect();
        all.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Merges any number of sketches into one, symmetrically: the
    /// result depends only on the *set* of inputs, never their order.
    ///
    /// Follows the mergeable-summaries construction (Agarwal et al.):
    /// for each key in the union, the merged estimate sums the per-
    /// sketch counts where present and the per-sketch absent bound
    /// where not (a key missing from a full sketch may have occurred
    /// up to that sketch's min count), keeping the top `capacity` by
    /// `(count desc, key asc)`. Upper-bound and heavy-hitter
    /// guarantees carry over with the summed totals.
    pub fn merge(inputs: &[&SpaceSaving]) -> SpaceSaving {
        let capacity = inputs.iter().map(|s| s.capacity).max().unwrap_or(1);
        let mut out = SpaceSaving::new(capacity);
        out.total = inputs.iter().map(|s| s.total).sum();
        let bounds: Vec<u64> = inputs.iter().map(|s| s.absent_bound()).collect();
        let mut merged: BTreeMap<u64, SsEntry> = BTreeMap::new();
        for sketch in inputs {
            for &key in sketch.entries.keys() {
                if merged.contains_key(&key) {
                    continue;
                }
                let mut entry = SsEntry::default();
                for (other, &bound) in inputs.iter().zip(&bounds) {
                    match other.entries.get(&key) {
                        Some(e) => {
                            entry.count += e.count;
                            entry.err += e.err;
                        }
                        None => {
                            entry.count += bound;
                            entry.err += bound;
                        }
                    }
                }
                merged.insert(key, entry);
            }
        }
        let mut ranked: Vec<(u64, SsEntry)> = merged.into_iter().collect();
        ranked.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        ranked.truncate(capacity);
        out.entries = ranked.into_iter().collect();
        out
    }
}

/// HyperLogLog register count (`b = 8` index bits). 256 registers give
/// ~6.5% standard error — ample for "tens vs. thousands vs. millions
/// active" at 256 bytes per shard.
const HLL_REGISTERS: usize = 256;

/// A HyperLogLog-style distinct counter over `u64` keys.
#[derive(Clone, Debug)]
pub struct DistinctEstimator {
    registers: [u8; HLL_REGISTERS],
}

impl Default for DistinctEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl DistinctEstimator {
    /// An empty estimator.
    pub fn new() -> Self {
        Self {
            registers: [0; HLL_REGISTERS],
        }
    }

    /// Observes one key occurrence (idempotent per key, as distinct
    /// counting requires).
    pub fn observe(&mut self, key: u64) {
        let hash = mix64(key);
        let idx = (hash >> 56) as usize;
        // Rank of the first set bit in the remaining 56 bits, 1-based.
        let rho = ((hash << 8) | 0x80).leading_zeros() as u8 + 1;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// The distinct-count estimate, with the standard small-range
    /// linear-counting correction.
    pub fn estimate(&self) -> u64 {
        let m = HLL_REGISTERS as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let sum: f64 = self
            .registers
            .iter()
            .map(|&r| 1.0 / (1u64 << r.min(63)) as f64)
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            (m * (m / zeros as f64).ln()).round() as u64
        } else {
            raw.round() as u64
        }
    }

    /// Register-wise max — commutative and associative, so merged
    /// estimates are independent of input order.
    pub fn merge(&mut self, other: &DistinctEstimator) {
        for (mine, theirs) in self.registers.iter_mut().zip(&other.registers) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Log buckets per [`LagHist`]: bucket 0 holds zero, bucket `i` holds
/// `[2^(i-1), 2^i)` microseconds, the last bucket saturates. 48 covers
/// lags up to ~8.9 years of virtual time.
const LAG_BUCKETS: usize = 48;

/// A compact single-writer log-bucketed lag histogram (the same bucket
/// layout as [`crate::Histogram`], minus the atomics — it only lives
/// behind the recorder's mutex).
#[derive(Clone, Debug)]
pub struct LagHist {
    buckets: [u64; LAG_BUCKETS],
}

impl Default for LagHist {
    fn default() -> Self {
        Self {
            buckets: [0; LAG_BUCKETS],
        }
    }
}

impl LagHist {
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(LAG_BUCKETS - 1)
        }
    }

    /// Records `weight` observations of `value` microseconds.
    pub fn record(&mut self, value: u64, weight: u64) {
        self.buckets[Self::bucket_index(value)] += weight;
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate quantile: the upper bound of the bucket holding the
    /// `ceil(q·count)`-th observation. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            seen += bucket;
            if seen >= target {
                return match i {
                    0 => 0,
                    i => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }

    /// Bucket-wise sum — commutative, for read-time shard merging.
    pub fn merge(&mut self, other: &LagHist) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Aggregate (non-sketched) totals, for skew and coverage readouts.
#[derive(Clone, Copy, Debug, Default)]
pub struct SketchTotals {
    /// Objects requested (served from cache + fetched on miss).
    pub requests: u64,
    /// Bytes served from cache.
    pub bytes: u64,
    /// Objects fetched from the cluster on miss.
    pub misses: u64,
    /// Delivery-lag SLO violations.
    pub slo_violations: u64,
}

#[derive(Clone, Debug)]
struct SketchState {
    requests: SpaceSaving,
    bytes: SpaceSaving,
    misses: SpaceSaving,
    slo: SpaceSaving,
    distinct: DistinctEstimator,
    /// Lag histograms for keys currently tracked by `requests` only.
    lags: BTreeMap<u64, LagHist>,
    totals: SketchTotals,
}

impl SketchState {
    fn new(capacity: usize) -> Self {
        Self {
            requests: SpaceSaving::new(capacity),
            bytes: SpaceSaving::new(capacity),
            misses: SpaceSaving::new(capacity),
            slo: SpaceSaving::new(capacity),
            distinct: DistinctEstimator::new(),
            lags: BTreeMap::new(),
            totals: SketchTotals::default(),
        }
    }

    fn track_requests(&mut self, key: u64, weight: u64) {
        if let Some(evicted) = self.requests.record(key, weight) {
            // The lag map follows the requests sketch's key set, so
            // memory stays bounded by capacity, not cardinality.
            self.lags.remove(&evicted);
        }
    }
}

/// The write-side recorder: a sampling gate in front of one sketch
/// state. All methods are `&self`; the intended deployment is one
/// recorder per cache shard plus read-time [`HotSnapshot::merge`].
#[derive(Debug)]
pub struct SketchRecorder {
    config: SketchConfig,
    ops: AtomicU64,
    state: Mutex<SketchState>,
}

impl SketchRecorder {
    /// A recorder with `config` (capacity floored at 1, `top_k` clamped
    /// to capacity).
    pub fn new(config: SketchConfig) -> Self {
        let config = SketchConfig {
            capacity: config.capacity.max(1),
            top_k: config.top_k.clamp(1, config.capacity.max(1)),
            ..config
        };
        Self {
            config,
            ops: AtomicU64::new(0),
            state: Mutex::new(SketchState::new(config.capacity)),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> SketchConfig {
        self.config
    }

    /// The sampling decision: `Some(weight)` to record with that
    /// weight, `None` to skip. The skip path is a racy load/store pair
    /// rather than an atomic RMW: a `lock`ed increment costs ~20 cycles
    /// even uncontended, which at a coalescer batch's 32 hook calls per
    /// op is most of the sampled-mode budget the overhead bench gates.
    /// Concurrent recorders may lose increments or double-sample a
    /// tick; that only jitters the sampling phase — the `weight = n`
    /// compensation keeps totals unbiased in expectation, and
    /// single-threaded replays (the deterministic sim) see exact 1-in-n
    /// behaviour.
    #[inline]
    fn sample(&self) -> Option<u64> {
        let n = self.config.sample_every_n;
        if n <= 1 {
            return Some(1);
        }
        let tick = self.ops.load(Ordering::Relaxed);
        self.ops.store(tick.wrapping_add(1), Ordering::Relaxed);
        if tick.is_multiple_of(n as u64) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Attributes a cache hit: `objects` served (`bytes` of them) for
    /// `key`. No-op when `objects == 0`.
    pub fn record_hit(&self, key: u64, objects: u64, bytes: u64) {
        if objects == 0 {
            return;
        }
        let Some(w) = self.sample() else { return };
        let mut state = self.state.lock().expect("sketch state poisoned");
        state.track_requests(key, w * objects);
        state.bytes.record(key, w * bytes);
        state.distinct.observe(key);
        state.totals.requests += w * objects;
        state.totals.bytes += w * bytes;
    }

    /// Attributes a miss fetch: `objects` fetched from the cluster for
    /// `key`. Misses count into the requests axis too (requests =
    /// hit + miss objects). No-op when `objects == 0`.
    pub fn record_miss(&self, key: u64, objects: u64) {
        if objects == 0 {
            return;
        }
        let Some(w) = self.sample() else { return };
        let mut state = self.state.lock().expect("sketch state poisoned");
        state.track_requests(key, w * objects);
        state.misses.record(key, w * objects);
        state.distinct.observe(key);
        state.totals.requests += w * objects;
        state.totals.misses += w * objects;
    }

    /// Attributes an ACK (consumption marker advance) — activity only:
    /// feeds the distinct-active estimator without touching the
    /// heavy-hitter axes.
    pub fn record_ack(&self, key: u64) {
        if self.sample().is_none() {
            return;
        }
        let mut state = self.state.lock().expect("sketch state poisoned");
        state.distinct.observe(key);
    }

    /// Attributes one delivered object's end-to-end lag: feeds the
    /// per-key quantiles (if `key` is currently tracked by the
    /// requests sketch) and the SLO-violations axis when `lag_us`
    /// exceeds the configured threshold.
    pub fn record_delivery_lag(&self, key: u64, lag_us: u64) {
        let Some(w) = self.sample() else { return };
        let mut state = self.state.lock().expect("sketch state poisoned");
        if state.requests.entries().contains_key(&key) {
            state.lags.entry(key).or_default().record(lag_us, w);
        }
        if lag_us > self.config.slo_lag_us {
            state.slo.record(key, w);
            state.totals.slo_violations += w;
        }
    }

    /// A point-in-time copy of the sketch state.
    pub fn snapshot(&self) -> HotSnapshot {
        let state = self.state.lock().expect("sketch state poisoned");
        HotSnapshot {
            requests: state.requests.clone(),
            bytes: state.bytes.clone(),
            misses: state.misses.clone(),
            slo: state.slo.clone(),
            distinct: state.distinct.clone(),
            lags: state.lags.clone(),
            totals: state.totals,
            top_k: self.config.top_k,
            sample_every_n: self.config.sample_every_n.max(1),
        }
    }
}

/// A mergeable point-in-time view of one or more recorders — the
/// payload behind `/hot` and the `/healthz` top-5 summary.
#[derive(Clone, Debug)]
pub struct HotSnapshot {
    requests: SpaceSaving,
    bytes: SpaceSaving,
    misses: SpaceSaving,
    slo: SpaceSaving,
    distinct: DistinctEstimator,
    lags: BTreeMap<u64, LagHist>,
    totals: SketchTotals,
    top_k: usize,
    sample_every_n: u32,
}

impl HotSnapshot {
    /// Merges per-shard snapshots symmetrically: every constituent
    /// fold (Space-Saving union, HLL register max, lag bucket sums,
    /// total sums) is commutative and the final render orders keys by
    /// `(count desc, key asc)`, so the result — down to the JSON bytes
    /// — is independent of shard order.
    pub fn merge(snapshots: &[HotSnapshot]) -> Option<HotSnapshot> {
        let first = snapshots.first()?;
        let axis = |pick: fn(&HotSnapshot) -> &SpaceSaving| {
            let refs: Vec<&SpaceSaving> = snapshots.iter().map(pick).collect();
            SpaceSaving::merge(&refs)
        };
        let requests = axis(|s| &s.requests);
        let mut distinct = DistinctEstimator::new();
        let mut lags: BTreeMap<u64, LagHist> = BTreeMap::new();
        let mut totals = SketchTotals::default();
        for snap in snapshots {
            distinct.merge(&snap.distinct);
            for (&key, hist) in &snap.lags {
                lags.entry(key).or_default().merge(hist);
            }
            totals.requests += snap.totals.requests;
            totals.bytes += snap.totals.bytes;
            totals.misses += snap.totals.misses;
            totals.slo_violations += snap.totals.slo_violations;
        }
        // Keep lag memory bounded after the union: only keys the merged
        // requests sketch still tracks.
        lags.retain(|key, _| requests.entries().contains_key(key));
        Some(HotSnapshot {
            requests,
            bytes: axis(|s| &s.bytes),
            misses: axis(|s| &s.misses),
            slo: axis(|s| &s.slo),
            distinct,
            lags,
            totals,
            top_k: first.top_k,
            sample_every_n: first.sample_every_n,
        })
    }

    /// The requests-axis heavy hitters, `(key, entry)` ranked.
    pub fn top_requests(&self, k: usize) -> Vec<(u64, SsEntry)> {
        self.requests.top(k)
    }

    /// Estimated distinct active subscriptions.
    pub fn distinct_active(&self) -> u64 {
        self.distinct.estimate()
    }

    /// Aggregate totals across all keys (not just the tracked ones).
    pub fn totals(&self) -> SketchTotals {
        self.totals
    }

    /// Demand concentration in `[0, 1]`: the share of all requests
    /// attributable to the top-K keys (estimates clamped so sketch
    /// overcounting can never report more than 100%). The health
    /// engine alarms on this — a skew near 1.0 means a handful of
    /// subscriptions own the cache.
    pub fn skew(&self) -> f64 {
        if self.totals.requests == 0 {
            return 0.0;
        }
        let top: u64 = self
            .requests
            .top(self.top_k)
            .iter()
            .map(|(_, e)| e.count - e.err)
            .sum();
        (top as f64 / self.totals.requests as f64).min(1.0)
    }

    fn axis_json(sketch: &SpaceSaving, k: usize) -> String {
        let mut out = String::from("[");
        for (i, (key, entry)) in sketch.top(k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut obj = crate::json::ObjectWriter::new(&mut out);
            obj.field_u64("key", *key);
            obj.field_u64("count", entry.count);
            obj.field_u64("err", entry.err);
        }
        out.push(']');
        out
    }

    /// The `/hot` endpoint body: all four axes' top-K, the distinct-
    /// active estimate, per-key lag quantiles for the requests top-K,
    /// totals and error bounds. Deterministic byte-for-byte given the
    /// same merged state.
    pub fn to_json(&self) -> String {
        let mut body = String::with_capacity(1024);
        {
            let mut obj = crate::json::ObjectWriter::new(&mut body);
            obj.field_u64("top_k", self.top_k as u64);
            obj.field_u64("sample_every_n", u64::from(self.sample_every_n));
            let mut totals = String::new();
            {
                let mut t = crate::json::ObjectWriter::new(&mut totals);
                t.field_u64("requests", self.totals.requests);
                t.field_u64("bytes", self.totals.bytes);
                t.field_u64("misses", self.totals.misses);
                t.field_u64("slo_violations", self.totals.slo_violations);
            }
            obj.field_raw("totals", &totals);
            obj.field_u64("distinct_active_estimate", self.distinct.estimate());
            obj.field_u64("epsilon_requests", self.requests.epsilon());
            obj.field_f64("skew_top_k", self.skew());
            let mut top = String::from("{");
            top.push_str(&format!(
                r#""requests":{},"bytes":{},"misses":{},"slo_violations":{}"#,
                Self::axis_json(&self.requests, self.top_k),
                Self::axis_json(&self.bytes, self.top_k),
                Self::axis_json(&self.misses, self.top_k),
                Self::axis_json(&self.slo, self.top_k),
            ));
            top.push('}');
            obj.field_raw("top", &top);
            let mut lags = String::from("[");
            let mut first = true;
            for (key, _) in self.requests.top(self.top_k) {
                let Some(hist) = self.lags.get(&key) else {
                    continue;
                };
                if hist.count() == 0 {
                    continue;
                }
                if !first {
                    lags.push(',');
                }
                first = false;
                let mut row = crate::json::ObjectWriter::new(&mut lags);
                row.field_u64("key", key);
                row.field_u64("count", hist.count());
                row.field_u64("p50_us", hist.quantile(0.50));
                row.field_u64("p90_us", hist.quantile(0.90));
                row.field_u64("p99_us", hist.quantile(0.99));
            }
            lags.push(']');
            obj.field_raw("lag_us", &lags);
        }
        body
    }

    /// The compact summary embedded in `/healthz` and stamped into
    /// flight-recorder anomaly dumps: the top-`k` requests-axis keys
    /// plus the distinct-active estimate.
    pub fn summary_json(&self, k: usize) -> String {
        let mut body = String::with_capacity(256);
        {
            let mut obj = crate::json::ObjectWriter::new(&mut body);
            obj.field_u64("distinct_active_estimate", self.distinct.estimate());
            obj.field_f64("skew_top_k", self.skew());
            obj.field_raw("top_requests", &Self::axis_json(&self.requests, k));
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_is_exact_under_capacity() {
        let mut ss = SpaceSaving::new(8);
        for (key, n) in [(1u64, 5u64), (2, 3), (3, 9)] {
            for _ in 0..n {
                ss.record(key, 1);
            }
        }
        assert_eq!(ss.total(), 17);
        let top = ss.top(3);
        assert_eq!(top[0], (3, SsEntry { count: 9, err: 0 }));
        assert_eq!(top[1], (1, SsEntry { count: 5, err: 0 }));
        assert_eq!(top[2], (2, SsEntry { count: 3, err: 0 }));
    }

    #[test]
    fn space_saving_upper_bounds_and_retains_heavy_hitters() {
        // 4 heavy keys at 1000 each + 400 singleton keys, capacity 16.
        let mut ss = SpaceSaving::new(16);
        let mut true_counts: BTreeMap<u64, u64> = BTreeMap::new();
        for key in 0..4u64 {
            for _ in 0..1000 {
                ss.record(key, 1);
                *true_counts.entry(key).or_default() += 1;
            }
        }
        for key in 100..500u64 {
            ss.record(key, 1);
            *true_counts.entry(key).or_default() += 1;
        }
        // Guarantee: every key with true count > N/capacity is present,
        // and every estimate is an upper bound within err.
        let eps = ss.epsilon();
        for (&key, &truth) in &true_counts {
            if truth > eps {
                let entry = ss.entries().get(&key).expect("heavy hitter evicted");
                assert!(entry.count >= truth, "estimate below truth for {key}");
                assert!(
                    entry.count - entry.err <= truth,
                    "err bound broken for {key}"
                );
            }
        }
        let top: Vec<u64> = ss.top(4).into_iter().map(|(k, _)| k).collect();
        assert_eq!(top, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_is_order_independent_to_the_byte() {
        // Three overlapping streams; merged JSON must be identical for
        // every permutation of the inputs.
        let mut parts: Vec<HotSnapshot> = Vec::new();
        for shard in 0..3u64 {
            let rec = SketchRecorder::new(SketchConfig {
                capacity: 8,
                top_k: 5,
                ..SketchConfig::default()
            });
            for i in 0..200u64 {
                let key = (i * (shard + 7)) % 23;
                rec.record_hit(key, 1 + i % 3, 64 * (1 + i % 5));
                if i % 4 == 0 {
                    rec.record_miss(key, 1);
                }
                rec.record_delivery_lag(key, i * 1000);
            }
            parts.push(rec.snapshot());
        }
        let baseline = HotSnapshot::merge(&parts).unwrap().to_json();
        let permutations: [[usize; 3]; 5] = [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for perm in permutations {
            let shuffled: Vec<HotSnapshot> = perm.iter().map(|&i| parts[i].clone()).collect();
            let merged = HotSnapshot::merge(&shuffled).unwrap().to_json();
            assert_eq!(baseline, merged, "merge order changed the render");
        }
    }

    #[test]
    fn merged_estimates_upper_bound_the_union() {
        let a = SketchRecorder::new(SketchConfig {
            capacity: 8,
            ..SketchConfig::default()
        });
        let b = SketchRecorder::new(SketchConfig {
            capacity: 8,
            ..SketchConfig::default()
        });
        let mut truth: BTreeMap<u64, u64> = BTreeMap::new();
        for i in 0..500u64 {
            let key = i % 30;
            a.record_hit(key, 1, 1);
            *truth.entry(key).or_default() += 1;
            let key = i % 7;
            b.record_hit(key, 1, 1);
            *truth.entry(key).or_default() += 1;
        }
        let merged = HotSnapshot::merge(&[a.snapshot(), b.snapshot()]).unwrap();
        for (key, entry) in merged.requests.top(8) {
            assert!(
                entry.count >= truth[&key],
                "merged estimate {} below truth {} for {key}",
                entry.count,
                truth[&key]
            );
        }
    }

    #[test]
    fn distinct_estimator_tracks_cardinality() {
        let mut hll = DistinctEstimator::new();
        for key in 0..10_000u64 {
            hll.observe(key);
            hll.observe(key); // duplicates must not inflate
        }
        let est = hll.estimate() as f64;
        assert!(
            (est - 10_000.0).abs() / 10_000.0 < 0.15,
            "estimate {est} off by more than 15%"
        );
        // Small range: near-exact via linear counting.
        let mut small = DistinctEstimator::new();
        for key in 0..20u64 {
            small.observe(key);
        }
        let est = small.estimate();
        assert!((18..=22).contains(&est), "small estimate {est}");
        // Merge == union.
        let mut left = DistinctEstimator::new();
        let mut right = DistinctEstimator::new();
        for key in 0..5000u64 {
            left.observe(key);
            right.observe(key + 2500); // 50% overlap
        }
        left.merge(&right);
        let est = left.estimate() as f64;
        assert!(
            (est - 7500.0).abs() / 7500.0 < 0.15,
            "merged estimate {est} off"
        );
    }

    #[test]
    fn lag_quantiles_follow_top_k_membership() {
        let rec = SketchRecorder::new(SketchConfig {
            capacity: 2,
            top_k: 2,
            ..SketchConfig::default()
        });
        rec.record_hit(1, 10, 100);
        rec.record_hit(2, 5, 50);
        rec.record_delivery_lag(1, 1000);
        rec.record_delivery_lag(1, 2000);
        rec.record_delivery_lag(9, 5000); // untracked: no histogram
        let snap = rec.snapshot();
        assert!(snap.lags.contains_key(&1));
        assert!(!snap.lags.contains_key(&9));
        assert_eq!(snap.lags[&1].count(), 2);
        assert!(snap.lags[&1].quantile(0.5) >= 1000);
        // Key 3 displaces the min slot; the evicted key's lag state
        // goes with it.
        rec.record_hit(3, 100, 100);
        let snap = rec.snapshot();
        assert!(!snap.lags.contains_key(&2));
    }

    #[test]
    fn sampling_weights_keep_totals_unbiased() {
        let full = SketchRecorder::new(SketchConfig::default());
        let sampled = SketchRecorder::new(SketchConfig {
            sample_every_n: 8,
            ..SketchConfig::default()
        });
        for i in 0..8000u64 {
            full.record_hit(i % 3, 1, 10);
            sampled.record_hit(i % 3, 1, 10);
        }
        let f = full.snapshot().totals();
        let s = sampled.snapshot().totals();
        assert_eq!(f.requests, 8000);
        // The sampled stream records every 8th op at weight 8: totals
        // match exactly on a uniform tape.
        assert_eq!(s.requests, 8000);
        assert_eq!(s.bytes, f.bytes);
    }

    #[test]
    fn slo_axis_counts_only_violations() {
        let rec = SketchRecorder::new(SketchConfig {
            slo_lag_us: 1000,
            ..SketchConfig::default()
        });
        rec.record_hit(5, 1, 1);
        rec.record_delivery_lag(5, 500); // within SLO
        rec.record_delivery_lag(5, 1500); // violation
        rec.record_delivery_lag(5, 3000); // violation
        let snap = rec.snapshot();
        assert_eq!(snap.totals().slo_violations, 2);
        assert_eq!(snap.slo.top(1)[0].0, 5);
        assert_eq!(snap.slo.top(1)[0].1.count, 2);
    }

    #[test]
    fn skew_reads_the_concentration() {
        let rec = SketchRecorder::new(SketchConfig {
            capacity: 8,
            top_k: 2,
            ..SketchConfig::default()
        });
        // Two keys own ~90% of demand.
        for _ in 0..450 {
            rec.record_hit(1, 1, 1);
            rec.record_hit(2, 1, 1);
        }
        for key in 10..110u64 {
            rec.record_hit(key, 1, 1);
        }
        let snap = rec.snapshot();
        assert!(snap.skew() > 0.8, "skew {}", snap.skew());
        assert!(snap.skew() <= 1.0);
    }

    #[test]
    fn hot_json_has_the_contract_fields() {
        let rec = SketchRecorder::new(SketchConfig::default());
        rec.record_hit(42, 3, 300);
        rec.record_miss(42, 1);
        rec.record_ack(42);
        rec.record_delivery_lag(42, 2500);
        let snap = rec.snapshot();
        let json = snap.to_json();
        for field in [
            r#""top_k":10"#,
            r#""totals":{"requests":4"#,
            r#""distinct_active_estimate":"#,
            r#""top":{"requests":[{"key":42,"count":4,"err":0}]"#,
            r#""bytes":[{"key":42,"count":300"#,
            r#""misses":[{"key":42,"count":1"#,
            r#""lag_us":[{"key":42,"count":1"#,
            r#""skew_top_k":1"#,
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        let summary = snap.summary_json(5);
        assert!(
            summary.contains(r#""top_requests":[{"key":42"#),
            "{summary}"
        );
        assert!(
            summary.contains(r#""distinct_active_estimate":"#),
            "{summary}"
        );
    }
}
