//! A std-only TCP scrape endpoint: live `/metrics`, `/healthz`,
//! `/trace/recent`, `/policies`, `/timeseries`, `/alerts`, `/profile`
//! and `/hot` while a runtime is up.
//!
//! The growable bodies (`/trace/recent` spans, `/profile` lock sites)
//! accept a `?limit=N` query parameter and default to
//! [`DEFAULT_SCRAPE_LIMIT`] so a full flight recorder can never
//! produce an unbounded response.
//!
//! The server is deliberately minimal — a single accept thread, one
//! request per connection (`Connection: close`), and just enough
//! HTTP/1.1 to satisfy Prometheus scrapers and `curl`. Bodies are
//! rendered per request from the shared [`Registry`], caller-provided
//! closures, and the [`FlightRecorder`], so the endpoint is pure
//! read-side: it never touches the data path.
//!
//! Malformed input gets an answer, not a hang-up: the request-line
//! read is bounded (an oversized line is answered `400` without
//! buffering the rest), garbage and non-GET requests are answered
//! `400` with a JSON body, and every response carries `Content-Type`,
//! `Content-Length` and `Connection: close` so clients never have to
//! guess framing.
//!
//! ```
//! use std::sync::Arc;
//! use bad_telemetry::{FlightRecorder, Registry, ScrapeServer};
//!
//! let registry = Registry::new();
//! registry.counter("bad_up").inc();
//! let recorder = Arc::new(FlightRecorder::new(1, 16));
//! let server = ScrapeServer::bind(
//!     "127.0.0.1:0",
//!     registry.clone(),
//!     recorder,
//!     Arc::new(|| "{\"ok\":true}".to_owned()),
//! )
//! .unwrap();
//! let addr = server.local_addr();
//! // curl http://{addr}/metrics  |  /healthz  |  /trace/recent
//! server.shutdown();
//! # let _ = addr;
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;
use crate::trace::FlightRecorder;

/// Renders the `/healthz` JSON body; the runtime injects per-shard
/// occupancy here without `bad-telemetry` depending on the cache tier.
pub type HealthFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Renders the `/policies` JSON body (shadow-policy counterfactuals);
/// like [`HealthFn`] this keeps `bad-telemetry` free of a cache-tier
/// dependency.
pub type PoliciesFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Renders an optional JSON endpoint body (`/timeseries`, `/alerts`,
/// `/hot`).
pub type EndpointFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Renders a JSON endpoint body under an optional `?limit=N` cap
/// (`None` = no query parameter; the closure applies its own default).
pub type LimitFn = Arc<dyn Fn(Option<usize>) -> String + Send + Sync>;

/// Default `?limit=` for the endpoints whose bodies grow with runtime
/// state (`/trace/recent` spans, `/profile` lock sites): a full flight
/// recorder holds `stripes × capacity` spans, which is unbounded from
/// the scraper's point of view.
pub const DEFAULT_SCRAPE_LIMIT: usize = 512;

/// The closure set behind the server's routes. Only `health` is
/// mandatory; absent optional endpoints answer `200` with an
/// explanatory `{"error": …}` body (same contract as `/policies`
/// before this struct existed) so probes can distinguish "disabled"
/// from "no such route".
#[derive(Clone)]
pub struct ScrapeEndpoints {
    /// `/healthz`.
    pub health: HealthFn,
    /// `/policies` (shadow-policy counterfactuals), if enabled.
    pub policies: Option<PoliciesFn>,
    /// `/timeseries` (windowed registry history), if enabled.
    pub timeseries: Option<EndpointFn>,
    /// `/alerts` (burn-rate/drift alert states), if enabled.
    pub alerts: Option<EndpointFn>,
    /// `/profile` (hot-path profiler: folded-stack stage tree + lock
    /// contention), if enabled. Receives the parsed `?limit=` cap.
    pub profile: Option<LimitFn>,
    /// `/hot` (sketch-based heavy-hitter attribution), if enabled.
    pub hot: Option<EndpointFn>,
}

impl ScrapeEndpoints {
    /// Endpoints with only the mandatory health closure set.
    pub fn health_only(health: HealthFn) -> Self {
        Self {
            health,
            policies: None,
            timeseries: None,
            alerts: None,
            profile: None,
            hot: None,
        }
    }
}

/// The scrape endpoint handle. Dropping it stops the accept thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ScrapeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread. The server lives until [`shutdown`](Self::shutdown)
    /// or drop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Registry,
        recorder: Arc<FlightRecorder>,
        health: HealthFn,
    ) -> io::Result<Self> {
        Self::bind_with_endpoints(
            addr,
            registry,
            recorder,
            ScrapeEndpoints::health_only(health),
        )
    }

    /// Like [`bind`](Self::bind), but also serves a `/policies` JSON view
    /// rendered by `policies` (live vs. ghost hit ratios, regret, best
    /// policy — see `bad_cache::shadow`).
    pub fn bind_with_policies(
        addr: impl ToSocketAddrs,
        registry: Registry,
        recorder: Arc<FlightRecorder>,
        health: HealthFn,
        policies: PoliciesFn,
    ) -> io::Result<Self> {
        Self::bind_with_endpoints(
            addr,
            registry,
            recorder,
            ScrapeEndpoints {
                policies: Some(policies),
                ..ScrapeEndpoints::health_only(health)
            },
        )
    }

    /// The full route set: `/metrics` and `/trace/recent` always, plus
    /// whichever of [`ScrapeEndpoints`] is wired.
    pub fn bind_with_endpoints(
        addr: impl ToSocketAddrs,
        registry: Registry,
        recorder: Arc<FlightRecorder>,
        endpoints: ScrapeEndpoints,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bad-scrape".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve inline: scrapes are rare and tiny, and one
                    // thread keeps the endpoint's footprint fixed.
                    let _ = serve_one(stream, &registry, &recorder, &endpoints);
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop is blocked in `incoming()`; poke it awake
        // with a throwaway connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serves an optional endpoint: the closure's body when wired, a `200`
/// with an explanatory error body when not.
fn optional(endpoint: Option<&EndpointFn>, disabled: &str) -> String {
    match endpoint {
        Some(render) => render(),
        None => format!(r#"{{"error":{}}}"#, crate::json::quote(disabled)),
    }
}

/// Reads one request, routes it, writes one response.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    recorder: &Arc<FlightRecorder>,
    endpoints: &ScrapeEndpoints,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let (status, content_type, body) = match read_request_line(&mut stream)? {
        RequestLine::Get(path) => {
            // `/route?limit=N` — the only query parameter the server
            // understands; anything else in the query is ignored.
            let (route, query) = match path.split_once('?') {
                Some((route, query)) => (route, Some(query)),
                None => (path.as_str(), None),
            };
            let limit = query.and_then(parse_limit);
            match route {
                "/metrics" => ("200 OK", "text/plain; version=0.0.4", registry.render()),
                "/healthz" => ("200 OK", "application/json", (endpoints.health)()),
                "/trace/recent" => (
                    "200 OK",
                    "application/json",
                    recorder.to_json_limit(limit.unwrap_or(DEFAULT_SCRAPE_LIMIT)),
                ),
                "/policies" => (
                    "200 OK",
                    "application/json",
                    optional(endpoints.policies.as_ref(), "shadow evaluation disabled"),
                ),
                "/timeseries" => (
                    "200 OK",
                    "application/json",
                    optional(endpoints.timeseries.as_ref(), "health engine disabled"),
                ),
                "/alerts" => (
                    "200 OK",
                    "application/json",
                    optional(endpoints.alerts.as_ref(), "health engine disabled"),
                ),
                "/profile" => (
                    "200 OK",
                    "application/json",
                    match endpoints.profile.as_ref() {
                        Some(render) => render(limit),
                        None => r#"{"error":"profiler disabled"}"#.to_owned(),
                    },
                ),
                "/hot" => (
                    "200 OK",
                    "application/json",
                    optional(endpoints.hot.as_ref(), "sketches disabled"),
                ),
                other => (
                    "404 Not Found",
                    "application/json",
                    format!(
                        r#"{{"error":"not found","path":{}}}"#,
                        crate::json::quote(other)
                    ),
                ),
            }
        }
        RequestLine::TooLong => (
            "400 Bad Request",
            "application/json",
            r#"{"error":"request line too long"}"#.to_owned(),
        ),
        RequestLine::Malformed => (
            "400 Bad Request",
            "application/json",
            r#"{"error":"bad request"}"#.to_owned(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()?;
    // Drain whatever the client is still sending before closing. A
    // close with unread bytes in the receive queue turns into a TCP
    // RST, which can destroy the response before the client reads it.
    // Bounded by the read timeout set above plus a byte cap, so a
    // hostile client cannot hold the connection open.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut scratch = [0u8; 1024];
    let mut drained = 0usize;
    while drained < 64 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
    Ok(())
}

/// Extracts `limit=N` from a query string (`a=1&limit=5` → `Some(5)`);
/// unparseable or absent values fall back to the route's default.
fn parse_limit(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("limit="))
        .and_then(|value| value.parse().ok())
}

/// Outcome of parsing the request line. Every variant gets a response;
/// connections are only dropped on hard I/O errors.
enum RequestLine {
    /// A well-formed `GET <path> …` line.
    Get(String),
    /// The line overflowed the fixed buffer before a newline arrived.
    TooLong,
    /// Anything else: garbage bytes, empty input, a non-GET method.
    Malformed,
}

/// Maximum request-line bytes buffered before answering `400`. Scrape
/// requests are a few hundred bytes; anything larger is hostile or
/// broken.
const MAX_REQUEST_LINE: usize = 2048;

/// Parses the request target out of `GET <path> HTTP/1.1`, reading at
/// most [`MAX_REQUEST_LINE`] bytes.
fn read_request_line(stream: &mut TcpStream) -> io::Result<RequestLine> {
    let mut buf = [0u8; MAX_REQUEST_LINE];
    let mut len = 0;
    loop {
        if len == buf.len() {
            return Ok(RequestLine::TooLong);
        }
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].contains(&b'\n') {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf[..len]);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(RequestLine::Get(path.to_owned())),
        _ => Ok(RequestLine::Malformed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        raw(addr, &format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n"))
    }

    /// Sends raw bytes and splits the response into head and body.
    fn raw(addr: SocketAddr, request: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    /// Asserts the framing headers every response must carry, and that
    /// `Content-Length` matches the actual body.
    fn assert_framing(head: &str, body: &str, content_type: &str) {
        assert!(
            head.contains(&format!("Content-Type: {content_type}")),
            "missing content type in {head}"
        );
        assert!(
            head.contains(&format!("Content-Length: {}", body.len())),
            "content length mismatch: head={head} body_len={}",
            body.len()
        );
        assert!(head.contains("Connection: close"));
    }

    fn test_server() -> (ScrapeServer, Registry, Arc<FlightRecorder>) {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(2, 32));
        let server = ScrapeServer::bind(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            Arc::new(|| r#"{"shards":2}"#.to_owned()),
        )
        .unwrap();
        (server, registry, recorder)
    }

    #[test]
    fn serves_metrics_health_and_recent_traces() {
        let (server, registry, recorder) = test_server();
        registry.counter("bad_scrape_test_total").add(7);
        recorder.record(&crate::trace::Span {
            trace: crate::trace::TraceId::for_object(1),
            span: crate::trace::SpanId::derive(
                crate::trace::TraceId::for_object(1),
                crate::trace::SpanKind::CacheInsert,
                2,
            ),
            parent: None,
            kind: crate::trace::SpanKind::CacheInsert,
            t_us: 5,
            cache: 2,
            object: 1,
            subscriber: 0,
            bytes: 64,
            lag_us: 1,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "text/plain; version=0.0.4");
        assert!(body.contains("bad_scrape_test_total 7"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"shards":2}"#);

        let (head, body) = get(addr, "/trace/recent");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert!(body.starts_with(r#"[{"kind":"cache_insert","t_us":5"#));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_a_json_404_body() {
        let (server, _registry, _recorder) = test_server();
        let (head, body) = get(server.local_addr(), "/no/such/endpoint");
        assert!(head.starts_with("HTTP/1.1 404"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"error":"not found","path":"/no/such/endpoint"}"#);
        server.shutdown();
    }

    #[test]
    fn policies_endpoint_serves_injected_body_and_defaults_to_disabled() {
        let (server, _registry, _recorder) = test_server();
        // The 4-arg `bind` has no policies closure: the route still
        // answers 200 with an explanatory body.
        let (head, body) = get(server.local_addr(), "/policies");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, r#"{"error":"shadow evaluation disabled"}"#);
        server.shutdown();

        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_policies(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            Arc::new(|| "{}".to_owned()),
            Arc::new(|| r#"{"live_policy":"LRU"}"#.to_owned()),
        )
        .unwrap();
        let (head, body) = get(server.local_addr(), "/policies");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"live_policy":"LRU"}"#);
        server.shutdown();
    }

    #[test]
    fn timeseries_and_alerts_routes_serve_injected_bodies() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_endpoints(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            ScrapeEndpoints {
                health: Arc::new(|| "{}".to_owned()),
                policies: None,
                timeseries: Some(Arc::new(|| r#"{"windows":3}"#.to_owned())),
                alerts: Some(Arc::new(|| r#"{"firing":1}"#.to_owned())),
                profile: None,
                hot: None,
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let (head, body) = get(addr, "/timeseries");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"windows":3}"#);
        let (head, body) = get(addr, "/alerts");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"firing":1}"#);
        server.shutdown();

        // Without closures the routes answer with an explanation.
        let (server, _registry, _recorder) = test_server();
        let (_, body) = get(server.local_addr(), "/timeseries");
        assert_eq!(body, r#"{"error":"health engine disabled"}"#);
        let (_, body) = get(server.local_addr(), "/alerts");
        assert_eq!(body, r#"{"error":"health engine disabled"}"#);
        server.shutdown();
    }

    #[test]
    fn profile_route_serves_injected_body_and_defaults_to_disabled() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_endpoints(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            ScrapeEndpoints {
                profile: Some(Arc::new(|limit| {
                    format!(
                        r#"{{"enabled":true,"limit":{},"folded":["insert;victim_scan 12"]}}"#,
                        limit.map_or(-1i64, |l| l as i64)
                    )
                })),
                ..ScrapeEndpoints::health_only(Arc::new(|| "{}".to_owned()))
            },
        )
        .unwrap();
        let (head, body) = get(server.local_addr(), "/profile");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert!(body.contains("insert;victim_scan 12"));
        // No query → the closure sees None.
        assert!(body.contains(r#""limit":-1"#), "{body}");
        // ?limit=3 → the closure sees the parsed cap.
        let (_, body) = get(server.local_addr(), "/profile?limit=3");
        assert!(body.contains(r#""limit":3"#), "{body}");
        server.shutdown();

        // Without a closure the route explains itself.
        let (server, _registry, _recorder) = test_server();
        let (_, body) = get(server.local_addr(), "/profile");
        assert_eq!(body, r#"{"error":"profiler disabled"}"#);
        server.shutdown();
    }

    #[test]
    fn hot_route_serves_injected_body_and_defaults_to_disabled() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_endpoints(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            ScrapeEndpoints {
                hot: Some(Arc::new(|| {
                    r#"{"top":{"requests":[{"key":7,"count":42,"err":0}]}}"#.to_owned()
                })),
                ..ScrapeEndpoints::health_only(Arc::new(|| "{}".to_owned()))
            },
        )
        .unwrap();
        let (head, body) = get(server.local_addr(), "/hot");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert!(body.contains(r#""key":7,"count":42"#));
        server.shutdown();

        // Without a closure the route explains itself.
        let (server, _registry, _recorder) = test_server();
        let (_, body) = get(server.local_addr(), "/hot");
        assert_eq!(body, r#"{"error":"sketches disabled"}"#);
        server.shutdown();
    }

    #[test]
    fn trace_recent_is_capped_by_the_limit_parameter() {
        let (server, _registry, recorder) = test_server();
        for object in 0..8u64 {
            recorder.record(&crate::trace::Span {
                trace: crate::trace::TraceId::for_object(object),
                span: crate::trace::SpanId::derive(
                    crate::trace::TraceId::for_object(object),
                    crate::trace::SpanKind::CacheInsert,
                    1,
                ),
                parent: None,
                kind: crate::trace::SpanKind::CacheInsert,
                t_us: object,
                cache: 1,
                object,
                subscriber: 0,
                bytes: 64,
                lag_us: 1,
                policy: "",
                drop_kind: "",
                score: 0.0,
            });
        }
        let addr = server.local_addr();
        // Unlimited (default cap ≫ 8): all spans come back.
        let (_, body) = get(addr, "/trace/recent");
        assert_eq!(body.matches(r#""kind":"cache_insert""#).count(), 8);
        // ?limit=3: the three most recent only.
        let (head, body) = get(addr, "/trace/recent?limit=3");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body.matches(r#""kind":"cache_insert""#).count(), 3);
        assert!(
            body.contains(r#""t_us":7"#),
            "most recent span kept: {body}"
        );
        assert!(!body.contains(r#""t_us":0"#), "oldest span dropped: {body}");
        // Garbage limits fall back to the default.
        let (_, body) = get(addr, "/trace/recent?limit=banana");
        assert_eq!(body.matches(r#""kind":"cache_insert""#).count(), 8);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_a_400_not_a_hangup() {
        let (server, _registry, _recorder) = test_server();
        let addr = server.local_addr();

        // Garbage bytes: still a response, still framed.
        let (head, body) = raw(addr, "\u{1}\u{2}garbage\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 400"));
        assert_framing(&head, &body, "application/json");
        assert_eq!(body, r#"{"error":"bad request"}"#);

        // Non-GET method.
        let (head, body) = raw(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(head.starts_with("HTTP/1.1 400"));
        assert_eq!(body, r#"{"error":"bad request"}"#);

        // Empty request (client closes immediately).
        let (head, _) = raw(addr, "");
        assert!(head.starts_with("HTTP/1.1 400"));

        server.shutdown();
    }

    #[test]
    fn oversized_request_lines_are_bounded_and_answered() {
        let (server, _registry, _recorder) = test_server();
        // 4 KiB of path with no newline: the server must answer 400
        // after MAX_REQUEST_LINE bytes instead of buffering forever or
        // dropping the connection.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(4096));
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // The server may answer (and close) before the client finishes
        // writing; ignore the resulting EPIPE and read what came back.
        let _ = stream.write_all(long.as_bytes());
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 400"));
        assert_framing(head, body, "application/json");
        assert_eq!(body, r#"{"error":"request line too long"}"#);
        server.shutdown();
    }

    #[test]
    fn policies_survives_a_byte_by_byte_slow_client() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_policies(
            "127.0.0.1:0",
            registry,
            recorder,
            Arc::new(|| "{}".to_owned()),
            Arc::new(|| r#"{"best_policy":"LSC"}"#.to_owned()),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Dribble the request line one byte at a time; `read_request_line`
        // must keep reading until it sees the newline.
        for byte in b"GET /policies HTTP/1.1\r\nHost: test\r\n\r\n" {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, r#"{"best_policy":"LSC"}"#);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let (server, _registry, _recorder) = test_server();
        let addr = server.local_addr();
        server.shutdown();
        // No listener remains, so a fresh connection is refused.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        assert!(refused.is_err());
    }
}
