//! A std-only TCP scrape endpoint: live `/metrics`, `/healthz` and
//! `/trace/recent` while a runtime is up.
//!
//! The server is deliberately minimal — a single accept thread, one
//! request per connection (`Connection: close`), and just enough
//! HTTP/1.1 to satisfy Prometheus scrapers and `curl`. Bodies are
//! rendered per request from the shared [`Registry`], a caller-provided
//! health closure, and the [`FlightRecorder`], so the endpoint is pure
//! read-side: it never touches the data path.
//!
//! ```
//! use std::sync::Arc;
//! use bad_telemetry::{FlightRecorder, Registry, ScrapeServer};
//!
//! let registry = Registry::new();
//! registry.counter("bad_up").inc();
//! let recorder = Arc::new(FlightRecorder::new(1, 16));
//! let server = ScrapeServer::bind(
//!     "127.0.0.1:0",
//!     registry.clone(),
//!     recorder,
//!     Arc::new(|| "{\"ok\":true}".to_owned()),
//! )
//! .unwrap();
//! let addr = server.local_addr();
//! // curl http://{addr}/metrics  |  /healthz  |  /trace/recent
//! server.shutdown();
//! # let _ = addr;
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;
use crate::trace::FlightRecorder;

/// Renders the `/healthz` JSON body; the runtime injects per-shard
/// occupancy here without `bad-telemetry` depending on the cache tier.
pub type HealthFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Renders the `/policies` JSON body (shadow-policy counterfactuals);
/// like [`HealthFn`] this keeps `bad-telemetry` free of a cache-tier
/// dependency.
pub type PoliciesFn = Arc<dyn Fn() -> String + Send + Sync>;

/// The scrape endpoint handle. Dropping it stops the accept thread.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Renders the `/policies` body when no [`PoliciesFn`] was supplied.
fn no_policies() -> String {
    r#"{"error":"shadow evaluation disabled"}"#.to_owned()
}

impl std::fmt::Debug for ScrapeServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScrapeServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ScrapeServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept thread. The server lives until [`shutdown`](Self::shutdown)
    /// or drop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: Registry,
        recorder: Arc<FlightRecorder>,
        health: HealthFn,
    ) -> io::Result<Self> {
        Self::bind_with_policies(addr, registry, recorder, health, Arc::new(no_policies))
    }

    /// Like [`bind`](Self::bind), but also serves a `/policies` JSON view
    /// rendered by `policies` (live vs. ghost hit ratios, regret, best
    /// policy — see `bad_cache::shadow`).
    pub fn bind_with_policies(
        addr: impl ToSocketAddrs,
        registry: Registry,
        recorder: Arc<FlightRecorder>,
        health: HealthFn,
        policies: PoliciesFn,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("bad-scrape".to_owned())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Serve inline: scrapes are rare and tiny, and one
                    // thread keeps the endpoint's footprint fixed.
                    let _ = serve_one(stream, &registry, &recorder, &health, &policies);
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // The accept loop is blocked in `incoming()`; poke it awake
        // with a throwaway connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Reads one request, routes it, writes one response.
fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    recorder: &Arc<FlightRecorder>,
    health: &HealthFn,
    policies: &PoliciesFn,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") => ("200 OK", "text/plain; version=0.0.4", registry.render()),
        Some("/healthz") => ("200 OK", "application/json", health()),
        Some("/trace/recent") => ("200 OK", "application/json", recorder.to_json()),
        Some("/policies") => ("200 OK", "application/json", policies()),
        Some(other) => (
            "404 Not Found",
            "application/json",
            format!(
                r#"{{"error":"not found","path":{}}}"#,
                crate::json::quote(other)
            ),
        ),
        None => (
            "400 Bad Request",
            "application/json",
            r#"{"error":"bad request"}"#.to_owned(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Parses the request target out of `GET <path> HTTP/1.1`. Returns
/// `None` for anything that is not a well-formed GET request line.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    // Read until the end of the request line; scrape requests are a
    // few hundred bytes, so a small fixed buffer is plenty.
    let mut buf = [0u8; 2048];
    let mut len = 0;
    loop {
        if len == buf.len() {
            return Ok(None);
        }
        let n = match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        };
        len += n;
        if buf[..len].contains(&b'\n') {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf[..len]);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_owned())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    fn test_server() -> (ScrapeServer, Registry, Arc<FlightRecorder>) {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(2, 32));
        let server = ScrapeServer::bind(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            Arc::new(|| r#"{"shards":2}"#.to_owned()),
        )
        .unwrap();
        (server, registry, recorder)
    }

    #[test]
    fn serves_metrics_health_and_recent_traces() {
        let (server, registry, recorder) = test_server();
        registry.counter("bad_scrape_test_total").add(7);
        recorder.record(&crate::trace::Span {
            trace: crate::trace::TraceId::for_object(1),
            span: crate::trace::SpanId::derive(
                crate::trace::TraceId::for_object(1),
                crate::trace::SpanKind::CacheInsert,
                2,
            ),
            parent: None,
            kind: crate::trace::SpanKind::CacheInsert,
            t_us: 5,
            cache: 2,
            object: 1,
            subscriber: 0,
            bytes: 64,
            lag_us: 1,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain"));
        assert!(body.contains("bad_scrape_test_total 7"));

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, r#"{"shards":2}"#);

        let (head, body) = get(addr, "/trace/recent");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.starts_with(r#"[{"kind":"cache_insert","t_us":5"#));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_a_json_404_body() {
        let (server, _registry, _recorder) = test_server();
        let (head, body) = get(server.local_addr(), "/no/such/endpoint");
        assert!(head.starts_with("HTTP/1.1 404"));
        assert!(head.contains("application/json"));
        assert_eq!(body, r#"{"error":"not found","path":"/no/such/endpoint"}"#);
        server.shutdown();
    }

    #[test]
    fn policies_endpoint_serves_injected_body_and_defaults_to_disabled() {
        let (server, _registry, _recorder) = test_server();
        // The 4-arg `bind` has no policies closure: the route still
        // answers 200 with an explanatory body.
        let (head, body) = get(server.local_addr(), "/policies");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, r#"{"error":"shadow evaluation disabled"}"#);
        server.shutdown();

        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_policies(
            "127.0.0.1:0",
            registry.clone(),
            Arc::clone(&recorder),
            Arc::new(|| "{}".to_owned()),
            Arc::new(|| r#"{"live_policy":"LRU"}"#.to_owned()),
        )
        .unwrap();
        let (head, body) = get(server.local_addr(), "/policies");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("application/json"));
        assert_eq!(body, r#"{"live_policy":"LRU"}"#);
        server.shutdown();
    }

    #[test]
    fn policies_survives_a_byte_by_byte_slow_client() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let server = ScrapeServer::bind_with_policies(
            "127.0.0.1:0",
            registry,
            recorder,
            Arc::new(|| "{}".to_owned()),
            Arc::new(|| r#"{"best_policy":"LSC"}"#.to_owned()),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Dribble the request line one byte at a time; `read_request_path`
        // must keep reading until it sees the newline.
        for byte in b"GET /policies HTTP/1.1\r\nHost: test\r\n\r\n" {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, r#"{"best_policy":"LSC"}"#);
        server.shutdown();
    }

    #[test]
    fn shutdown_joins_the_accept_thread() {
        let (server, _registry, _recorder) = test_server();
        let addr = server.local_addr();
        server.shutdown();
        // No listener remains, so a fresh connection is refused.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
        assert!(refused.is_err());
    }
}
