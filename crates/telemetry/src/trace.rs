//! End-to-end notification lifecycle tracing.
//!
//! A notification's journey — channel result produced on the cluster,
//! inserted into a broker cache, retrieved by each of its `n_i`
//! frontend subscribers (or missed and re-fetched from the backend),
//! and finally dropped (consumed / evicted / expired) — is recorded as
//! a set of [`Span`]s sharing one [`TraceId`]. Ids are splitmix64
//! mixes of the *object id* (never of time), so traces are
//! deterministic under the simulator's virtual clock and every layer
//! can derive both its own span id and its causal parent's without
//! threading ids through call signatures:
//!
//! ```text
//! ResultProduced ─┬─ CacheInsert ─┬─ RetrieveHit   (one per subscriber)
//!                 │               ├─ Drop / Expire (policy decision, φ/s score)
//!                 │               └─ FullyConsumed
//!                 └─ RetrieveMiss ── BackendFetch  (one per missing subscriber)
//! ```
//!
//! The [`Tracer`] is the single emission point: it bumps per-kind span
//! counters, feeds the stage-latency / staleness histograms and their
//! SLO-violation counters on *every* span, and forwards the span record
//! itself to the [`FlightRecorder`] and the event sink only for sampled
//! traces (`trace_sample_every_n`), keeping the hot path allocation
//! free. [`Tracer::disabled`] is the default wiring everywhere and
//! costs one branch per call site.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{Event, SharedSink};
use crate::histogram::Histogram;
use crate::json::ObjectWriter;
use crate::registry::{Counter, Registry};

/// A finalizer-quality 64-bit mix (splitmix64), the same mix the cache
/// tier uses for shard routing — id derivation must be deterministic
/// across platforms and runs.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Identifies one notification's lifecycle across all layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The trace of the notification carrying result object `object`.
    /// Derived from the object id alone — every layer that knows the
    /// object recovers the same trace, with no id plumbing.
    #[inline]
    pub fn for_object(object: u64) -> Self {
        Self(mix64(object ^ 0xBAD0_0B1E_C71D))
    }

    /// Raw id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// Derives the id of the `(kind, actor)` span of `trace`. `actor`
    /// disambiguates per-subscriber spans (retrievals, backend fetches)
    /// from each other; cache-side spans use the cache id. Because the
    /// derivation is pure, a child span recomputes its parent's id from
    /// the same inputs instead of carrying it through the stack.
    #[inline]
    pub fn derive(trace: TraceId, kind: SpanKind, actor: u64) -> Self {
        Self(mix64(trace.0 ^ mix64(((kind as u64) << 56) ^ actor)))
    }

    /// Raw id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// The lifecycle stage a [`Span`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A channel execution appended the result object (cluster side).
    ResultProduced = 0,
    /// The broker admitted the object into a result cache.
    CacheInsert = 1,
    /// A subscriber retrieval was served from cache.
    RetrieveHit = 2,
    /// A subscriber retrieval missed the cache.
    RetrieveMiss = 3,
    /// A miss was re-fetched from the durable backend store.
    BackendFetch = 4,
    /// The eviction policy dropped the object (`score` is φ/s).
    Drop = 5,
    /// The TTL policy expired the object.
    Expire = 6,
    /// Every pending subscriber consumed the object, releasing it.
    FullyConsumed = 7,
    /// A miss was served from an in-flight coalesced fetch instead of
    /// issuing its own cluster round trip.
    CoalescedFetch = 8,
}

impl SpanKind {
    /// All kinds, in discriminant order (indexes the per-kind counters).
    pub const ALL: [SpanKind; 9] = [
        SpanKind::ResultProduced,
        SpanKind::CacheInsert,
        SpanKind::RetrieveHit,
        SpanKind::RetrieveMiss,
        SpanKind::BackendFetch,
        SpanKind::Drop,
        SpanKind::Expire,
        SpanKind::FullyConsumed,
        SpanKind::CoalescedFetch,
    ];

    /// Stable lowercase label (metric label values, JSON `kind`).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::ResultProduced => "result_produced",
            SpanKind::CacheInsert => "cache_insert",
            SpanKind::RetrieveHit => "retrieve_hit",
            SpanKind::RetrieveMiss => "retrieve_miss",
            SpanKind::BackendFetch => "backend_fetch",
            SpanKind::Drop => "drop",
            SpanKind::Expire => "expire",
            SpanKind::FullyConsumed => "fully_consumed",
            SpanKind::CoalescedFetch => "coalesced_fetch",
        }
    }
}

/// One lifecycle span. `Copy` like [`Event`]: raw ids, a virtual-time
/// timestamp and `&'static str` labels, so emission never allocates.
///
/// `lag_us` is the stage latency: produce→insert lag for
/// [`SpanKind::CacheInsert`], end-to-end produce→deliver lag for
/// retrievals, the modeled backend fetch latency for
/// [`SpanKind::BackendFetch`], and the time-in-cache (staleness) for
/// the drop kinds. `policy`/`drop_kind`/`score` are only meaningful on
/// drop spans (empty / 0 elsewhere); `subscriber` is 0 on spans not
/// attributable to one subscriber.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Span {
    /// The notification lifecycle this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The causal parent, if any (roots have none).
    pub parent: Option<SpanId>,
    /// Lifecycle stage.
    pub kind: SpanKind,
    /// Virtual-time timestamp in microseconds.
    pub t_us: u64,
    /// The backend subscription cache involved.
    pub cache: u64,
    /// The result object.
    pub object: u64,
    /// The frontend subscriber (0 when not subscriber-specific).
    pub subscriber: u64,
    /// Object bytes.
    pub bytes: u64,
    /// Stage latency / staleness in microseconds (see type docs).
    pub lag_us: u64,
    /// Evicting policy name (drop spans only, else empty).
    pub policy: &'static str,
    /// Drop cause label (drop spans only, else empty).
    pub drop_kind: &'static str,
    /// The victim cache's φ/s utility-per-byte score (evictions only).
    pub score: f64,
}

impl Span {
    /// Appends this span as one JSON object (no trailing newline).
    pub fn write_json(&self, out: &mut String) {
        let mut obj = ObjectWriter::new(out);
        obj.field_str("kind", self.kind.label());
        obj.field_u64("t_us", self.t_us);
        self.write_fields(&mut obj);
    }

    /// Appends the span's payload fields (everything after `kind` and
    /// `t_us`) to an already-open JSON object — shared between the
    /// standalone rendering above and [`Event::Span`]'s JSONL form.
    pub fn write_fields(&self, obj: &mut ObjectWriter<'_>) {
        obj.field_u64("trace", self.trace.as_u64());
        obj.field_u64("span", self.span.as_u64());
        if let Some(parent) = self.parent {
            obj.field_u64("parent", parent.as_u64());
        }
        obj.field_u64("cache", self.cache);
        obj.field_u64("object", self.object);
        if self.subscriber != 0 {
            obj.field_u64("subscriber", self.subscriber);
        }
        obj.field_u64("bytes", self.bytes);
        obj.field_u64("lag_us", self.lag_us);
        if !self.drop_kind.is_empty() {
            obj.field_str("drop_kind", self.drop_kind);
            obj.field_str("policy", self.policy);
            obj.field_f64("score", self.score);
        }
    }

    /// Renders this span as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        self.write_json(&mut out);
        out
    }
}

/// Per-stage latency / staleness SLO thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloConfig {
    /// Produce→deliver deadline for retrievals (hit or miss), in
    /// microseconds of virtual time.
    pub delivery_latency_us: u64,
    /// Maximum time-in-cache before full consumption, in microseconds.
    pub staleness_us: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            delivery_latency_us: 30_000_000,
            staleness_us: 600_000_000,
        }
    }
}

/// Tracer tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Trace sampling: 0 emits no span records (metrics and SLO
    /// accounting still run), 1 records every trace, `n` records the
    /// traces whose id is divisible by `n` — whole lifecycles are
    /// sampled atomically, never individual spans.
    pub trace_sample_every_n: u64,
    /// SLO thresholds.
    pub slo: SloConfig,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            trace_sample_every_n: 1,
            slo: SloConfig::default(),
        }
    }
}

/// How many anomaly dumps a recorder writes before going quiet (the
/// recorder keeps counting anomalies either way).
const MAX_ANOMALY_DUMPS: u64 = 8;

/// A lock-striped ring of recent spans — the post-mortem buffer behind
/// the scrape endpoint's `/trace/recent` and the JSONL anomaly dumps.
///
/// Writers `try_lock` their stripe and drop the span on contention
/// rather than block the data path; `contended_drops` counts how often
/// that happened. Rings are pre-sized at construction, so steady-state
/// recording never allocates.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Stripe>,
    capacity: usize,
    contended_drops: AtomicU64,
    anomalies: AtomicU64,
    dumps_written: AtomicU64,
    /// Mirrors `dump_path.is_some()` so the hot anomaly path can skip
    /// the mutex entirely when nothing will ever be written.
    dumps_enabled: AtomicBool,
    dump_path: Mutex<Option<PathBuf>>,
    anomaly_context: AnomalyContext,
}

/// An optional dump-time context closure (see
/// [`FlightRecorder::set_anomaly_context`]); newtyped for a manual
/// `Debug` since closures have none.
#[derive(Default)]
struct AnomalyContext(Mutex<Option<Arc<dyn Fn() -> String + Send + Sync>>>);

impl std::fmt::Debug for AnomalyContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let installed = self.0.lock().map(|guard| guard.is_some()).unwrap_or(false);
        f.debug_tuple("AnomalyContext").field(&installed).finish()
    }
}

/// One flight-recorder ring: writers claim the next slot by bumping
/// `head` (one relaxed add), then overwrite that slot in place. Claims
/// are FIFO, so the ring always holds the most recent `capacity` spans
/// and overwrites oldest-first; locking is per *slot*, never per ring,
/// so two writers only collide when the ring has fully wrapped between
/// them.
#[derive(Debug)]
struct Stripe {
    head: AtomicU64,
    slots: Vec<Mutex<Option<Span>>>,
}

impl FlightRecorder {
    /// Creates `stripes.max(1)` rings of `capacity.max(1)` spans each
    /// (both rounded up to powers of two so `record` routes and wraps
    /// with masks instead of divisions). Wire one stripe per cache
    /// shard so shard workers rarely contend.
    pub fn new(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let capacity = capacity.max(1).next_power_of_two();
        Self {
            stripes: (0..stripes)
                .map(|_| Stripe {
                    head: AtomicU64::new(0),
                    slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                })
                .collect(),
            capacity,
            contended_drops: AtomicU64::new(0),
            anomalies: AtomicU64::new(0),
            dumps_written: AtomicU64::new(0),
            dumps_enabled: AtomicBool::new(false),
            dump_path: Mutex::new(None),
            anomaly_context: AnomalyContext::default(),
        }
    }

    /// Routes anomaly dumps to a JSONL file at `path` (append mode; at
    /// most [`MAX_ANOMALY_DUMPS`] dumps per recorder). Without a path,
    /// anomalies are counted but nothing is written.
    pub fn set_dump_path(&self, path: impl Into<PathBuf>) {
        *self.dump_path.lock().expect("dump path poisoned") = Some(path.into());
        self.dumps_enabled.store(true, Ordering::Release);
    }

    /// Records one span into its trace's stripe, overwriting the oldest
    /// slot on overflow. Drops the span instead of blocking in the
    /// (ring-has-wrapped) case where another writer still holds the
    /// claimed slot.
    #[inline]
    pub fn record(&self, span: &Span) {
        // Trace ids are already splitmix64 outputs, so their low bits
        // route directly; stripe count and capacity are powers of two.
        let stripe = &self.stripes[span.trace.as_u64() as usize & (self.stripes.len() - 1)];
        let slot = stripe.head.fetch_add(1, Ordering::Relaxed) as usize & (self.capacity - 1);
        match stripe.slots[slot].try_lock() {
            Ok(mut held) => *held = Some(*span),
            Err(_) => {
                self.contended_drops.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Spans dropped because their stripe was contended.
    pub fn contended_drops(&self) -> u64 {
        self.contended_drops.load(Ordering::Relaxed)
    }

    /// Total slot claims across all stripes. Every `record` call claims
    /// exactly one slot (one `fetch_add`) *before* the per-slot
    /// `try_lock`, so claims count attempted records — a span dropped
    /// on slot contention still shows up here. The striping invariant
    /// `claims == records attempted` (and therefore
    /// `visible spans + overwritten + contended_drops == claims`) is
    /// pinned by the generative overwrite-under-contention test.
    pub fn claims(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Anomalies noted so far.
    pub fn anomalies(&self) -> u64 {
        self.anomalies.load(Ordering::Relaxed)
    }

    /// Buffered spans across all stripes, merged oldest first.
    pub fn recent(&self) -> Vec<Span> {
        let mut out: Vec<Span> = Vec::new();
        for stripe in &self.stripes {
            for slot in &stripe.slots {
                if let Some(span) = *slot.lock().expect("flight slot poisoned") {
                    out.push(span);
                }
            }
        }
        out.sort_by_key(|s| (s.t_us, s.trace, s.span));
        out
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .flat_map(|s| &s.slots)
            .filter(|slot| slot.lock().expect("flight slot poisoned").is_some())
            .count()
    }

    /// Whether no span is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The buffered spans as a JSON array (the `/trace/recent` body).
    pub fn to_json(&self) -> String {
        self.to_json_limit(usize::MAX)
    }

    /// Like [`FlightRecorder::to_json`], but rendering only the most
    /// recent `limit` spans — the scrape endpoint caps `/trace/recent`
    /// with this so a full recorder cannot produce an unbounded
    /// response body.
    pub fn to_json_limit(&self, limit: usize) -> String {
        let spans = self.recent();
        let skip = spans.len().saturating_sub(limit);
        let spans = &spans[skip..];
        let mut out = String::with_capacity(64 + spans.len() * 160);
        out.push('[');
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            span.write_json(&mut out);
        }
        out.push(']');
        out
    }

    /// Installs a context closure whose output (a raw JSON value, e.g.
    /// a hot-key top-K summary) is stamped into every subsequent
    /// anomaly-dump header as `"context"` — a budget-overrun dump then
    /// names its suspects. Only invoked on the (already cold, already
    /// capped) dump path, never on the hot note path.
    pub fn set_anomaly_context(&self, context: Arc<dyn Fn() -> String + Send + Sync>) {
        *self
            .anomaly_context
            .0
            .lock()
            .expect("anomaly context poisoned") = Some(context);
    }

    /// Notes an anomaly (SLO violation, budget overrun, shard
    /// imbalance). When a dump path is configured and the dump cap is
    /// not yet exhausted, appends a JSONL block — one header line
    /// naming the anomaly, then every buffered span, one per line.
    pub fn note_anomaly(&self, reason: &str, t_us: u64) {
        self.anomalies.fetch_add(1, Ordering::Relaxed);
        // Anomalies can fire per object on the data path (e.g. every
        // stale consumption); without a dump path this must stay one
        // relaxed add plus one load — never a mutex.
        if !self.dumps_enabled.load(Ordering::Acquire) {
            return;
        }
        let path = self.dump_path.lock().expect("dump path poisoned").clone();
        let Some(path) = path else {
            return;
        };
        if self.dumps_written.fetch_add(1, Ordering::Relaxed) >= MAX_ANOMALY_DUMPS {
            return;
        }
        let spans = self.recent();
        let mut text = String::with_capacity(96 + spans.len() * 160);
        {
            let mut header = ObjectWriter::new(&mut text);
            header.field_str("kind", "anomaly");
            header.field_str("reason", reason);
            header.field_u64("t_us", t_us);
            header.field_u64("spans", spans.len() as u64);
            // When the continuous profiler is live on this thread, say
            // what the thread was doing when it noticed the anomaly —
            // the stage path is the cheapest possible backtrace.
            if let Some(stage) = crate::profile::last_stage_path() {
                header.field_str("last_stage", stage);
            }
            // And when a hot-key context source is wired, name the
            // current heavy hitters right in the header.
            let context = self
                .anomaly_context
                .0
                .lock()
                .expect("anomaly context poisoned")
                .clone();
            if let Some(context) = context {
                header.field_raw("context", &context());
            }
        }
        text.push('\n');
        for span in &spans {
            span.write_json(&mut text);
            text.push('\n');
        }
        if let Ok(mut file) = OpenOptions::new().create(true).append(true).open(&path) {
            let _ = file.write_all(text.as_bytes());
        }
    }
}

/// The lifecycle-span emission point, shared by cluster, cache, broker
/// and sim. See the [module docs](self) for the span taxonomy.
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    trace_sample_every_n: u64,
    slo: SloConfig,
    sink: SharedSink,
    recorder: Arc<FlightRecorder>,
    spans_total: [Counter; 9],
    insert_lag_us: Histogram,
    delivery_lag_us: Histogram,
    staleness_us: Histogram,
    delivery_slo_violations: Counter,
    staleness_slo_violations: Counter,
}

/// A shareable tracer handle — the shape every layer stores.
pub type SharedTracer = Arc<Tracer>;

impl Tracer {
    /// Registers the trace metric family on `registry` (per-kind
    /// labeled span counters, stage-lag histograms, SLO violation
    /// counters), records sampled spans into `recorder`, and forwards
    /// them to `sink` when it is enabled.
    pub fn new(
        registry: &Registry,
        sink: SharedSink,
        recorder: Arc<FlightRecorder>,
        config: TraceConfig,
    ) -> SharedTracer {
        let spans_total = SpanKind::ALL
            .map(|kind| registry.counter_with("bad_trace_spans_total", &[("kind", kind.label())]));
        Arc::new(Self {
            on: true,
            trace_sample_every_n: config.trace_sample_every_n,
            slo: config.slo,
            sink,
            recorder,
            spans_total,
            insert_lag_us: registry.histogram("bad_trace_insert_lag_us"),
            delivery_lag_us: registry.histogram("bad_trace_delivery_lag_us"),
            staleness_us: registry.histogram("bad_trace_staleness_us"),
            delivery_slo_violations: registry.counter("bad_delivery_latency_slo_violations_total"),
            staleness_slo_violations: registry.counter("bad_staleness_slo_violations_total"),
        })
    }

    /// The default wiring: every emission helper returns after one
    /// branch, nothing is registered anywhere.
    pub fn disabled() -> SharedTracer {
        Arc::new(Self {
            on: false,
            trace_sample_every_n: 0,
            slo: SloConfig::default(),
            sink: crate::event::null_sink(),
            recorder: Arc::new(FlightRecorder::new(1, 1)),
            spans_total: std::array::from_fn(|_| Counter::default()),
            insert_lag_us: Histogram::new(),
            delivery_lag_us: Histogram::new(),
            staleness_us: Histogram::new(),
            delivery_slo_violations: Counter::default(),
            staleness_slo_violations: Counter::default(),
        })
    }

    /// Whether emission helpers do anything — hot paths check this
    /// before looping over per-object spans.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// The flight recorder spans land in.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The SLO thresholds in force.
    pub fn slo(&self) -> SloConfig {
        self.slo
    }

    /// Whether `trace`'s span records are kept (metrics always are).
    #[inline]
    pub fn sampled(&self, trace: TraceId) -> bool {
        match self.trace_sample_every_n {
            0 => false,
            1 => true,
            n => trace.as_u64().is_multiple_of(n),
        }
    }

    /// Forwards one *sampled* span to the recorder and the sink. The
    /// per-kind counter and the stage metrics are bumped by the caller
    /// *before* the sampling decision, so unsampled traces never pay
    /// for span construction or id derivation.
    #[inline]
    fn emit(&self, span: Span) {
        self.recorder.record(&span);
        if self.sink.enabled() {
            self.sink.record(&Event::Span(span));
        }
    }

    /// A channel execution appended result `object` for `cache` — the
    /// root span of the notification's trace.
    pub fn on_result_produced(&self, t_us: u64, cache: u64, object: u64, bytes: u64) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::ResultProduced as usize].inc();
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::ResultProduced, cache),
            parent: None,
            kind: SpanKind::ResultProduced,
            t_us,
            cache,
            object,
            subscriber: 0,
            bytes,
            lag_us: 0,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// The broker admitted `object` into `cache`; `lag_us` is the
    /// produce→insert lag.
    pub fn on_cache_insert(&self, t_us: u64, cache: u64, object: u64, bytes: u64, lag_us: u64) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::CacheInsert as usize].inc();
        self.insert_lag_us.record(lag_us);
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::CacheInsert, cache),
            parent: Some(SpanId::derive(trace, SpanKind::ResultProduced, cache)),
            kind: SpanKind::CacheInsert,
            t_us,
            cache,
            object,
            subscriber: 0,
            bytes,
            lag_us,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// `subscriber`'s retrieval was served `object` from `cache`;
    /// `lag_us` is the end-to-end produce→deliver lag, checked against
    /// the delivery SLO.
    pub fn on_retrieve_hit(
        &self,
        t_us: u64,
        cache: u64,
        object: u64,
        subscriber: u64,
        bytes: u64,
        lag_us: u64,
    ) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::RetrieveHit as usize].inc();
        self.check_delivery_slo(t_us, lag_us);
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::RetrieveHit, subscriber),
            parent: Some(SpanId::derive(trace, SpanKind::CacheInsert, cache)),
            kind: SpanKind::RetrieveHit,
            t_us,
            cache,
            object,
            subscriber,
            bytes,
            lag_us,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// `subscriber`'s retrieval missed `object` in `cache` (never
    /// admitted, or already dropped); same delivery-SLO accounting as a
    /// hit — the subscriber does not care why delivery was late.
    pub fn on_retrieve_miss(
        &self,
        t_us: u64,
        cache: u64,
        object: u64,
        subscriber: u64,
        bytes: u64,
        lag_us: u64,
    ) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::RetrieveMiss as usize].inc();
        self.check_delivery_slo(t_us, lag_us);
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::RetrieveMiss, subscriber),
            parent: Some(SpanId::derive(trace, SpanKind::ResultProduced, cache)),
            kind: SpanKind::RetrieveMiss,
            t_us,
            cache,
            object,
            subscriber,
            bytes,
            lag_us,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// A miss was re-fetched from the durable backend store for
    /// `subscriber`; `lag_us` is the modeled cluster fetch latency.
    pub fn on_backend_fetch(
        &self,
        t_us: u64,
        cache: u64,
        object: u64,
        subscriber: u64,
        bytes: u64,
        lag_us: u64,
    ) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::BackendFetch as usize].inc();
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::BackendFetch, subscriber),
            parent: Some(SpanId::derive(trace, SpanKind::RetrieveMiss, subscriber)),
            kind: SpanKind::BackendFetch,
            t_us,
            cache,
            object,
            subscriber,
            bytes,
            lag_us,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// `subscriber`'s miss on `object` was served from a coalesced
    /// fetch already in flight (or still held in the sideline buffer)
    /// instead of issuing its own cluster round trip; `lag_us` is the
    /// cluster latency the subscriber would otherwise have paid.
    pub fn on_coalesced_fetch(
        &self,
        t_us: u64,
        cache: u64,
        object: u64,
        subscriber: u64,
        bytes: u64,
        lag_us: u64,
    ) {
        if !self.on {
            return;
        }
        self.spans_total[SpanKind::CoalescedFetch as usize].inc();
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, SpanKind::CoalescedFetch, subscriber),
            parent: Some(SpanId::derive(trace, SpanKind::RetrieveMiss, subscriber)),
            kind: SpanKind::CoalescedFetch,
            t_us,
            cache,
            object,
            subscriber,
            bytes,
            lag_us,
            policy: "",
            drop_kind: "",
            score: 0.0,
        });
    }

    /// `object` left `cache`. `kind` must be one of [`SpanKind::Drop`],
    /// [`SpanKind::Expire`] or [`SpanKind::FullyConsumed`];
    /// `staleness_us` is its time in cache, `policy`/`drop_kind`/`score`
    /// the audited policy decision (φ/s for evictions). Full
    /// consumption is checked against the staleness SLO.
    #[allow(clippy::too_many_arguments)] // single fan-in for all drop causes
    pub fn on_drop(
        &self,
        t_us: u64,
        cache: u64,
        object: u64,
        bytes: u64,
        kind: SpanKind,
        drop_kind: &'static str,
        policy: &'static str,
        score: f64,
        staleness_us: u64,
    ) {
        if !self.on {
            return;
        }
        debug_assert!(matches!(
            kind,
            SpanKind::Drop | SpanKind::Expire | SpanKind::FullyConsumed
        ));
        self.spans_total[kind as usize].inc();
        self.staleness_us.record(staleness_us);
        if kind == SpanKind::FullyConsumed && staleness_us > self.slo.staleness_us {
            self.staleness_slo_violations.inc();
            self.recorder.note_anomaly("staleness_slo", t_us);
        }
        let trace = TraceId::for_object(object);
        if !self.sampled(trace) {
            return;
        }
        self.emit(Span {
            trace,
            span: SpanId::derive(trace, kind, cache),
            parent: Some(SpanId::derive(trace, SpanKind::CacheInsert, cache)),
            kind,
            t_us,
            cache,
            object,
            subscriber: 0,
            bytes,
            lag_us: staleness_us,
            policy,
            drop_kind,
            score,
        });
    }

    fn check_delivery_slo(&self, t_us: u64, lag_us: u64) {
        self.delivery_lag_us.record(lag_us);
        if lag_us > self.slo.delivery_latency_us {
            self.delivery_slo_violations.inc();
            self.recorder.note_anomaly("delivery_latency_slo", t_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RingBufferSink;

    fn tracer_with(
        registry: &Registry,
        recorder: Arc<FlightRecorder>,
        config: TraceConfig,
    ) -> (SharedTracer, Arc<RingBufferSink>) {
        let ring = Arc::new(RingBufferSink::new(1024));
        let sink: SharedSink = ring.clone();
        (Tracer::new(registry, sink, recorder, config), ring)
    }

    #[test]
    fn ids_are_deterministic_and_time_free() {
        let a = TraceId::for_object(42);
        let b = TraceId::for_object(42);
        assert_eq!(a, b);
        assert_ne!(a, TraceId::for_object(43));
        let s1 = SpanId::derive(a, SpanKind::RetrieveHit, 7);
        assert_eq!(s1, SpanId::derive(b, SpanKind::RetrieveHit, 7));
        assert_ne!(s1, SpanId::derive(a, SpanKind::RetrieveHit, 8));
        assert_ne!(s1, SpanId::derive(a, SpanKind::RetrieveMiss, 7));
    }

    #[test]
    fn lifecycle_parents_chain_without_id_plumbing() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(2, 64));
        let (tracer, _) = tracer_with(&registry, recorder.clone(), TraceConfig::default());
        tracer.on_result_produced(1, 9, 77, 100);
        tracer.on_cache_insert(2, 9, 77, 100, 1);
        tracer.on_retrieve_hit(3, 9, 77, 1001, 100, 2);
        tracer.on_drop(
            4,
            9,
            77,
            100,
            SpanKind::FullyConsumed,
            "consume",
            "lsc",
            0.0,
            2,
        );
        let spans = recorder.recent();
        assert_eq!(spans.len(), 4);
        let trace = TraceId::for_object(77);
        assert!(spans.iter().all(|s| s.trace == trace));
        let produced = &spans[0];
        let insert = &spans[1];
        let hit = &spans[2];
        let consumed = &spans[3];
        assert_eq!(produced.parent, None);
        assert_eq!(insert.parent, Some(produced.span));
        assert_eq!(hit.parent, Some(insert.span));
        assert_eq!(consumed.parent, Some(insert.span));
    }

    #[test]
    fn sampling_keeps_whole_traces() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 256));
        let config = TraceConfig {
            trace_sample_every_n: 4,
            ..TraceConfig::default()
        };
        let (tracer, _) = tracer_with(&registry, recorder.clone(), config);
        for object in 0..64u64 {
            tracer.on_result_produced(1, 1, object, 10);
            tracer.on_cache_insert(2, 1, object, 10, 1);
        }
        let spans = recorder.recent();
        assert!(!spans.is_empty());
        assert!(spans.len() < 128);
        // Sampled traces keep every span: each sampled object has both.
        for span in &spans {
            assert_eq!(
                spans.iter().filter(|s| s.trace == span.trace).count(),
                2,
                "trace {} partially sampled",
                span.trace
            );
        }
        // Metrics still count everything.
        assert!(registry
            .render()
            .contains("bad_trace_spans_total{kind=\"result_produced\"} 64"));
    }

    #[test]
    fn sample_zero_is_metrics_only() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let config = TraceConfig {
            trace_sample_every_n: 0,
            ..TraceConfig::default()
        };
        let (tracer, ring) = tracer_with(&registry, recorder.clone(), config);
        tracer.on_result_produced(1, 1, 5, 10);
        assert!(recorder.is_empty());
        assert!(ring.is_empty());
        assert!(registry
            .render()
            .contains("bad_trace_spans_total{kind=\"result_produced\"} 1"));
    }

    #[test]
    fn slo_violations_are_counted_and_noted() {
        let registry = Registry::new();
        let recorder = Arc::new(FlightRecorder::new(1, 16));
        let config = TraceConfig {
            slo: SloConfig {
                delivery_latency_us: 100,
                staleness_us: 100,
            },
            ..TraceConfig::default()
        };
        let (tracer, _) = tracer_with(&registry, recorder.clone(), config);
        tracer.on_retrieve_hit(1, 1, 5, 9, 10, 50); // within SLO
        tracer.on_retrieve_hit(2, 1, 5, 9, 10, 500); // violation
        tracer.on_retrieve_miss(3, 1, 6, 9, 10, 900); // violation
        tracer.on_drop(
            4,
            1,
            5,
            10,
            SpanKind::FullyConsumed,
            "consume",
            "lsc",
            0.0,
            5_000, // stale
        );
        let text = registry.render();
        assert!(text.contains("bad_delivery_latency_slo_violations_total 2"));
        assert!(text.contains("bad_staleness_slo_violations_total 1"));
        assert_eq!(recorder.anomalies(), 3);
    }

    #[test]
    fn disabled_tracer_emits_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.enabled());
        tracer.on_result_produced(1, 1, 1, 1);
        tracer.on_cache_insert(1, 1, 1, 1, 1);
        tracer.on_retrieve_hit(1, 1, 1, 1, 1, u64::MAX);
        assert!(tracer.recorder().is_empty());
        assert_eq!(tracer.recorder().anomalies(), 0);
    }

    #[test]
    fn flight_recorder_rings_evict_oldest() {
        let recorder = FlightRecorder::new(1, 2);
        let trace = TraceId::for_object(1);
        for t in 0..5u64 {
            recorder.record(&Span {
                trace,
                span: SpanId::derive(trace, SpanKind::ResultProduced, t),
                parent: None,
                kind: SpanKind::ResultProduced,
                t_us: t,
                cache: 1,
                object: 1,
                subscriber: 0,
                bytes: 1,
                lag_us: 0,
                policy: "",
                drop_kind: "",
                score: 0.0,
            });
        }
        let spans = recorder.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].t_us, 3);
        assert_eq!(spans[1].t_us, 4);
    }

    #[test]
    fn anomaly_dump_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!(
            "bad-trace-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&dir);
        let recorder = FlightRecorder::new(1, 8);
        recorder.note_anomaly("before_path_is_set", 1);
        recorder.set_dump_path(&dir);
        let trace = TraceId::for_object(3);
        recorder.record(&Span {
            trace,
            span: SpanId::derive(trace, SpanKind::Expire, 2),
            parent: None,
            kind: SpanKind::Expire,
            t_us: 9,
            cache: 2,
            object: 3,
            subscriber: 0,
            bytes: 64,
            lag_us: 1000,
            policy: "ttl",
            drop_kind: "expire",
            score: 0.0,
        });
        recorder.note_anomaly("budget_overrun", 10);
        assert_eq!(recorder.anomalies(), 2);
        let text = std::fs::read_to_string(&dir).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""kind":"anomaly","reason":"budget_overrun"#));
        assert!(lines[1].contains(r#""kind":"expire""#));
        assert!(lines[1].contains(r#""drop_kind":"expire","policy":"ttl""#));
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn overwrite_under_contention_never_loses_the_claim() {
        // Generative striping test: many threads hammer tiny rings so
        // slots wrap constantly and writers collide on the per-slot
        // try_lock. Whatever the interleaving, the *claim* counter must
        // stay exact: every attempted record bumps exactly one stripe
        // head, so Σ heads == records attempted, with contended drops
        // only ever reducing what is *visible*, never what was claimed.
        let mut seed = 0xC1A1_35EEu64;
        for round in 0..4 {
            // xorshift64* the shape: stripe/capacity in [1, 8], thread
            // and record counts per round.
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let mixed = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let stripes = 1 + (mixed % 8) as usize;
            let capacity = 1 + ((mixed >> 8) % 8) as usize;
            let threads = 4;
            let per_thread = 2_000u64;
            let recorder = Arc::new(FlightRecorder::new(stripes, capacity));
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let recorder = Arc::clone(&recorder);
                    std::thread::spawn(move || {
                        for i in 0..per_thread {
                            let trace = TraceId::for_object(t * per_thread + i);
                            recorder.record(&Span {
                                trace,
                                span: SpanId::derive(trace, SpanKind::CacheInsert, i),
                                parent: None,
                                kind: SpanKind::CacheInsert,
                                t_us: i,
                                cache: t,
                                object: i,
                                subscriber: 0,
                                bytes: 1,
                                lag_us: 0,
                                policy: "",
                                drop_kind: "",
                                score: 0.0,
                            });
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            let attempted = threads * per_thread;
            assert_eq!(
                recorder.claims(),
                attempted,
                "round {round}: stripes={stripes} capacity={capacity} lost a claim"
            );
            // Drops only ever come out of claimed slots, every visible
            // span came from a successful (non-dropped) write, and the
            // ring can never show more spans than it has slots.
            let visible = recorder.len() as u64;
            assert!(
                visible + recorder.contended_drops() <= attempted,
                "round {round}: visible={visible} drops={} attempted={attempted}",
                recorder.contended_drops()
            );
            assert!(visible <= (recorder.stripes.len() * recorder.capacity) as u64);
        }
    }

    #[test]
    fn anomaly_dump_carries_the_threads_last_stage_path() {
        use crate::profile::{ProfileConfig, Profiler, StagePath};
        use crate::registry::Registry;

        let dir = std::env::temp_dir().join(format!(
            "bad-trace-stage-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&dir);
        let recorder = FlightRecorder::new(1, 8);
        recorder.set_dump_path(&dir);

        // Profiler on: record a stage on *this* thread, then note an
        // anomaly — the dump header must carry the stage path.
        let profiler = Profiler::new(&Registry::new(), ProfileConfig::default());
        let mut timer = profiler.op();
        profiler.stage(&mut timer, StagePath::InsertVictimScan, 42);
        recorder.note_anomaly("budget_overrun", 10);
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(
            text.contains(r#""last_stage":"insert;victim_scan""#),
            "{text}"
        );
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn span_json_is_stable() {
        let trace = TraceId::for_object(11);
        let span = Span {
            trace,
            span: SpanId::derive(trace, SpanKind::RetrieveHit, 42),
            parent: Some(SpanId::derive(trace, SpanKind::CacheInsert, 2)),
            kind: SpanKind::RetrieveHit,
            t_us: 1_000,
            cache: 2,
            object: 11,
            subscriber: 42,
            bytes: 256,
            lag_us: 77,
            policy: "",
            drop_kind: "",
            score: 0.0,
        };
        let json = span.to_json();
        assert!(json.starts_with(r#"{"kind":"retrieve_hit","t_us":1000,"trace":"#));
        assert!(json.contains(r#""subscriber":42"#));
        assert!(json.contains(r#""lag_us":77"#));
        assert!(!json.contains("drop_kind"));
    }
}
