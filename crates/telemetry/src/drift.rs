//! Analytical-model drift detection: eqs. 5–7 as a live predictor.
//!
//! The paper's TTL model measures, per backend subscription `i`, the
//! notification arrival rate λᵢ and consumption rate ηᵢ, forms the
//! growth rate ρᵢ = (λᵢ − ηᵢ)⁺ and assigns TTLs `Tᵢ = nᵢ·B / Σⱼ nⱼ·ρⱼ`
//! (eq. 7) so the budget identity `Σ ρᵢ·Tᵢ = B` (eq. 5) holds. That
//! same model *predicts* observable behaviour: assuming Poisson
//! consumption (the paper's eq. 6 setting), a subscriber's retrieval
//! delay `D` is exponential with per-subscriber rate μᵢ = ηᵢ/nᵢ, so
//!
//! * predicted hit ratio of subscription `i`: `pᵢ = 1 − e^(−μᵢ·Tᵢ)`
//!   (the retrieval arrives before the TTL expires the object),
//! * predicted staleness of a hit: `E[D | D < Tᵢ] = 1/μᵢ −
//!   Tᵢ·e^(−μᵢ·Tᵢ) / (1 − e^(−μᵢ·Tᵢ))`,
//! * predicted steady-state occupancy: `Σ ρᵢ·Tᵢ` (eq. 5 itself).
//!
//! Aggregating with demand weights `wᵢ = nᵢ·λᵢ` (each arriving object
//! is wanted by `nᵢ` subscribers) gives fleet-level predictions that
//! the [`DriftDetector`] compares against *observed* windowed hit
//! ratio, staleness and occupancy. The absolute errors blend into an
//! exponentially-smoothed drift score in `[0, 1]`; a score that stays
//! high means reality has diverged from the model — a mis-provisioned
//! budget, a regime shift, or a workload the Poisson assumptions no
//! longer describe — and the health engine's `model_drift` alert
//! fires.
//!
//! [`EventRateEstimator`] mirrors the cache tier's byte-rate
//! estimator but counts *events*, giving λ̂/η̂ in events/s; the
//! property tests drive it with synthetic Poisson streams and check
//! the predicted hit ratio against the closed forms above.

use std::collections::VecDeque;

use crate::json::ObjectWriter;

/// Sliding-window event-rate estimator (events per second over the
/// trailing `window_us` of virtual time). The cache tier measures λ/η
/// in *bytes* per second for the TTL computer; drift prediction needs
/// the event-rate view of the same streams because hit probability is
/// about whether *a retrieval happens*, not how many bytes it moves.
#[derive(Clone, Debug)]
pub struct EventRateEstimator {
    window_us: u64,
    events: VecDeque<u64>,
}

impl EventRateEstimator {
    /// Creates an estimator over a `window_us`-wide sliding window.
    pub fn new(window_us: u64) -> Self {
        Self {
            window_us: window_us.max(1),
            events: VecDeque::new(),
        }
    }

    /// Records one event at virtual `t_us`, pruning anything outside
    /// the window ending at `t_us`.
    pub fn record(&mut self, t_us: u64) {
        self.events.push_back(t_us);
        let cutoff = t_us.saturating_sub(self.window_us);
        while self.events.front().is_some_and(|&t| t < cutoff) {
            self.events.pop_front();
        }
    }

    /// Events inside the window ending at `now_us` (pure read).
    pub fn events_in_window(&self, now_us: u64) -> u64 {
        let cutoff = now_us.saturating_sub(self.window_us);
        self.events.iter().filter(|&&t| t >= cutoff).count() as u64
    }

    /// Estimated rate in events/second over the window ending at
    /// `now_us`.
    pub fn rate_per_sec(&self, now_us: u64) -> f64 {
        self.events_in_window(now_us) as f64 / (self.window_us as f64 / 1e6)
    }
}

/// One backend subscription's model inputs, as measured by the cache
/// tier at prediction time.
#[derive(Clone, Copy, Debug)]
pub struct SubscriptionModel {
    /// Subscriber count `nᵢ`.
    pub subscribers: u64,
    /// Measured arrival rate λ̂ᵢ in events/s.
    pub lambda_events_per_s: f64,
    /// Measured aggregate consumption rate η̂ᵢ in events/s (all `nᵢ`
    /// subscribers combined).
    pub eta_events_per_s: f64,
    /// Measured growth rate ρᵢ = (λᵢ − ηᵢ)⁺ in *bytes*/s — the eq. 5
    /// occupancy prediction is a byte quantity.
    pub rho_bytes_per_s: f64,
    /// The TTL `Tᵢ` currently in force, in seconds.
    pub ttl_s: f64,
}

/// Fleet-level model outputs for one prediction window.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelPrediction {
    /// Demand-weighted predicted hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
    /// Predicted mean staleness of a hit, in microseconds.
    pub mean_staleness_us: f64,
    /// Predicted steady-state occupancy `Σ ρᵢ·Tᵢ` in bytes (eq. 5).
    pub expected_bytes: f64,
    /// Subscriptions that contributed.
    pub subscriptions: u64,
}

/// Per-subscription closed forms (exposed for the property tests).
///
/// Returns `(hit probability, mean staleness of a hit in seconds)` for
/// per-subscriber consumption rate `mu` (events/s) and TTL `ttl_s`.
pub fn per_subscription_prediction(mu: f64, ttl_s: f64) -> (f64, f64) {
    if mu <= 0.0 || ttl_s <= 0.0 {
        return (0.0, 0.0);
    }
    let x = mu * ttl_s;
    let p = 1.0 - (-x).exp();
    if p <= f64::EPSILON {
        return (0.0, 0.0);
    }
    // E[D | D < T] for D ~ Exp(mu): 1/mu − T·e^{−x}/(1−e^{−x}).
    let staleness = 1.0 / mu - ttl_s * (-x).exp() / p;
    (p, staleness.max(0.0))
}

/// Evaluates eqs. 5–7 over the measured per-subscription inputs.
pub fn predict(models: &[SubscriptionModel]) -> ModelPrediction {
    let mut weight_sum = 0.0;
    let mut hit_weighted = 0.0;
    let mut staleness_weighted = 0.0;
    let mut staleness_weight = 0.0;
    let mut expected_bytes = 0.0;
    for m in models {
        let n = m.subscribers.max(1) as f64;
        let mu = (m.eta_events_per_s / n).max(0.0);
        let (p, staleness_s) = per_subscription_prediction(mu, m.ttl_s);
        // Demand weight: each arriving object is wanted by n subscribers.
        let w = n * m.lambda_events_per_s.max(0.0);
        weight_sum += w;
        hit_weighted += w * p;
        staleness_weighted += w * p * staleness_s;
        staleness_weight += w * p;
        expected_bytes += m.rho_bytes_per_s.max(0.0) * m.ttl_s.max(0.0);
    }
    ModelPrediction {
        hit_ratio: if weight_sum > 0.0 {
            hit_weighted / weight_sum
        } else {
            0.0
        },
        mean_staleness_us: if staleness_weight > 0.0 {
            staleness_weighted / staleness_weight * 1e6
        } else {
            0.0
        },
        expected_bytes,
        subscriptions: models.len() as u64,
    }
}

/// Drift-score tuning.
#[derive(Clone, Copy, Debug)]
pub struct DriftConfig {
    /// EWMA smoothing factor for the score (weight of the newest
    /// window's error).
    pub alpha: f64,
    /// Weight of the |predicted − observed| hit-ratio error.
    pub hit_weight: f64,
    /// Weight of the occupancy error (normalised by the budget).
    pub size_weight: f64,
    /// Weight of the staleness error (normalised by the larger of the
    /// two values).
    pub staleness_weight: f64,
    /// Score at or above which the `model_drift` alert condition holds.
    pub threshold: f64,
    /// Windows to observe before the score is considered meaningful
    /// (estimators and TTLs need to warm up).
    pub warmup_windows: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            alpha: 0.3,
            hit_weight: 0.6,
            size_weight: 0.3,
            staleness_weight: 0.1,
            threshold: 0.25,
            warmup_windows: 3,
        }
    }
}

/// One window's observation fed to the detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriftSample {
    /// Model outputs for the window.
    pub predicted: ModelPrediction,
    /// Observed windowed hit ratio, if any retrieval happened.
    pub observed_hit_ratio: Option<f64>,
    /// Observed windowed mean staleness in µs, if anything was dropped.
    pub observed_staleness_us: Option<f64>,
    /// Observed cache occupancy in bytes.
    pub occupancy_bytes: u64,
    /// Configured budget in bytes (normalises the occupancy error).
    pub budget_bytes: u64,
}

/// The exponentially-smoothed model-vs-reality scorer.
#[derive(Clone, Copy, Debug)]
pub struct DriftDetector {
    config: DriftConfig,
    score: f64,
    windows: u64,
    last_hit_error: f64,
    last_size_error: f64,
    last_staleness_error: f64,
}

impl DriftDetector {
    /// Creates a detector with score 0.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            score: 0.0,
            windows: 0,
            last_hit_error: 0.0,
            last_size_error: 0.0,
            last_staleness_error: 0.0,
        }
    }

    /// Feeds one window and returns the new score. Observations that
    /// are absent (no retrievals, no drops this window) contribute no
    /// error — silence is not drift.
    pub fn observe(&mut self, sample: DriftSample) -> f64 {
        self.windows += 1;
        let c = &self.config;
        self.last_hit_error = sample
            .observed_hit_ratio
            .map(|h| (sample.predicted.hit_ratio - h).abs())
            .unwrap_or(0.0);
        self.last_size_error = if sample.budget_bytes > 0 {
            ((sample.predicted.expected_bytes - sample.occupancy_bytes as f64).abs()
                / sample.budget_bytes as f64)
                .min(1.0)
        } else {
            0.0
        };
        self.last_staleness_error = sample
            .observed_staleness_us
            .map(|obs| {
                let pred = sample.predicted.mean_staleness_us;
                let denom = pred.max(obs);
                if denom > 0.0 {
                    ((pred - obs).abs() / denom).min(1.0)
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        let error = (c.hit_weight * self.last_hit_error
            + c.size_weight * self.last_size_error
            + c.staleness_weight * self.last_staleness_error)
            .min(1.0);
        if self.windows <= c.warmup_windows {
            // Warm-up: track the error without letting early estimator
            // noise trip the alert.
            self.score = 0.0;
        } else {
            self.score = c.alpha * error + (1.0 - c.alpha) * self.score;
        }
        self.score
    }

    /// Current smoothed score in `[0, 1]`.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Whether the score is at or above the alert threshold.
    pub fn breached(&self) -> bool {
        self.score >= self.config.threshold
    }

    /// Windows observed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The configured alert threshold.
    pub fn threshold(&self) -> f64 {
        self.config.threshold
    }

    /// Renders the detector state (score + last per-component errors)
    /// for `/healthz`.
    pub fn to_json(&self) -> String {
        let mut body = String::with_capacity(192);
        {
            let mut obj = ObjectWriter::new(&mut body);
            obj.field_f64("score", self.score);
            obj.field_f64("threshold", self.config.threshold);
            obj.field_u64("windows", self.windows);
            obj.field_f64("hit_error", self.last_hit_error);
            obj.field_f64("size_error", self.last_size_error);
            obj.field_f64("staleness_error", self.last_staleness_error);
        }
        body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* for the synthetic Poisson streams —
    /// no crates.io RNG in this workspace.
    struct XorShift64(u64);

    impl XorShift64 {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn uniform(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Exponential inter-arrival with rate `lambda` (per second),
        /// in microseconds.
        fn exp_us(&mut self, lambda: f64) -> u64 {
            let u = self.uniform().max(1e-12);
            ((-u.ln() / lambda) * 1e6) as u64
        }
    }

    #[test]
    fn estimator_converges_on_poisson_streams() {
        // Property: over many seeds and rates, the windowed estimate
        // lands within 15% of the true rate once the window is full.
        for (seed, lambda) in [(1u64, 5.0f64), (7, 50.0), (13, 200.0), (99, 1000.0)] {
            let mut rng = XorShift64(seed);
            let window_us = 20_000_000; // 20 s window
            let mut est = EventRateEstimator::new(window_us);
            let mut t = 0u64;
            // Run 10 windows of virtual time.
            while t < 10 * window_us {
                t += rng.exp_us(lambda);
                est.record(t);
            }
            let estimate = est.rate_per_sec(t);
            let rel = (estimate - lambda).abs() / lambda;
            assert!(
                rel < 0.15,
                "seed {seed}: lambda {lambda}, estimate {estimate}, rel err {rel}"
            );
        }
    }

    #[test]
    fn estimator_prunes_to_window() {
        let mut est = EventRateEstimator::new(1_000_000);
        for t in [0u64, 100, 200, 2_000_000] {
            est.record(t);
        }
        // Only the last event is inside the window ending at 2s.
        assert_eq!(est.events_in_window(2_000_000), 1);
        assert_eq!(est.rate_per_sec(2_000_000), 1.0);
        // Reading at a later now prunes logically without mutation.
        assert_eq!(est.events_in_window(10_000_000), 0);
    }

    #[test]
    fn closed_form_hit_ratio_matches_simulation() {
        // Property: for a Poisson consumer with rate mu racing a TTL
        // of T seconds, the empirical P(D < T) matches 1 − e^{−μT}.
        for (seed, mu, ttl_s) in [(3u64, 0.5f64, 2.0f64), (11, 2.0, 0.5), (17, 1.0, 1.0)] {
            let mut rng = XorShift64(seed);
            let trials = 20_000;
            let mut hits = 0u64;
            let mut staleness_sum = 0.0;
            for _ in 0..trials {
                let d_s = rng.exp_us(mu) as f64 / 1e6;
                if d_s < ttl_s {
                    hits += 1;
                    staleness_sum += d_s;
                }
            }
            let empirical_p = hits as f64 / trials as f64;
            let (p, staleness) = per_subscription_prediction(mu, ttl_s);
            assert!(
                (empirical_p - p).abs() < 0.02,
                "seed {seed}: empirical {empirical_p} vs closed form {p}"
            );
            let empirical_staleness = staleness_sum / hits as f64;
            assert!(
                (empirical_staleness - staleness).abs() / staleness < 0.05,
                "seed {seed}: staleness {empirical_staleness} vs {staleness}"
            );
        }
    }

    #[test]
    fn predict_aggregates_with_demand_weights() {
        // Two subscriptions: one always hits (huge μT), one never
        // (μ = 0). Weights 3:1 by n·λ → hit ratio 0.75.
        let models = [
            SubscriptionModel {
                subscribers: 3,
                lambda_events_per_s: 1.0,
                eta_events_per_s: 3000.0,
                rho_bytes_per_s: 10.0,
                ttl_s: 100.0,
            },
            SubscriptionModel {
                subscribers: 1,
                lambda_events_per_s: 1.0,
                eta_events_per_s: 0.0,
                rho_bytes_per_s: 5.0,
                ttl_s: 100.0,
            },
        ];
        let p = predict(&models);
        assert!((p.hit_ratio - 0.75).abs() < 1e-6, "hit {}", p.hit_ratio);
        // Eq. 5: expected bytes is Σ ρᵢ·Tᵢ.
        assert!((p.expected_bytes - (10.0 * 100.0 + 5.0 * 100.0)).abs() < 1e-9);
        assert_eq!(p.subscriptions, 2);
        // Empty model set predicts nothing, finitely.
        let empty = predict(&[]);
        assert_eq!(empty.hit_ratio, 0.0);
        assert_eq!(empty.expected_bytes, 0.0);
    }

    #[test]
    fn drift_score_rises_on_divergence_and_decays_on_recovery() {
        let mut det = DriftDetector::new(DriftConfig {
            warmup_windows: 0,
            ..DriftConfig::default()
        });
        let aligned = DriftSample {
            predicted: ModelPrediction {
                hit_ratio: 0.9,
                mean_staleness_us: 1e6,
                expected_bytes: 1000.0,
                subscriptions: 1,
            },
            observed_hit_ratio: Some(0.9),
            observed_staleness_us: Some(1e6),
            occupancy_bytes: 1000,
            budget_bytes: 10_000,
        };
        for _ in 0..5 {
            det.observe(aligned);
        }
        assert!(det.score() < 0.01, "aligned score {}", det.score());
        assert!(!det.breached());
        // Regime shift: observed hit collapses, occupancy overruns.
        let diverged = DriftSample {
            observed_hit_ratio: Some(0.1),
            occupancy_bytes: 9_000,
            ..aligned
        };
        let mut last = det.score();
        for _ in 0..6 {
            let s = det.observe(diverged);
            assert!(s >= last);
            last = s;
        }
        assert!(det.breached(), "diverged score {}", det.score());
        // Recovery decays the score back under the threshold.
        for _ in 0..12 {
            det.observe(aligned);
        }
        assert!(!det.breached(), "recovered score {}", det.score());
    }

    #[test]
    fn warmup_windows_suppress_early_noise() {
        let mut det = DriftDetector::new(DriftConfig {
            warmup_windows: 3,
            ..DriftConfig::default()
        });
        let noisy = DriftSample {
            predicted: ModelPrediction {
                hit_ratio: 1.0,
                ..ModelPrediction::default()
            },
            observed_hit_ratio: Some(0.0),
            ..DriftSample::default()
        };
        for _ in 0..3 {
            assert_eq!(det.observe(noisy), 0.0);
        }
        assert!(det.observe(noisy) > 0.0);
    }

    #[test]
    fn missing_observations_are_not_drift() {
        let mut det = DriftDetector::new(DriftConfig {
            warmup_windows: 0,
            ..DriftConfig::default()
        });
        let silent = DriftSample {
            predicted: ModelPrediction {
                hit_ratio: 0.95,
                mean_staleness_us: 1e6,
                expected_bytes: 0.0,
                subscriptions: 1,
            },
            observed_hit_ratio: None,
            observed_staleness_us: None,
            occupancy_bytes: 0,
            budget_bytes: 1_000,
        };
        for _ in 0..10 {
            det.observe(silent);
        }
        assert_eq!(det.score(), 0.0);
    }
}
