//! Guard test: the disabled telemetry path must cost ~nothing.
//!
//! Criterion isn't available offline, so this is a coarse wall-clock
//! guard rather than a statistical benchmark: ten million guarded
//! event sites plus counter increments must finish well inside a
//! bound that is generous for debug builds yet impossible to meet if
//! the disabled path ever starts allocating or formatting.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bad_telemetry::{null_sink, Event, Registry, RingBufferSink, SharedSink};

const ITERS: u64 = 10_000_000;

#[test]
fn disabled_event_path_is_nearly_free() {
    let sink = null_sink();
    let start = Instant::now();
    let mut recorded = 0u64;
    for i in 0..ITERS {
        // The guard every instrumented call site uses.
        if sink.enabled() {
            sink.record(&Event::CacheHit {
                t_us: i,
                cache: 1,
                objects: 1,
                bytes: 64,
            });
            recorded += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(recorded, 0, "NullSink must report disabled");
    // ~2 virtual calls/iteration; even a debug build does this in well
    // under a second. A path that builds strings or allocates blows
    // through this by an order of magnitude.
    assert!(
        elapsed < Duration::from_secs(5),
        "disabled event path too slow: {ITERS} guarded sites took {elapsed:?}"
    );
}

#[test]
fn counter_increments_stay_cheap() {
    let registry = Registry::new();
    let counter = registry.counter("bad_overhead_total");
    let start = Instant::now();
    for _ in 0..ITERS {
        counter.inc();
    }
    let elapsed = start.elapsed();
    assert_eq!(counter.get(), ITERS);
    assert!(
        elapsed < Duration::from_secs(5),
        "counter hot path too slow: {ITERS} increments took {elapsed:?}"
    );
}

#[test]
fn enabled_sink_still_records() {
    // Sanity check that the guard pattern records when a real sink is
    // installed — i.e. the overhead test above is not vacuous.
    let ring = Arc::new(RingBufferSink::new(8));
    let sink: SharedSink = ring.clone();
    if sink.enabled() {
        sink.record(&Event::CacheMiss {
            t_us: 7,
            cache: 2,
            objects: 1,
            bytes: 32,
        });
    }
    assert_eq!(ring.len(), 1);
}
