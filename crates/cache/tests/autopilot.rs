//! Autopilot acceptance suite: the hysteresis state machine, the
//! windowed-regret fix, safe in-place migration, and anti-flapping —
//! all deterministic via the xorshift64* harness in `common`.

mod common;

use bad_cache::autopilot::evaluate_window;
use bad_cache::{
    AutopilotConfig, CacheConfig, CacheManager, GhostCounters, GhostReport, HysteresisState,
    PolicyName, PolicySwitchRecord, ShadowConfig, ShadowSnapshot, ShardedCacheManager,
};
use bad_types::{ByteSize, SimDuration, Timestamp};
use common::{gen_ops, replay_with, Driver, Replay};

fn config(budget: u64) -> CacheConfig {
    CacheConfig {
        budget: ByteSize::new(budget),
        ttl_recompute_interval: SimDuration::from_secs(30),
        ..CacheConfig::default()
    }
}

fn shadow_full() -> ShadowConfig {
    ShadowConfig {
        sample_every_n: 1,
        ..ShadowConfig::default()
    }
}

// ---------------------------------------------------------------------
// Satellite: exhaustive hysteresis state-machine table (the alert-table
// style of `bad-telemetry`'s alert tests).
// ---------------------------------------------------------------------

#[test]
fn hysteresis_state_machine_table() {
    const LSC: Option<PolicyName> = Some(PolicyName::Lsc);
    const LSD: Option<PolicyName> = Some(PolicyName::Lsd);
    let config = AutopilotConfig {
        min_dwell_windows: 3,
        cooldown_windows: 4,
        ..AutopilotConfig::default()
    };
    // (name, state before: (cooldown, candidate, streak), contender,
    //  promoted, state after)
    #[allow(clippy::type_complexity)]
    let table: &[(
        &str,
        (u32, Option<PolicyName>, u32),
        Option<PolicyName>,
        Option<PolicyName>,
        (u32, Option<PolicyName>, u32),
    )] = &[
        // Margin not met (no contender this window).
        ("idle stays idle", (0, None, 0), None, None, (0, None, 0)),
        (
            "quiet window resets a building streak",
            (0, LSC, 2),
            None,
            None,
            (0, None, 0),
        ),
        // Dwell not met.
        (
            "first clearing window opens a streak",
            (0, None, 0),
            LSC,
            None,
            (0, LSC, 1),
        ),
        (
            "second clearing window extends the streak",
            (0, LSC, 1),
            LSC,
            None,
            (0, LSC, 2),
        ),
        (
            "contender change restarts the streak",
            (0, LSC, 2),
            LSD,
            None,
            (0, LSD, 1),
        ),
        // Clean promotion.
        (
            "dwell met promotes and arms the cooldown",
            (0, LSC, 2),
            LSC,
            LSC,
            (4, None, 0),
        ),
        // Cooldown active.
        (
            "cooldown ignores a clearing contender",
            (3, None, 0),
            LSC,
            None,
            (2, None, 0),
        ),
        (
            "cooldown ticks down on quiet windows too",
            (1, None, 0),
            None,
            None,
            (0, None, 0),
        ),
        (
            "cooldown clears any stale streak",
            (2, LSD, 2),
            LSD,
            None,
            (1, None, 0),
        ),
    ];
    for &(name, before, contender, promoted, after) in table {
        let mut state = HysteresisState {
            cooldown_remaining: before.0,
            candidate: before.1,
            streak: before.2,
        };
        assert_eq!(state.step(&config, contender), promoted, "{name}: output");
        assert_eq!(
            (state.cooldown_remaining, state.candidate, state.streak),
            after,
            "{name}: state after"
        );
    }
}

#[test]
fn hysteresis_degenerate_configs() {
    // Dwell 0 behaves like 1: promote on the first clearing window.
    let eager = AutopilotConfig {
        min_dwell_windows: 0,
        cooldown_windows: 2,
        ..AutopilotConfig::default()
    };
    let mut state = HysteresisState::default();
    assert_eq!(
        state.step(&eager, Some(PolicyName::Lru)),
        Some(PolicyName::Lru)
    );
    assert_eq!(state.cooldown_remaining, 2);

    // Cooldown 0 re-arms immediately after a promotion.
    let hot = AutopilotConfig {
        min_dwell_windows: 1,
        cooldown_windows: 0,
        ..AutopilotConfig::default()
    };
    let mut state = HysteresisState::default();
    assert_eq!(
        state.step(&hot, Some(PolicyName::Lsc)),
        Some(PolicyName::Lsc)
    );
    assert_eq!(
        state.step(&hot, Some(PolicyName::Lsd)),
        Some(PolicyName::Lsd)
    );
}

// ---------------------------------------------------------------------
// Satellite: windowed regret deltas — a late regime shift must still
// trigger promotion even after a long history that favours the live
// policy (the cumulative-counter bias this PR fixes).
// ---------------------------------------------------------------------

/// A cumulative snapshot where the LSC ghost has seen `requested`
/// objects in total and gained `net` of them over the live policy.
fn cumulative(requested: u64, net: u64) -> ShadowSnapshot {
    ShadowSnapshot {
        live_policy: PolicyName::Lru,
        sample_every_n: 1,
        sampled_accesses: requested,
        skipped_accesses: 0,
        ghosts: vec![GhostReport {
            policy: PolicyName::Lsc,
            counters: GhostCounters {
                hit_objects: requested / 2 + net,
                miss_objects: requested - requested / 2 - net,
                regret_ghost_hit_live_miss: net,
                regret_live_hit_ghost_miss: 0,
                ..GhostCounters::default()
            },
        }],
        audit: Vec::new(),
        audit_dropped: 0,
    }
}

#[test]
fn late_regime_shift_still_triggers_promotion() {
    let config = AutopilotConfig {
        min_dwell_windows: 3,
        cooldown_windows: 4,
        margin_milli: 200, // 20% of the window's requests
        min_window_requests: 16,
    };
    let mut ctl = bad_cache::PolicyController::new(config);
    // 50 windows of stationary workload: 100 requests each, the LSC
    // ghost never gains anything. No contender, no promotion.
    let mut requested = 0;
    for w in 0..50u64 {
        requested += 100;
        assert_eq!(
            ctl.observe(
                &cumulative(requested, 0),
                PolicyName::Lru,
                Timestamp::from_secs(w)
            ),
            None,
            "stationary prefix must not promote"
        );
    }
    // The regime shifts: LSC now gains 50 of every 100 requests. The
    // *cumulative* margin is still far below 20% for many windows —
    // evaluating cumulatively would sit blind on the dead regime...
    let mut net = 0;
    let mut promoted = None;
    for w in 50..60u64 {
        requested += 100;
        net += 50;
        let snapshot = cumulative(requested, net);
        assert_eq!(
            evaluate_window(&snapshot, PolicyName::Lru, &config),
            None,
            "window {w}: the cumulative view dilutes the shift below the margin"
        );
        if let Some(record) = ctl.observe(&snapshot, PolicyName::Lru, Timestamp::from_secs(w)) {
            promoted = Some((w, record));
            break;
        }
    }
    // ...but the windowed deltas see a 50% margin immediately: the
    // controller promotes after exactly the dwell requirement.
    let (at_window, record) = promoted.expect("windowed deltas promote after the shift");
    assert_eq!(at_window, 52, "three clearing windows after the shift");
    assert_eq!(record.to, PolicyName::Lsc);
    assert_eq!(
        record.net_regret, 50,
        "the deciding window's delta, not the total"
    );
    assert_eq!(record.requested, 100);
}

// ---------------------------------------------------------------------
// Tentpole: safe in-place migration — a forced mid-tape promotion keeps
// every accounting invariant, and indexed victim selection stays
// byte-identical to the linear scan across the switch.
// ---------------------------------------------------------------------

#[test]
fn mid_tape_switch_preserves_accounting_invariants() {
    for &(from, to) in &[
        (PolicyName::Lru, PolicyName::Lsc),
        (PolicyName::Lsc, PolicyName::Lscz),
        (PolicyName::Exp, PolicyName::Lru),
        (PolicyName::Lru, PolicyName::Ttl),
        (PolicyName::Ttl, PolicyName::Lsd),
    ] {
        for &seed in &[7u64, 42] {
            let ops = gen_ops(seed, 250, 5, 6);
            let mut mgr = CacheManager::new(from, config(30_000));
            let mut op_no = 0u64;
            let mut switched = false;
            let log = replay_with(&mut mgr, &ops, 5, |m| {
                op_no += 1;
                if op_no == 125 {
                    switched = m.switch_policy(to, Timestamp::from_secs(op_no));
                }
            });
            assert!(switched, "{from}->{to}/{seed}: switch must report a change");
            assert_eq!(mgr.policy_name(), to, "{from}->{to}/{seed}: policy swapped");
            // No flush: nothing in the dropped stream is attributable
            // to the switch itself — every drop has a normal cause, and
            // the byte ledger still balances exactly.
            assert_eq!(
                CacheManager::total_bytes(&mgr),
                mgr.caches_bytes_sum(),
                "{from}->{to}/{seed}: byte ledger balances"
            );
            let metrics = mgr.metrics();
            assert_eq!(
                metrics.hit_objects, log.hits,
                "{from}->{to}/{seed}: hit accounting preserved"
            );
            assert_eq!(
                metrics.miss_objects, log.misses,
                "{from}->{to}/{seed}: miss accounting preserved"
            );
            assert_eq!(
                metrics.hit_objects + metrics.miss_objects,
                metrics.requested_objects,
                "{from}->{to}/{seed}: hit+miss == requested"
            );
            let dropped_bytes: u64 = log.dropped.iter().map(|d| d.object.size.as_u64()).sum();
            assert_eq!(
                metrics.inserted_bytes.as_u64(),
                CacheManager::total_bytes(&mgr).as_u64() + dropped_bytes,
                "{from}->{to}/{seed}: inserted == resident + dropped"
            );
        }
    }
}

#[test]
fn mid_tape_switch_indexed_matches_linear_scan() {
    for &seed in &[7u64, 21, 1009] {
        let ops = gen_ops(seed, 250, 5, 6);
        let run = |use_index: bool| -> (Replay, bad_cache::CacheMetrics) {
            let mut mgr = CacheManager::new(
                PolicyName::Lru,
                CacheConfig {
                    use_victim_index: use_index,
                    ..config(30_000)
                },
            );
            let mut op_no = 0u64;
            let log = replay_with(&mut mgr, &ops, 5, |m| {
                op_no += 1;
                if op_no == 125 {
                    m.switch_policy(PolicyName::Lsc, Timestamp::from_secs(op_no));
                }
            });
            (log, mgr.metrics().clone())
        };
        let (log_indexed, metrics_indexed) = run(true);
        let (log_linear, metrics_linear) = run(false);
        assert_eq!(log_indexed, log_linear, "seed {seed}: replay logs diverge");
        assert_eq!(
            metrics_indexed, metrics_linear,
            "seed {seed}: metrics diverge"
        );
    }
}

// ---------------------------------------------------------------------
// Satellite: anti-flapping — a stationary workload with no sustained
// regret margin performs zero switches, and the mono vs `shards = 1`
// switch sequences are identical on a flap-friendly configuration.
// ---------------------------------------------------------------------

#[test]
fn stationary_workload_never_switches() {
    let autopilot = AutopilotConfig {
        min_dwell_windows: 3,
        cooldown_windows: 4,
        margin_milli: 100, // a sustained 10% advantage would be a regime
        min_window_requests: 8,
    };
    for &seed in &[1u64, 2, 3, 5, 8, 13] {
        let ops = gen_ops(seed, 400, 5, 6);
        let mut mgr = CacheManager::new(PolicyName::Lru, config(30_000));
        mgr.enable_shadow(shadow_full(), Timestamp::ZERO);
        mgr.enable_autopilot(autopilot);
        let mut op_no = 0u64;
        replay_with(&mut mgr, &ops, 5, |m| {
            op_no += 1;
            if op_no.is_multiple_of(10) {
                let _ = m.autopilot_tick(Timestamp::from_secs(op_no));
            }
        });
        let status = mgr.autopilot_status().expect("autopilot enabled");
        assert!(status.windows >= 40, "seed {seed}: windows evaluated");
        assert_eq!(
            status.switches,
            Vec::<PolicySwitchRecord>::new(),
            "seed {seed}: stationary workload must not switch"
        );
        assert_eq!(mgr.policy_name(), PolicyName::Lru, "seed {seed}");
    }
}

#[test]
fn mono_and_single_shard_switch_sequences_match() {
    // A deliberately flap-friendly configuration (no margin, no dwell,
    // no cooldown) maximises decision points, and starting live as
    // `Nc` (never cache) guarantees a promotion: every ghost hit is a
    // live miss, so the first window with any reuse produces a
    // contender. The guarantee under test is that the fleet controller
    // on one shard reproduces the mono controller's sequence
    // decision-for-decision.
    let autopilot = AutopilotConfig {
        min_dwell_windows: 1,
        cooldown_windows: 0,
        margin_milli: 0,
        min_window_requests: 1,
    };
    for &seed in &[7u64, 21, 42] {
        let ops = gen_ops(seed, 300, 5, 6);

        let mut mono = CacheManager::new(PolicyName::Nc, config(30_000));
        mono.enable_shadow(shadow_full(), Timestamp::ZERO);
        mono.enable_autopilot(autopilot);
        let mut op_no = 0u64;
        let log_mono = replay_with(&mut mono, &ops, 5, |m| {
            op_no += 1;
            if op_no.is_multiple_of(10) {
                let _ = m.autopilot_tick(Timestamp::from_secs(op_no));
            }
        });

        let mut fleet = ShardedCacheManager::new(PolicyName::Nc, config(30_000), 1);
        fleet.enable_shadow(shadow_full(), Timestamp::ZERO);
        fleet.enable_autopilot(autopilot);
        let mut op_no = 0u64;
        let log_fleet = replay_with(&mut fleet, &ops, 5, |m| {
            op_no += 1;
            if op_no.is_multiple_of(10) {
                let _ = m.autopilot_tick(Timestamp::from_secs(op_no));
            }
        });

        let mono_status = mono.autopilot_status().expect("autopilot enabled");
        let fleet_status = fleet.autopilot_status().expect("autopilot enabled");
        assert!(
            !mono_status.switches.is_empty(),
            "seed {seed}: the flap-friendly config must actually switch"
        );
        assert_eq!(
            mono_status.switches, fleet_status.switches,
            "seed {seed}: switch sequences diverge"
        );
        assert_eq!(mono.policy_name(), fleet.policy_name(), "seed {seed}");
        assert_ne!(
            mono.policy_name(),
            PolicyName::Nc,
            "seed {seed}: the controller must have escaped the no-cache policy"
        );
        assert_eq!(log_mono, log_fleet, "seed {seed}: replay logs diverge");
        assert_eq!(
            mono.metrics().clone(),
            fleet.metrics(),
            "seed {seed}: metrics diverge"
        );
    }
}

// ---------------------------------------------------------------------
// Tentpole: a promotion re-targets the shadow evaluator — the new live
// policy stops auditing itself and the snapshot names the new policy.
// ---------------------------------------------------------------------

#[test]
fn switch_retargets_shadow_evaluator() {
    let mut mgr = CacheManager::new(PolicyName::Lru, config(30_000));
    mgr.enable_shadow(shadow_full(), Timestamp::ZERO);
    let ops = gen_ops(11, 120, 4, 5);
    let mut op_no = 0u64;
    replay_with(&mut mgr, &ops, 4, |m| {
        op_no += 1;
        if op_no == 60 {
            assert!(m.switch_policy(PolicyName::Lsc, Timestamp::from_secs(op_no)));
        }
    });
    let snapshot = mgr.shadow_snapshot().expect("shadow enabled");
    assert_eq!(snapshot.live_policy, PolicyName::Lsc);
    // The ghost fleet keeps running across the switch: every catalog
    // policy still reports, including the old and new live policies.
    assert!(snapshot.ghost(PolicyName::Lru).is_some());
    assert!(snapshot.ghost(PolicyName::Lsc).is_some());
}
