//! Shard-merge properties of the hot-key sketches.
//!
//! Three layers, all std-only (driven by the shared xorshift harness):
//!
//! - **Space-Saving merge soundness** (property, across seeds × K ×
//!   capacity): merging per-part sketches of a skewed stream preserves
//!   the Metwally bounds — every reported count brackets the true count
//!   within its error term, every key heavier than `N / capacity` is
//!   retained, and no key outside the reported top-K can truly
//!   outweigh the reported K-th. That last clause is the "merged top-K
//!   ⊇ exact top-K within the error bound" contract: an exact-top-K
//!   key may only be missing when the bound cannot distinguish it from
//!   the reported K-th.
//! - **Merge order-independence** (regression): permuting the order in
//!   which per-shard snapshots reach the read-time merge yields a
//!   byte-identical `/hot` JSON body. The merge is symmetric by
//!   construction (BTreeMap state, total order on (count desc, key
//!   asc) truncation); this pins it against a future "fold left into
//!   the first shard" rewrite.
//! - **Deployment parity** (integration): replaying one op tape into a
//!   1-shard and a 4-shard [`ShardedCacheManager`] (ample budget, so
//!   the access streams match) produces byte-identical `/hot` JSON —
//!   the read-time merge of per-shard recorders reports exactly what a
//!   single recorder would have seen.

mod common;

use std::collections::BTreeMap;

use bad_cache::{CacheConfig, PolicyName, ShardedCacheManager};
use bad_telemetry::{HotSnapshot, SketchConfig, SketchRecorder, SpaceSaving};
use bad_types::ByteSize;
use common::{gen_ops, replay, XorShift64};

/// A deterministic skewed key stream: ~80 % of draws land on a hot set
/// an eighth of the keyspace wide, the rest spread over the full
/// space. Enough skew for heavy hitters to exist, enough tail for the
/// sketches to evict under pressure.
fn skewed_stream(seed: u64, len: usize, keyspace: u64) -> Vec<u64> {
    let mut rng = XorShift64::new(seed);
    let hot = (keyspace / 8).max(1);
    (0..len)
        .map(|_| {
            if rng.below(10) < 8 {
                rng.below(hot)
            } else {
                rng.below(keyspace)
            }
        })
        .collect()
}

#[test]
fn merged_top_k_covers_exact_heavy_hitters_within_error_bound() {
    for seed in [3u64, 17, 99, 2024] {
        for capacity in [16usize, 64] {
            for k in [4usize, 8, 16] {
                // Two parts of one logical stream (e.g. two shards'
                // views), sketched independently and merged at read
                // time.
                let part_a = skewed_stream(seed, 3_000, 512);
                let part_b = skewed_stream(seed ^ 0xABCD, 5_000, 512);

                let mut sketch_a = SpaceSaving::new(capacity);
                let mut sketch_b = SpaceSaving::new(capacity);
                let mut exact: BTreeMap<u64, u64> = BTreeMap::new();
                for &key in &part_a {
                    sketch_a.record(key, 1);
                    *exact.entry(key).or_insert(0) += 1;
                }
                for &key in &part_b {
                    sketch_b.record(key, 1);
                    *exact.entry(key).or_insert(0) += 1;
                }

                let merged = SpaceSaving::merge(&[&sketch_a, &sketch_b]);
                let total = (part_a.len() + part_b.len()) as u64;
                assert_eq!(merged.total(), total, "merge loses mass");

                // Metwally bounds survive the merge: count is an upper
                // bound, count - err a lower bound.
                for (key, entry) in merged.entries() {
                    let true_count = exact.get(key).copied().unwrap_or(0);
                    assert!(
                        entry.count >= true_count,
                        "seed {seed} cap {capacity}: key {key} count {} < true {true_count}",
                        entry.count
                    );
                    assert!(
                        entry.count - entry.err <= true_count,
                        "seed {seed} cap {capacity}: key {key} lower bound {} > true {true_count}",
                        entry.count - entry.err
                    );
                }

                // Guaranteed retention: any key heavier than
                // `total / capacity` must still be tracked post-merge.
                let epsilon = total / capacity as u64;
                for (&key, &true_count) in &exact {
                    if true_count > epsilon {
                        assert!(
                            merged.entries().contains_key(&key),
                            "seed {seed} cap {capacity}: heavy key {key} \
                             ({true_count} > {epsilon}) evicted by merge"
                        );
                    }
                }

                // Top-K containment within the error bound: no absent
                // key may truly outweigh the reported K-th entry's
                // upper bound — i.e. the reported top-K covers the
                // exact top-K except where the bound cannot tell the
                // candidates apart.
                let top = merged.top(k);
                if top.len() == k {
                    let kth_upper = top.last().expect("k entries").1.count;
                    let reported: Vec<u64> = top.iter().map(|(key, _)| *key).collect();
                    for (&key, &true_count) in &exact {
                        if !reported.contains(&key) {
                            assert!(
                                true_count <= kth_upper,
                                "seed {seed} cap {capacity} k {k}: absent key {key} \
                                 (true {true_count}) outweighs reported K-th ({kth_upper})"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn permuting_shard_snapshot_order_yields_byte_identical_hot_json() {
    const SHARDS: usize = 6;
    for seed in [5u64, 77, 4242] {
        // Feed one deterministic mixed stream through six per-shard
        // recorders, routing by key — the deployment's shape.
        let recorders: Vec<SketchRecorder> = (0..SHARDS)
            .map(|_| {
                SketchRecorder::new(SketchConfig {
                    capacity: 32,
                    top_k: 8,
                    ..SketchConfig::default()
                })
            })
            .collect();
        let mut rng = XorShift64::new(seed);
        for _ in 0..4_000 {
            let key = rng.below(200);
            let recorder = &recorders[(key % SHARDS as u64) as usize];
            match rng.below(10) {
                0..=5 => recorder.record_hit(key, 1 + rng.below(3), 64 + rng.below(4000)),
                6..=7 => recorder.record_miss(key, 1 + rng.below(2)),
                8 => recorder.record_ack(key),
                _ => recorder.record_delivery_lag(key, rng.below(5_000_000)),
            }
        }
        let snapshots: Vec<HotSnapshot> = recorders.iter().map(|r| r.snapshot()).collect();

        let reference = HotSnapshot::merge(&snapshots)
            .expect("non-empty shard set")
            .to_json();

        // Rotations, the reversal and xorshift-shuffled orders must
        // all render the same bytes.
        let mut orders: Vec<Vec<usize>> = (0..SHARDS)
            .map(|rot| (0..SHARDS).map(|i| (i + rot) % SHARDS).collect())
            .collect();
        orders.push((0..SHARDS).rev().collect());
        let mut shuffle_rng = XorShift64::new(seed ^ 0xF00D);
        for _ in 0..4 {
            let mut order: Vec<usize> = (0..SHARDS).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, shuffle_rng.below(i as u64 + 1) as usize);
            }
            orders.push(order);
        }
        for order in orders {
            let permuted: Vec<HotSnapshot> = order.iter().map(|&i| snapshots[i].clone()).collect();
            let json = HotSnapshot::merge(&permuted)
                .expect("non-empty shard set")
                .to_json();
            assert_eq!(
                json, reference,
                "seed {seed}: merge order {order:?} changed the /hot body"
            );
        }
    }
}

#[test]
fn sharded_hot_snapshot_matches_single_shard_byte_for_byte() {
    // Ample budget so eviction never makes the 1- and 4-shard access
    // streams diverge (see oracle_parity's aggregate-accounting note),
    // and fewer distinct keys than sketch capacity so both sides track
    // exactly. The 4-shard read-time merge must then reproduce the
    // single recorder's `/hot` body byte for byte.
    for seed in [7u64, 42] {
        let ops = gen_ops(seed, 400, 8, 8);
        let run = |shards: usize| {
            let mut mgr = ShardedCacheManager::new(
                PolicyName::Lru,
                CacheConfig {
                    budget: ByteSize::new(100_000_000),
                    ..CacheConfig::default()
                },
                shards,
            );
            mgr.enable_sketches(SketchConfig::default());
            replay(&mut mgr, &ops, 8);
            // Drain any deferred read records so trailing optimistic
            // hits are attributed before snapshotting.
            let _ = mgr.quiesce();
            mgr.hot_snapshot().expect("sketches enabled").to_json()
        };
        let single = run(1);
        let four = run(4);
        assert_eq!(
            single, four,
            "seed {seed}: shard count changed the merged /hot body"
        );
        assert!(
            single.contains("\"top\"") && single.contains("\"requests\""),
            "seed {seed}: /hot body missing axes: {single}"
        );
    }
}
