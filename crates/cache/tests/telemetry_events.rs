//! Std-only integration test: every dropped object emits exactly one
//! structured telemetry event whose kind is `cache.<DropKind::label()>`,
//! and the per-cause counters in [`CacheMetrics`] agree with the event
//! stream.

use std::sync::Arc;

use bad_cache::{CacheConfig, CacheManager, CacheTelemetry, DropKind, NewObject, PolicyName};
use bad_telemetry::{Event, Registry, RingBufferSink};
use bad_types::{BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, Timestamp};

fn count_kind(events: &[Event], kind: &str) -> u64 {
    events.iter().filter(|e| e.kind() == kind).count() as u64
}

fn insert(mgr: &mut CacheManager, bs: BackendSubId, id: u64, sec: u64, size: u64) {
    let ts = Timestamp::from_secs(sec);
    mgr.insert(
        bs,
        NewObject {
            id: ObjectId::new(id),
            ts,
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(1),
        },
        ts,
    )
    .unwrap();
}

/// Drives one scenario per [`DropKind`] through two managers sharing a
/// ring-buffer sink, then cross-checks the event stream against the
/// metrics counters: one event per drop, no more, no less.
#[test]
fn every_drop_kind_emits_exactly_one_event() {
    let registry = Registry::new();
    let ring = Arc::new(RingBufferSink::new(4096));

    // Manager 1 (LSC, tight budget): evictions, consumption drops and
    // unsubscription drops.
    let mut lsc = CacheManager::new(
        PolicyName::Lsc,
        CacheConfig {
            budget: ByteSize::new(1_000),
            ..CacheConfig::default()
        },
    );
    lsc.set_telemetry(CacheTelemetry::new(&registry, ring.clone()));

    // Cache 0: single subscriber; budget pressure forces evictions.
    let c0 = BackendSubId::new(0);
    lsc.create_cache(c0, Timestamp::ZERO);
    lsc.add_subscriber(c0, SubscriberId::new(1)).unwrap();
    for i in 0..5 {
        insert(&mut lsc, c0, i, i + 1, 400);
    }
    // Consumption: the lone subscriber acks everything still resident.
    let t10 = Timestamp::from_secs(10);
    let consumed = lsc.ack_consume(c0, SubscriberId::new(1), t10, t10).unwrap();
    assert!(
        !consumed.is_empty(),
        "ack should drop fully consumed objects"
    );

    // Cache 1: two subscribers; one acks, then the other leaves, which
    // drops the objects that were only waiting on it.
    let c1 = BackendSubId::new(1);
    lsc.create_cache(c1, Timestamp::ZERO);
    lsc.add_subscriber(c1, SubscriberId::new(2)).unwrap();
    lsc.add_subscriber(c1, SubscriberId::new(3)).unwrap();
    insert(&mut lsc, c1, 100, 11, 100);
    let t12 = Timestamp::from_secs(12);
    let early = lsc.ack_consume(c1, SubscriberId::new(2), t12, t12).unwrap();
    assert!(early.is_empty(), "subscriber 3 has not consumed yet");
    let gone = lsc
        .remove_subscriber(c1, SubscriberId::new(3), t12)
        .unwrap();
    assert!(
        !gone.is_empty(),
        "unsubscribe should drop the waiting object"
    );
    assert!(gone.iter().all(|d| d.reason == DropKind::Unsubscribed));

    // Manager 2 (TTL): expiries. The recompute interval is pushed out so
    // the initial 30 s TTL stays in force for the whole scenario.
    let mut ttl = CacheManager::new(
        PolicyName::Ttl,
        CacheConfig {
            budget: ByteSize::new(1_000),
            ttl_recompute_interval: SimDuration::from_secs(1_000_000),
            ..CacheConfig::default()
        },
    );
    ttl.set_telemetry(CacheTelemetry::new(&registry, ring.clone()));
    let c2 = BackendSubId::new(2);
    ttl.create_cache(c2, Timestamp::ZERO);
    ttl.add_subscriber(c2, SubscriberId::new(4)).unwrap();
    insert(&mut ttl, c2, 200, 1, 100);
    insert(&mut ttl, c2, 201, 2, 100);
    let expired = ttl.maintain(Timestamp::from_secs(100));
    assert_eq!(expired.len(), 2, "both objects outlived the 30s TTL");

    // Event stream vs. metrics counters: exact agreement per DropKind.
    let events = ring.events();
    let lsc_m = lsc.metrics();
    let ttl_m = ttl.metrics();
    let drops = [
        (
            DropKind::Evicted,
            lsc_m.evicted_objects + ttl_m.evicted_objects,
        ),
        (
            DropKind::Consumed,
            lsc_m.consumed_objects + ttl_m.consumed_objects,
        ),
        (
            DropKind::Expired,
            lsc_m.expired_objects + ttl_m.expired_objects,
        ),
        (
            DropKind::Unsubscribed,
            lsc_m.unsubscribed_objects + ttl_m.unsubscribed_objects,
        ),
    ];
    for (kind, counted) in drops {
        let kind_str = format!("cache.{}", kind.label());
        let emitted = count_kind(&events, &kind_str);
        assert!(counted > 0, "scenario never exercised {kind_str}");
        assert_eq!(
            emitted, counted,
            "{kind_str}: {emitted} events vs {counted} metric drops"
        );
    }

    // The shared registry's counters line up with the same totals.
    let text = registry.render();
    for (name, (_, counted)) in [
        "bad_cache_evicted_objects_total",
        "bad_cache_consumed_objects_total",
        "bad_cache_expired_objects_total",
        "bad_cache_unsubscribed_objects_total",
    ]
    .iter()
    .zip(drops)
    {
        assert!(
            text.contains(&format!("{name} {counted}")),
            "registry should render `{name} {counted}`:\n{text}"
        );
    }
}
