//! Concurrency stress: 8 std threads hammer a [`ShardedCacheManager`]
//! with mixed operations and the aggregate accounting must still
//! balance — no deadlock, `hit_objects + miss_objects ==
//! requested_objects` across shards, and `total_bytes ≤ B` after a
//! final global `maintain`.
//!
//! Threads partition insert/get ownership of the cache ids (thread `t`
//! owns caches with `c % THREADS == t`) so every cache sees
//! timestamp-ordered inserts from a single writer, matching the
//! broker's per-backend-subscription ordering; acks and subscriber
//! churn cross thread boundaries freely, so shard locks still see
//! plenty of cross-thread contention.

mod common;

use std::sync::Arc;
use std::thread;

use bad_cache::{CacheConfig, PolicyName, ShardedCacheManager};
use bad_types::{
    BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, TimeRange, Timestamp,
};
use common::XorShift64;

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 10_000;
const CACHES: u64 = 32;
const BUDGET: u64 = 1_000_000;

struct Tally {
    hits: u64,
    misses: u64,
}

fn worker(mgr: Arc<ShardedCacheManager>, t: u64) -> Tally {
    let mut rng = XorShift64::new(0xBAD_CAFE ^ (t + 1));
    // Produced timestamps for each cache this thread owns, for the
    // broker-side miss-fetch report.
    let owned: Vec<u64> = (0..CACHES).filter(|c| c % THREADS == t).collect();
    let mut produced: Vec<Vec<Timestamp>> = vec![Vec::new(); owned.len()];
    let mut tally = Tally { hits: 0, misses: 0 };
    for i in 0..OPS_PER_THREAD {
        let now = Timestamp::from_secs(i + 1);
        match rng.below(12) {
            // Insert into an owned cache: single writer per cache keeps
            // its timeline append-only.
            0..=4 => {
                let pick = (rng.below(owned.len() as u64)) as usize;
                let bs = BackendSubId::new(owned[pick]);
                mgr.insert(
                    bs,
                    bad_cache::NewObject {
                        id: ObjectId::new(t * 1_000_000 + i),
                        ts: now,
                        size: ByteSize::new(rng.range(1, 5000)),
                        fetch_latency: SimDuration::from_millis(500),
                    },
                    now,
                )
                .expect("cache exists");
                produced[pick].push(now);
            }
            // Get on an owned cache (the tally needs its produced set).
            5..=8 => {
                let pick = (rng.below(owned.len() as u64)) as usize;
                let bs = BackendSubId::new(owned[pick]);
                let from = rng.below(OPS_PER_THREAD);
                let len = rng.below(100);
                let range =
                    TimeRange::closed(Timestamp::from_secs(from), Timestamp::from_secs(from + len));
                let plan = mgr.plan_get(bs, range, now);
                tally.hits += plan.cached.len() as u64;
                let fetched = produced[pick]
                    .iter()
                    .filter(|&&ts| plan.missed.iter().any(|m| m.contains(ts)))
                    .count() as u64;
                tally.misses += fetched;
                mgr.record_miss_fetch(bs, fetched, ByteSize::new(fetched * 64), now);
            }
            // Ack from the permanent subscriber of any cache.
            9..=10 => {
                let c = rng.below(CACHES);
                let _ = mgr.ack_consume(
                    BackendSubId::new(c),
                    SubscriberId::new(1000 + c),
                    Timestamp::from_secs(rng.below(OPS_PER_THREAD)),
                    now,
                );
            }
            // Subscriber churn on any cache (never the permanent subs).
            _ => {
                let c = BackendSubId::new(rng.below(CACHES));
                let sub = SubscriberId::new(t * 100 + rng.below(4));
                if rng.below(2) == 0 {
                    mgr.add_subscriber(c, sub).expect("cache exists");
                } else {
                    let _ = mgr.remove_subscriber(c, sub, now);
                }
            }
        }
    }
    tally
}

fn run_stress(shards: usize) {
    let mgr = Arc::new(ShardedCacheManager::new(
        PolicyName::Lsc,
        CacheConfig {
            budget: ByteSize::new(BUDGET),
            ttl_recompute_interval: SimDuration::from_secs(30),
            ..CacheConfig::default()
        },
        shards,
    ));
    for c in 0..CACHES {
        let bs = BackendSubId::new(c);
        mgr.create_cache(bs, Timestamp::ZERO);
        mgr.add_subscriber(bs, SubscriberId::new(1000 + c))
            .expect("cache just created");
    }

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || worker(mgr, t))
        })
        .collect();
    let (mut hits, mut misses) = (0u64, 0u64);
    for handle in handles {
        let tally = handle.join().expect("worker panicked");
        hits += tally.hits;
        misses += tally.misses;
    }

    mgr.maintain(Timestamp::from_secs(2 * OPS_PER_THREAD));

    let m = mgr.metrics();
    assert_eq!(m.hit_objects, hits, "{shards} shards: hit accounting");
    assert_eq!(m.miss_objects, misses, "{shards} shards: miss accounting");
    assert_eq!(
        m.hit_objects + m.miss_objects,
        m.requested_objects,
        "{shards} shards: requests not exactly partitioned"
    );
    assert!(
        mgr.total_bytes() <= ByteSize::new(BUDGET),
        "{shards} shards: {} bytes resident over budget {BUDGET}",
        mgr.total_bytes().as_u64()
    );
}

/// Lock-free read-path stress: 6 reader threads hammer optimistic
/// snapshot GETs while 2 writer threads insert, ack and maintain
/// concurrently. Every returned plan must be internally consistent —
/// a torn read would show up as out-of-order/out-of-range cached
/// entries or a `cached_bytes` sum mismatch — and once the final
/// maintain has drained every shard's read mailbox, the hit metric
/// must equal the readers' own tally exactly.
#[test]
fn optimistic_reads_are_never_torn_and_account_exactly() {
    use bad_telemetry::{ProfileConfig, Profiler, Registry};

    const READERS: u64 = 6;
    const WRITERS: u64 = 2;
    const READ_OPS: u64 = 20_000;
    const WRITE_OPS: u64 = 5_000;
    const STRESS_CACHES: u64 = 16;

    let registry = Registry::new();
    let profiler = Profiler::new(&registry, ProfileConfig { sample_every_n: 1 });
    let mgr = Arc::new(ShardedCacheManager::new(
        PolicyName::Lsc,
        CacheConfig {
            budget: ByteSize::new(4_000_000),
            ttl_recompute_interval: SimDuration::from_secs(30),
            ..CacheConfig::default()
        },
        8,
    ));
    mgr.set_profiler(&profiler);
    for c in 0..STRESS_CACHES {
        let bs = BackendSubId::new(c);
        mgr.create_cache(bs, Timestamp::ZERO);
        mgr.add_subscriber(bs, SubscriberId::new(1000 + c))
            .expect("cache just created");
    }

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let mgr = Arc::clone(&mgr);
            thread::spawn(move || {
                let mut rng = XorShift64::new(0xFEED ^ (w + 1));
                let owned: Vec<u64> = (0..STRESS_CACHES).filter(|c| c % WRITERS == w).collect();
                for i in 0..WRITE_OPS {
                    let now = Timestamp::from_secs(i + 1);
                    let c = owned[rng.below(owned.len() as u64) as usize];
                    let bs = BackendSubId::new(c);
                    match rng.below(8) {
                        0..=5 => {
                            mgr.insert(
                                bs,
                                bad_cache::NewObject {
                                    id: ObjectId::new(w * 1_000_000 + i),
                                    ts: now,
                                    size: ByteSize::new(rng.range(1, 2000)),
                                    fetch_latency: SimDuration::from_millis(500),
                                },
                                now,
                            )
                            .expect("cache exists");
                        }
                        6 => {
                            let _ = mgr.ack_consume(
                                bs,
                                SubscriberId::new(1000 + c),
                                Timestamp::from_secs(rng.below(WRITE_OPS)),
                                now,
                            );
                        }
                        _ => {
                            mgr.maintain_shard((i % 8) as usize, now);
                        }
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let mgr = Arc::clone(&mgr);
            let profiler = profiler.clone();
            thread::spawn(move || {
                let mut rng = XorShift64::new(0xACE ^ (r + 1));
                let mut hits = 0u64;
                for i in 0..READ_OPS {
                    let now = Timestamp::from_secs(i + 1);
                    let bs = BackendSubId::new(rng.below(STRESS_CACHES));
                    let from = rng.below(WRITE_OPS);
                    let len = rng.below(200);
                    let range = TimeRange::closed(
                        Timestamp::from_secs(from),
                        Timestamp::from_secs(from + len),
                    );
                    let plan = mgr.plan_get(bs, range, now);
                    // Torn-read detection: a snapshot assembled from a
                    // half-published state would violate one of these.
                    let mut bytes = ByteSize::ZERO;
                    let mut last_ts = None;
                    for &(_, ts, size) in &plan.cached {
                        assert!(range.contains(ts), "cached entry outside requested range");
                        if let Some(prev) = last_ts {
                            assert!(ts > prev, "cached entries out of order: torn read");
                        }
                        last_ts = Some(ts);
                        bytes += size;
                    }
                    assert_eq!(
                        plan.cached_bytes, bytes,
                        "cached_bytes sum mismatch: torn read"
                    );
                    for w in plan.missed.windows(2) {
                        assert!(w[0].to < w[1].from, "missed ranges overlap or out of order");
                    }
                    hits += plan.cached.len() as u64;
                }
                profiler.flush_thread();
                hits
            })
        })
        .collect();

    for handle in writers {
        handle.join().expect("writer panicked");
    }
    let mut hits = 0u64;
    for handle in readers {
        hits += handle.join().expect("reader panicked");
    }

    // Drain every shard's mailbox (maintain locks each shard), then
    // the deferred hit accounting must balance exactly.
    mgr.maintain(Timestamp::from_secs(2 * READ_OPS));
    let m = mgr.metrics();
    assert_eq!(m.hit_objects, hits, "deferred hit accounting diverged");
    assert_eq!(
        m.hit_objects + m.miss_objects,
        m.requested_objects,
        "requests not exactly partitioned into hits and misses"
    );

    // The lock-free path really ran: the folded stage tree shows
    // optimistic reads (and their accounting drains).
    profiler.flush_thread();
    let folded = profiler.render_folded();
    assert!(
        folded.contains("get_all_pending;optimistic_read "),
        "no optimistic reads recorded:\n{folded}"
    );
}

#[test]
fn eight_threads_four_shards_accounting_balances() {
    run_stress(4);
}

#[test]
fn eight_threads_eight_shards_accounting_balances() {
    run_stress(8);
}
