//! Property-based tests for the caching core: budget invariants, victim
//! index consistency and Algorithm-1 range partitioning under random
//! operation sequences.

use bad_cache::{CacheConfig, CacheManager, NewObject, PolicyName};
use bad_types::{
    BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, TimeRange, Timestamp,
};
use proptest::prelude::*;

/// A randomized operation against the manager.
#[derive(Clone, Debug)]
enum Op {
    Insert {
        cache: u64,
        size: u64,
    },
    Get {
        cache: u64,
        from_sec: u64,
        len_sec: u64,
    },
    Ack {
        cache: u64,
        sub: u64,
        up_to_sec: u64,
    },
    AddSub {
        cache: u64,
        sub: u64,
    },
    RemoveSub {
        cache: u64,
        sub: u64,
    },
    Maintain,
}

fn arb_op(caches: u64, subs: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..caches, 1u64..5000).prop_map(|(cache, size)| Op::Insert { cache, size }),
        3 => (0..caches, 0u64..500, 0u64..100)
            .prop_map(|(cache, from_sec, len_sec)| Op::Get { cache, from_sec, len_sec }),
        2 => (0..caches, 0..subs, 0u64..500)
            .prop_map(|(cache, sub, up_to_sec)| Op::Ack { cache, sub, up_to_sec }),
        1 => (0..caches, 0..subs).prop_map(|(cache, sub)| Op::AddSub { cache, sub }),
        1 => (0..caches, 0..subs).prop_map(|(cache, sub)| Op::RemoveSub { cache, sub }),
        1 => Just(Op::Maintain),
    ]
}

/// Runs an op sequence against a manager; returns it for inspection.
fn run_ops(policy: PolicyName, budget: u64, use_index: bool, ops: &[Op]) -> CacheManager {
    let config = CacheConfig {
        budget: ByteSize::new(budget),
        use_victim_index: use_index,
        ttl_recompute_interval: SimDuration::from_secs(30),
        ..CacheConfig::default()
    };
    let mut mgr = CacheManager::new(policy, config);
    let n_caches = 4u64;
    for c in 0..n_caches {
        let bs = BackendSubId::new(c);
        mgr.create_cache(bs, Timestamp::ZERO);
        // Every cache starts with one permanent subscriber so objects are
        // not instantly consumed.
        mgr.add_subscriber(bs, SubscriberId::new(1000 + c)).unwrap();
    }
    let mut next_id = 0u64;
    let mut next_ts = 1u64;
    for op in ops {
        let now = Timestamp::from_secs(next_ts);
        match *op {
            Op::Insert { cache, size } => {
                let desc = NewObject {
                    id: ObjectId::new(next_id),
                    ts: now,
                    size: ByteSize::new(size),
                    fetch_latency: SimDuration::from_millis(500),
                };
                next_id += 1;
                mgr.insert(BackendSubId::new(cache), desc, now).unwrap();
            }
            Op::Get {
                cache,
                from_sec,
                len_sec,
            } => {
                let range = TimeRange::closed(
                    Timestamp::from_secs(from_sec),
                    Timestamp::from_secs(from_sec + len_sec),
                );
                let _ = mgr.plan_get(BackendSubId::new(cache), range, now);
            }
            Op::Ack {
                cache,
                sub,
                up_to_sec,
            } => {
                let _ = mgr.ack_consume(
                    BackendSubId::new(cache),
                    SubscriberId::new(sub),
                    Timestamp::from_secs(up_to_sec),
                    now,
                );
            }
            Op::AddSub { cache, sub } => {
                mgr.add_subscriber(BackendSubId::new(cache), SubscriberId::new(sub))
                    .unwrap();
            }
            Op::RemoveSub { cache, sub } => {
                let _ =
                    mgr.remove_subscriber(BackendSubId::new(cache), SubscriberId::new(sub), now);
            }
            Op::Maintain => {
                mgr.maintain(now);
            }
        }
        next_ts += 1;
    }
    mgr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eviction policies never let the aggregate size exceed the budget
    /// after an insert completes, and the tracked total always equals the
    /// sum over caches.
    #[test]
    fn eviction_respects_budget(
        ops in prop::collection::vec(arb_op(4, 8), 1..120),
        policy in prop::sample::select(vec![
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
            PolicyName::Exp,
        ]),
    ) {
        let mgr = run_ops(policy, 10_000, true, &ops);
        prop_assert!(mgr.total_bytes() <= mgr.budget());
        let sum: ByteSize = mgr.iter_caches().map(|c| c.total_bytes()).sum();
        prop_assert_eq!(sum, mgr.total_bytes());
    }

    /// The ordered victim index and the linear scan always agree on the
    /// victim's score (they may tie-break differently between caches with
    /// exactly equal scores).
    #[test]
    fn victim_index_agrees_with_linear_scan(
        ops in prop::collection::vec(arb_op(4, 8), 1..120),
        policy in prop::sample::select(vec![
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
        ]),
    ) {
        let mgr = run_ops(policy, u64::MAX, true, &ops);
        let now = Timestamp::from_secs(10_000);
        let indexed = mgr.choose_victim(now);
        let linear = mgr.linear_victim(now);
        prop_assert_eq!(indexed.is_some(), linear.is_some());
        if let (Some(a), Some(b)) = (indexed, linear) {
            let policy = mgr.policy_name().build();
            let score_a = policy.score(mgr.cache(a).unwrap(), now);
            let score_b = policy.score(mgr.cache(b).unwrap(), now);
            prop_assert_eq!(score_a.total_cmp(&score_b), std::cmp::Ordering::Equal,
                "indexed={} linear={}", score_a, score_b);
        }
    }

    /// Algorithm-1 partition: for any request range, the cached part and
    /// the missed part are disjoint, ordered, and jointly cover exactly
    /// the requested interval intersected with what was ever produced.
    #[test]
    fn get_plan_partitions_the_range(
        sizes in prop::collection::vec(1u64..1000, 1..40),
        evict_count in 0usize..20,
        from_sec in 0u64..50,
        len_sec in 0u64..50,
    ) {
        let config = CacheConfig {
            budget: ByteSize::MAX,
            ..CacheConfig::default()
        };
        let mut mgr = CacheManager::new(PolicyName::Lsc, config);
        let bs = BackendSubId::new(0);
        mgr.create_cache(bs, Timestamp::ZERO);
        mgr.add_subscriber(bs, SubscriberId::new(1)).unwrap();

        // Produce objects at t = 1, 2, ... seconds.
        let mut produced: Vec<(u64, Timestamp)> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let ts = Timestamp::from_secs(i as u64 + 1);
            mgr.insert(bs, NewObject {
                id: ObjectId::new(i as u64),
                ts,
                size: ByteSize::new(size),
                fetch_latency: SimDuration::from_millis(1),
            }, ts).unwrap();
            produced.push((i as u64, ts));
        }
        // Force some evictions through a shrunken budget replay: emulate
        // by consuming... instead, drop tails directly via a tiny second
        // manager is overkill — here we re-create with small budget.
        let _ = evict_count;

        let now = Timestamp::from_secs(1000);
        let range = TimeRange::closed(
            Timestamp::from_secs(from_sec),
            Timestamp::from_secs(from_sec + len_sec),
        );
        let plan = mgr.plan_get(bs, range, now);

        // Every produced object in the range is either in the cached list
        // or inside the missed range; nothing is in both.
        for &(id, ts) in &produced {
            if !range.contains(ts) { continue; }
            let in_cached = plan.cached.iter().any(|&(oid, _, _)| oid.as_u64() == id);
            let in_missed = plan.missed.iter().any(|m| m.contains(ts));
            prop_assert!(in_cached ^ in_missed || (in_cached && !in_missed),
                "object {id} at {ts}: cached={in_cached} missed={in_missed}");
            prop_assert!(in_cached || in_missed,
                "object {id} at {ts} fell through the partition");
        }
        // Cached list is timestamp-ordered.
        prop_assert!(plan.cached.windows(2).all(|w| w[0].1 <= w[1].1));
        // cached_bytes is consistent.
        let total: ByteSize = plan.cached.iter().map(|&(_, _, s)| s).sum();
        prop_assert_eq!(total, plan.cached_bytes);
    }

    /// Retrieval accounting: under any op sequence every requested object
    /// is classified exactly once, so `hit_objects + miss_objects ==
    /// requested_objects` — and both sides agree with an independent
    /// tally kept by the harness (hits from the plan's cached list,
    /// misses from the broker-side `record_miss_fetch` report).
    #[test]
    fn hits_plus_misses_cover_requests(
        ops in prop::collection::vec(arb_op(3, 6), 1..120),
        policy in prop::sample::select(vec![
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Exp,
            PolicyName::Ttl,
            PolicyName::Nc,
        ]),
    ) {
        let config = CacheConfig {
            budget: ByteSize::new(5_000),
            ttl_recompute_interval: SimDuration::from_secs(30),
            ..CacheConfig::default()
        };
        let mut mgr = CacheManager::new(policy, config);
        let n_caches = 3u64;
        for c in 0..n_caches {
            let bs = BackendSubId::new(c);
            mgr.create_cache(bs, Timestamp::ZERO);
            mgr.add_subscriber(bs, SubscriberId::new(1000 + c)).unwrap();
        }
        let mut produced: Vec<Vec<Timestamp>> = vec![Vec::new(); n_caches as usize];
        let mut next_id = 0u64;
        let mut next_ts = 1u64;
        let (mut hits, mut misses) = (0u64, 0u64);
        for op in &ops {
            let now = Timestamp::from_secs(next_ts);
            match *op {
                Op::Insert { cache, size } => {
                    let desc = NewObject {
                        id: ObjectId::new(next_id),
                        ts: now,
                        size: ByteSize::new(size),
                        fetch_latency: SimDuration::from_millis(500),
                    };
                    next_id += 1;
                    mgr.insert(BackendSubId::new(cache), desc, now).unwrap();
                    produced[cache as usize].push(now);
                }
                Op::Get { cache, from_sec, len_sec } => {
                    let bs = BackendSubId::new(cache);
                    let range = TimeRange::closed(
                        Timestamp::from_secs(from_sec),
                        Timestamp::from_secs(from_sec + len_sec),
                    );
                    let plan = mgr.plan_get(bs, range, now);
                    hits += plan.cached.len() as u64;
                    // The broker now fetches the missed sub-ranges from
                    // the cluster and reports what they held.
                    let fetched = produced[cache as usize]
                        .iter()
                        .filter(|&&ts| plan.missed.iter().any(|m| m.contains(ts)))
                        .count() as u64;
                    misses += fetched;
                    mgr.record_miss_fetch(bs, fetched, ByteSize::new(fetched * 64), now);
                }
                Op::Ack { cache, sub, up_to_sec } => {
                    let _ = mgr.ack_consume(
                        BackendSubId::new(cache),
                        SubscriberId::new(sub),
                        Timestamp::from_secs(up_to_sec),
                        now,
                    );
                }
                Op::AddSub { cache, sub } => {
                    mgr.add_subscriber(BackendSubId::new(cache), SubscriberId::new(sub))
                        .unwrap();
                }
                Op::RemoveSub { cache, sub } => {
                    let _ = mgr.remove_subscriber(
                        BackendSubId::new(cache),
                        SubscriberId::new(sub),
                        now,
                    );
                }
                Op::Maintain => {
                    mgr.maintain(now);
                }
            }
            next_ts += 1;
        }
        let m = mgr.metrics();
        prop_assert_eq!(m.hit_objects, hits);
        prop_assert_eq!(m.miss_objects, misses);
        prop_assert_eq!(m.hit_objects + m.miss_objects, m.requested_objects);
    }

    /// With evictions: replay the same stream against a small budget and
    /// check the partition again (missed ranges now non-trivial).
    #[test]
    fn get_plan_partitions_after_evictions(
        sizes in prop::collection::vec(1u64..1000, 1..40),
        from_sec in 0u64..50,
        len_sec in 0u64..50,
    ) {
        let total: u64 = sizes.iter().sum();
        let config = CacheConfig {
            budget: ByteSize::new((total / 3).max(1)),
            ..CacheConfig::default()
        };
        let mut mgr = CacheManager::new(PolicyName::Lscz, config);
        let bs = BackendSubId::new(0);
        mgr.create_cache(bs, Timestamp::ZERO);
        mgr.add_subscriber(bs, SubscriberId::new(1)).unwrap();

        let mut produced: Vec<(u64, Timestamp)> = Vec::new();
        let mut evicted: Vec<u64> = Vec::new();
        for (i, &size) in sizes.iter().enumerate() {
            let ts = Timestamp::from_secs(i as u64 + 1);
            let dropped = mgr.insert(bs, NewObject {
                id: ObjectId::new(i as u64),
                ts,
                size: ByteSize::new(size),
                fetch_latency: SimDuration::from_millis(1),
            }, ts).unwrap();
            evicted.extend(dropped.iter().map(|d| d.object.id.as_u64()));
            produced.push((i as u64, ts));
        }

        let now = Timestamp::from_secs(1000);
        let range = TimeRange::closed(
            Timestamp::from_secs(from_sec),
            Timestamp::from_secs(from_sec + len_sec),
        );
        let plan = mgr.plan_get(bs, range, now);

        for &(id, ts) in &produced {
            if !range.contains(ts) { continue; }
            let in_cached = plan.cached.iter().any(|&(oid, _, _)| oid.as_u64() == id);
            let in_missed = plan.missed.iter().any(|m| m.contains(ts));
            // Exactly one of cached/missed holds for every produced object.
            prop_assert!(in_cached || in_missed,
                "object {id} at {ts} lost (evicted={})", evicted.contains(&id));
            prop_assert!(!(in_cached && in_missed),
                "object {id} at {ts} double-covered");
            // Evicted objects must be in the missed range, resident ones cached.
            if evicted.contains(&id) {
                prop_assert!(in_missed);
            } else {
                prop_assert!(in_cached);
            }
        }
    }
}
