//! Std-only port of the `prop_cache` property suite (see
//! `tests/common/mod.rs` for why): seeded op sequences instead of
//! proptest strategies, fixed seed sweeps instead of shrinking.
//!
//! Properties covered:
//! * eviction policies never exceed the budget after any op, and the
//!   tracked aggregate always equals the sum over caches;
//! * `hit_objects + miss_objects == requested_objects`, with both
//!   sides agreeing with an independent harness tally;
//! * the time-size integral is monotone (time only moves forward).

mod common;

use bad_cache::{CacheConfig, CacheManager, PolicyName, ShardedCacheManager};
use bad_types::{ByteSize, SimDuration};
use common::{gen_ops, replay, replay_with, Driver};

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];
const OPS_PER_SEED: usize = 200;

fn config(budget: u64) -> CacheConfig {
    CacheConfig {
        budget: ByteSize::new(budget),
        ttl_recompute_interval: SimDuration::from_secs(30),
        ..CacheConfig::default()
    }
}

const EVICTION_POLICIES: [PolicyName; 5] = [
    PolicyName::Lru,
    PolicyName::Lsc,
    PolicyName::Lscz,
    PolicyName::Lsd,
    PolicyName::Exp,
];

#[test]
fn eviction_respects_budget_after_every_op() {
    for policy in EVICTION_POLICIES {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);
            let mut mgr = CacheManager::new(policy, config(10_000));
            replay_with(&mut mgr, &ops, 4, |mgr| {
                assert!(
                    Driver::total_bytes(mgr) <= Driver::budget(mgr),
                    "{policy:?} seed {seed}: budget exceeded"
                );
                assert_eq!(
                    mgr.caches_bytes_sum(),
                    Driver::total_bytes(mgr),
                    "{policy:?} seed {seed}: aggregate drifted from per-cache sum"
                );
            });
        }
    }
}

#[test]
fn sharded_eviction_respects_budget_after_every_op() {
    // The per-shard shares sum to B and each shard enforces its own, so
    // the aggregate bound holds op-by-op for the sharded tier too.
    for policy in EVICTION_POLICIES {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 8, 8);
            let mut mgr = ShardedCacheManager::new(policy, config(10_000), 4);
            replay_with(&mut mgr, &ops, 8, |mgr| {
                assert!(
                    Driver::total_bytes(mgr) <= Driver::budget(mgr),
                    "{policy:?} seed {seed}: budget exceeded across shards"
                );
                assert_eq!(mgr.caches_bytes_sum(), Driver::total_bytes(mgr));
            });
        }
    }
}

#[test]
fn hits_plus_misses_cover_requests() {
    for policy in PolicyName::SIMULATED {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 3, 6);
            let mut mgr = CacheManager::new(policy, config(5_000));
            let log = replay(&mut mgr, &ops, 3);
            let m = mgr.metrics();
            assert_eq!(m.hit_objects, log.hits, "{policy:?} seed {seed}");
            assert_eq!(m.miss_objects, log.misses, "{policy:?} seed {seed}");
            assert_eq!(
                m.hit_objects + m.miss_objects,
                m.requested_objects,
                "{policy:?} seed {seed}"
            );
        }
    }
}

#[test]
fn size_integral_is_monotone() {
    for policy in PolicyName::SIMULATED {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);
            let mut mgr = CacheManager::new(policy, config(10_000));
            let mut prev = 0u128;
            replay_with(&mut mgr, &ops, 4, |mgr| {
                let integral = mgr.metrics_snapshot().size_integral();
                assert!(
                    integral >= prev,
                    "{policy:?} seed {seed}: integral went backwards"
                );
                prev = integral;
            });
        }
    }
}
