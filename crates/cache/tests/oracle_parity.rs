//! The `shards = 1` parity oracle: a [`ShardedCacheManager`] with one
//! shard must be observationally identical to the monolithic
//! [`CacheManager`] under every policy — same `DroppedObject` stream in
//! the same order, same metrics, same telemetry event stream, same
//! rendered registry. This is what lets the deterministic simulator run
//! `shards = 1` for exact paper reproduction while the prototype scales
//! out.

mod common;

use std::sync::Arc;

use bad_cache::{CacheConfig, CacheManager, CacheTelemetry, PolicyName, ShardedCacheManager};
use bad_telemetry::{ProfileConfig, Profiler, Registry, RingBufferSink, SharedSink};
use bad_types::{ByteSize, SimDuration, Timestamp};
use common::{gen_ops, replay, replay_with, Driver};

const SEEDS: [u64; 4] = [7, 21, 42, 1009];
const OPS_PER_SEED: usize = 250;

fn config(budget: u64) -> CacheConfig {
    CacheConfig {
        budget: ByteSize::new(budget),
        ttl_recompute_interval: SimDuration::from_secs(30),
        ..CacheConfig::default()
    }
}

/// All policies under parity test: the six simulated ones plus the
/// no-cache baseline.
fn policies() -> impl Iterator<Item = PolicyName> {
    PolicyName::SIMULATED.into_iter().chain([PolicyName::Nc])
}

#[test]
fn single_shard_matches_monolith_dropped_streams_and_metrics() {
    for policy in policies() {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);

            let mut mono = CacheManager::new(policy, config(10_000));
            let mono_log = replay(&mut mono, &ops, 4);

            let mut sharded = ShardedCacheManager::new(policy, config(10_000), 1);
            let sharded_log = replay(&mut sharded, &ops, 4);

            assert_eq!(
                mono_log, sharded_log,
                "{policy:?} seed {seed}: replay logs diverged"
            );
            assert_eq!(
                mono.metrics().clone(),
                Driver::metrics_snapshot(&sharded),
                "{policy:?} seed {seed}: metrics diverged"
            );
            assert_eq!(Driver::total_bytes(&mono), Driver::total_bytes(&sharded));
            assert_eq!(mono.cache_count(), sharded.cache_count());
        }
    }
}

#[test]
fn single_shard_matches_monolith_telemetry() {
    for policy in policies() {
        let seed = 42;
        let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);

        let mono_registry = Registry::new();
        let mono_ring = Arc::new(RingBufferSink::new(100_000));
        let mut mono = CacheManager::new(policy, config(10_000));
        mono.set_telemetry(CacheTelemetry::new(
            &mono_registry,
            mono_ring.clone() as SharedSink,
        ));
        replay(&mut mono, &ops, 4);

        let sharded_registry = Registry::new();
        let sharded_ring = Arc::new(RingBufferSink::new(100_000));
        let mut sharded = ShardedCacheManager::new(policy, config(10_000), 1);
        sharded.set_telemetry(CacheTelemetry::new(
            &sharded_registry,
            sharded_ring.clone() as SharedSink,
        ));
        replay(&mut sharded, &ops, 4);

        assert_eq!(
            mono_ring.events(),
            sharded_ring.events(),
            "{policy:?}: telemetry event streams diverged"
        );
        assert_eq!(
            mono_registry.render(),
            sharded_registry.render(),
            "{policy:?}: rendered registries diverged"
        );
    }
}

/// Full stage-and-lock profiling is metadata-only: a profiled
/// single-shard manager must stay byte-identical to the unprofiled
/// monolith — same replay log, same metrics, same telemetry events,
/// same rendered cache registry. The profiler's own series register on
/// a separate registry precisely so the cache registries stay
/// byte-comparable here.
#[test]
fn single_shard_with_full_profiling_matches_monolith() {
    for policy in policies() {
        let seed = 1009;
        let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);

        let mono_registry = Registry::new();
        let mono_ring = Arc::new(RingBufferSink::new(100_000));
        let mut mono = CacheManager::new(policy, config(10_000));
        mono.set_telemetry(CacheTelemetry::new(
            &mono_registry,
            mono_ring.clone() as SharedSink,
        ));
        let mono_log = replay(&mut mono, &ops, 4);

        let profile_registry = Registry::new();
        let profiler = Profiler::new(&profile_registry, ProfileConfig { sample_every_n: 1 });
        let sharded_registry = Registry::new();
        let sharded_ring = Arc::new(RingBufferSink::new(100_000));
        let mut sharded = ShardedCacheManager::new(policy, config(10_000), 1);
        sharded.set_telemetry(CacheTelemetry::new(
            &sharded_registry,
            sharded_ring.clone() as SharedSink,
        ));
        sharded.set_profiler(&profiler);
        let sharded_log = replay(&mut sharded, &ops, 4);

        assert_eq!(
            mono_log, sharded_log,
            "{policy:?}: profiled replay log diverged"
        );
        assert_eq!(
            mono.metrics().clone(),
            Driver::metrics_snapshot(&sharded),
            "{policy:?}: profiled metrics diverged"
        );
        assert_eq!(
            mono_ring.events(),
            sharded_ring.events(),
            "{policy:?}: profiled telemetry event streams diverged"
        );
        assert_eq!(
            mono_registry.render(),
            sharded_registry.render(),
            "{policy:?}: profiled cache registries diverged"
        );

        // And the profiler really was live: it attributed lock
        // acquisitions to the single shard and folded stage samples.
        profiler.flush_thread();
        let sites = profiler.lock_sites();
        assert_eq!(sites.len(), 1, "{policy:?}: expected one lock site");
        assert!(
            sites[0].acquisitions() > 0,
            "{policy:?}: profiler saw no lock acquisitions"
        );
        assert!(
            profile_registry
                .render()
                .contains("bad_profile_stage_ns_count"),
            "{policy:?}: profiler stage series missing"
        );
    }
}

/// Hot-key sketches are metadata-only: a single-shard manager with
/// full sketch recording enabled must stay byte-identical to the
/// unsketched monolith — same replay log, same metrics, same telemetry
/// events, same rendered cache registry. The sketches live entirely
/// outside the caching decision path (their own per-shard recorder, no
/// registry series), so nothing they do may leak into parity.
#[test]
fn single_shard_with_sketches_matches_monolith() {
    use bad_telemetry::SketchConfig;

    for policy in policies() {
        let seed = 21;
        let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);

        let mono_registry = Registry::new();
        let mono_ring = Arc::new(RingBufferSink::new(100_000));
        let mut mono = CacheManager::new(policy, config(10_000));
        mono.set_telemetry(CacheTelemetry::new(
            &mono_registry,
            mono_ring.clone() as SharedSink,
        ));
        let mono_log = replay(&mut mono, &ops, 4);

        let sharded_registry = Registry::new();
        let sharded_ring = Arc::new(RingBufferSink::new(100_000));
        let mut sharded = ShardedCacheManager::new(policy, config(10_000), 1);
        sharded.set_telemetry(CacheTelemetry::new(
            &sharded_registry,
            sharded_ring.clone() as SharedSink,
        ));
        sharded.enable_sketches(SketchConfig::default());
        let mut sharded_log = replay(&mut sharded, &ops, 4);
        sharded_log.dropped.extend(sharded.quiesce());

        assert_eq!(
            mono_log, sharded_log,
            "{policy:?}: sketched replay log diverged"
        );
        assert_eq!(
            mono.metrics().clone(),
            Driver::metrics_snapshot(&sharded),
            "{policy:?}: sketched metrics diverged"
        );
        assert_eq!(
            mono_ring.events(),
            sharded_ring.events(),
            "{policy:?}: sketched telemetry event streams diverged"
        );
        assert_eq!(
            mono_registry.render(),
            sharded_registry.render(),
            "{policy:?}: sketched cache registries diverged"
        );

        // And the sketches really were live: the replay's requests
        // landed in the heavy-hitter axes.
        let snapshot = sharded.hot_snapshot().expect("sketches enabled");
        assert!(
            snapshot.totals().requests > 0,
            "{policy:?}: sketches saw no requests"
        );
    }
}

/// The lock-free read path oracle: a manager with
/// `use_lockfree_reads = true` (the default — optimistic seqlock GETs,
/// adaptive deferred acks) must be observationally byte-identical to
/// one with the flag off (every operation under the shard mutex, the
/// pre-read-path behaviour) on the same op tape — same per-call
/// dropped-object stream, same metrics, same retained bytes — for
/// every policy at both 1 and 4 shards, including a mid-tape budget
/// shrink and the tape's own `Maintain` ops.
#[test]
fn lockfree_reads_match_locked_all_policies_and_shards() {
    for policy in policies() {
        for shards in [1usize, 4] {
            for seed in SEEDS {
                let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);
                let locked_cfg = CacheConfig {
                    use_lockfree_reads: false,
                    ..config(10_000)
                };

                let run = |cfg: CacheConfig| {
                    let mut mgr = ShardedCacheManager::new(policy, cfg, shards);
                    let mut shrink = Vec::new();
                    let mut op_no = 0usize;
                    let mut log = replay_with(&mut mgr, &ops, 4, |m| {
                        op_no += 1;
                        if op_no == OPS_PER_SEED / 2 {
                            shrink.extend(m.set_budget(
                                ByteSize::new(4_000),
                                Timestamp::from_secs(op_no as u64),
                            ));
                        }
                    });
                    // Apply any still-enqueued read records and stashed
                    // deferred drops before comparing final state.
                    log.dropped.extend(mgr.quiesce());
                    (mgr, log, shrink)
                };
                let (locked, locked_log, locked_shrink) = run(locked_cfg);
                let (lockfree, lockfree_log, lockfree_shrink) = run(config(10_000));

                assert_eq!(
                    locked_log, lockfree_log,
                    "{policy:?} seed {seed} shards {shards}: replay logs diverged"
                );
                assert_eq!(
                    locked_shrink, lockfree_shrink,
                    "{policy:?} seed {seed} shards {shards}: budget-shrink drops diverged"
                );
                assert_eq!(
                    Driver::metrics_snapshot(&locked),
                    Driver::metrics_snapshot(&lockfree),
                    "{policy:?} seed {seed} shards {shards}: metrics diverged"
                );
                assert_eq!(Driver::total_bytes(&locked), Driver::total_bytes(&lockfree));
                assert_eq!(locked.cache_count(), lockfree.cache_count());
            }
        }
    }
}

/// Same oracle over the telemetry side channel at one shard: the
/// lock-free build's deferred hit records drain at the next lock
/// acquisition, which on a serial tape is always before the next op's
/// own events — so the event ring and the rendered registry must come
/// out byte-identical to the fully locked build.
#[test]
fn lockfree_single_shard_matches_locked_telemetry() {
    for policy in policies() {
        let ops = gen_ops(42, OPS_PER_SEED, 4, 8);

        let locked_registry = Registry::new();
        let locked_ring = Arc::new(RingBufferSink::new(100_000));
        let mut locked = ShardedCacheManager::new(
            policy,
            CacheConfig {
                use_lockfree_reads: false,
                ..config(10_000)
            },
            1,
        );
        locked.set_telemetry(CacheTelemetry::new(
            &locked_registry,
            locked_ring.clone() as SharedSink,
        ));
        replay(&mut locked, &ops, 4);

        let free_registry = Registry::new();
        let free_ring = Arc::new(RingBufferSink::new(100_000));
        let mut lockfree = ShardedCacheManager::new(policy, config(10_000), 1);
        lockfree.set_telemetry(CacheTelemetry::new(
            &free_registry,
            free_ring.clone() as SharedSink,
        ));
        replay(&mut lockfree, &ops, 4);
        // A trailing optimistic GET may leave its hit record enqueued;
        // drain it before reading the ring.
        let residue = lockfree.quiesce();
        assert!(
            residue.is_empty(),
            "{policy:?}: serial adaptive tape stashed drops: {residue:?}"
        );

        assert_eq!(
            locked_ring.events(),
            free_ring.events(),
            "{policy:?}: telemetry event streams diverged"
        );
        assert_eq!(
            locked_registry.render(),
            free_registry.render(),
            "{policy:?}: rendered registries diverged"
        );
    }
}

/// Forces every ack through the deferred mailbox (the contended-path
/// behaviour, made deterministic) and checks the drain/stash machinery
/// end to end: per-call results shift — a deferred ack returns no
/// drops, they surface prepended to a later drop-returning call — but
/// the *cumulative* dropped stream keeps the exact serial order, and
/// final metrics, telemetry and occupancy are byte-identical to the
/// locked build.
#[test]
fn force_deferred_acks_preserve_cumulative_streams() {
    for policy in policies() {
        for seed in SEEDS {
            let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);

            let locked_registry = Registry::new();
            let locked_ring = Arc::new(RingBufferSink::new(100_000));
            let mut locked = ShardedCacheManager::new(
                policy,
                CacheConfig {
                    use_lockfree_reads: false,
                    ..config(10_000)
                },
                1,
            );
            locked.set_telemetry(CacheTelemetry::new(
                &locked_registry,
                locked_ring.clone() as SharedSink,
            ));
            let locked_log = replay(&mut locked, &ops, 4);

            let free_registry = Registry::new();
            let free_ring = Arc::new(RingBufferSink::new(100_000));
            let mut lockfree = ShardedCacheManager::new(policy, config(10_000), 1);
            lockfree.set_telemetry(CacheTelemetry::new(
                &free_registry,
                free_ring.clone() as SharedSink,
            ));
            lockfree.set_force_defer_acks(true);
            let mut free_log = replay(&mut lockfree, &ops, 4);
            free_log.dropped.extend(lockfree.quiesce());

            assert_eq!(
                locked_log.dropped, free_log.dropped,
                "{policy:?} seed {seed}: cumulative dropped streams diverged"
            );
            assert_eq!(locked_log.hits, free_log.hits, "{policy:?} seed {seed}");
            assert_eq!(locked_log.misses, free_log.misses, "{policy:?} seed {seed}");
            assert_eq!(
                Driver::metrics_snapshot(&locked),
                Driver::metrics_snapshot(&lockfree),
                "{policy:?} seed {seed}: metrics diverged"
            );
            assert_eq!(Driver::total_bytes(&locked), Driver::total_bytes(&lockfree));
            assert_eq!(
                locked_ring.events(),
                free_ring.events(),
                "{policy:?} seed {seed}: telemetry event streams diverged"
            );
            assert_eq!(
                locked_registry.render(),
                free_registry.render(),
                "{policy:?} seed {seed}: rendered registries diverged"
            );
        }
    }
}

#[test]
fn multi_shard_preserves_aggregate_accounting() {
    // With an ample budget the *eviction* policies never drop, so a
    // 4-shard run must serve exactly the same hits and misses as the
    // monolith and retain the same bytes. The TTL-driven policies are
    // different by design: per-shard retuning solves `Σρ·T = share`
    // rather than `Σρ·T = B`, so expiry times (and hence occupancy)
    // legitimately diverge — for those, check conservation instead.
    for policy in PolicyName::SIMULATED {
        let seed = 7;
        let ops = gen_ops(seed, OPS_PER_SEED, 8, 8);

        let mut mono = CacheManager::new(policy, config(100_000_000));
        let mono_log = replay(&mut mono, &ops, 8);

        let mut sharded = ShardedCacheManager::new(policy, config(100_000_000), 4);
        let sharded_log = replay(&mut sharded, &ops, 8);

        // Every object in a requested range is either a hit or a
        // fetched miss, in both deployments.
        assert_eq!(
            mono_log.hits + mono_log.misses,
            sharded_log.hits + sharded_log.misses,
            "{policy:?}: hit/miss conservation diverged"
        );
        assert!(Driver::total_bytes(&sharded) <= Driver::budget(&sharded));

        if !matches!(policy, PolicyName::Ttl | PolicyName::Exp) {
            assert_eq!(
                mono_log.hits, sharded_log.hits,
                "{policy:?}: hits diverged with an ample budget"
            );
            assert_eq!(mono_log.misses, sharded_log.misses);
            assert_eq!(
                Driver::total_bytes(&mono),
                Driver::total_bytes(&sharded),
                "{policy:?}: retained bytes diverged with an ample budget"
            );
        }
    }
}

#[test]
fn forced_promotion_matches_fresh_manager_under_new_policy() {
    // Migration parity for the autopilot's in-place policy switch: a
    // manager constructed under `from` and promoted to `to` before any
    // traffic must be observationally *byte-identical* to a manager
    // constructed under `to` — same dropped-object stream, same
    // metrics, same telemetry event stream, same rendered registry and
    // the same shadow-ghost counters. Any residue the migration leaves
    // behind (a stale victim index, an unretargeted shadow evaluator,
    // perturbed counters) shows up here.
    use bad_cache::ShadowConfig;
    use bad_types::Timestamp;

    let pairs = [
        (PolicyName::Lru, PolicyName::Lsc),
        (PolicyName::Lsc, PolicyName::Lscz),
        (PolicyName::Exp, PolicyName::Lru),
        (PolicyName::Lru, PolicyName::Ttl),
        (PolicyName::Ttl, PolicyName::Lsd),
        (PolicyName::Lsc, PolicyName::Nc),
    ];
    let shadow = ShadowConfig {
        sample_every_n: 1,
        ..ShadowConfig::default()
    };
    for (from, to) in pairs {
        for use_index in [true, false] {
            for seed in SEEDS {
                let ops = gen_ops(seed, OPS_PER_SEED, 4, 8);
                let cfg = CacheConfig {
                    use_victim_index: use_index,
                    ..config(10_000)
                };

                let migrated_registry = Registry::new();
                let migrated_ring = Arc::new(RingBufferSink::new(100_000));
                let mut migrated = CacheManager::new(from, cfg);
                migrated.set_telemetry(CacheTelemetry::new(
                    &migrated_registry,
                    migrated_ring.clone() as SharedSink,
                ));
                migrated.enable_shadow(shadow, Timestamp::ZERO);
                assert!(migrated.switch_policy(to, Timestamp::ZERO));
                let migrated_log = replay(&mut migrated, &ops, 4);

                let fresh_registry = Registry::new();
                let fresh_ring = Arc::new(RingBufferSink::new(100_000));
                let mut fresh = CacheManager::new(to, cfg);
                fresh.set_telemetry(CacheTelemetry::new(
                    &fresh_registry,
                    fresh_ring.clone() as SharedSink,
                ));
                fresh.enable_shadow(shadow, Timestamp::ZERO);
                let fresh_log = replay(&mut fresh, &ops, 4);

                assert_eq!(
                    migrated_log, fresh_log,
                    "{from:?}->{to:?} seed {seed} index={use_index}: dropped streams diverged"
                );
                assert_eq!(
                    migrated.metrics().clone(),
                    fresh.metrics().clone(),
                    "{from:?}->{to:?} seed {seed} index={use_index}: metrics diverged"
                );
                assert_eq!(Driver::total_bytes(&migrated), Driver::total_bytes(&fresh));
                assert_eq!(migrated.policy_name(), to);
                assert_eq!(
                    migrated_ring.events(),
                    fresh_ring.events(),
                    "{from:?}->{to:?} seed {seed} index={use_index}: telemetry events diverged"
                );
                assert_eq!(
                    migrated_registry.render(),
                    fresh_registry.render(),
                    "{from:?}->{to:?} seed {seed} index={use_index}: registries diverged"
                );
                // Shadow parity: the retargeted evaluator reports the
                // same live policy and ghost fleet as the fresh one.
                let migrated_snap = migrated.shadow_snapshot().expect("shadow enabled");
                let fresh_snap = fresh.shadow_snapshot().expect("shadow enabled");
                assert_eq!(migrated_snap.live_policy, to);
                assert_eq!(
                    migrated_snap.to_json_with(migrated.metrics(), None),
                    fresh_snap.to_json_with(fresh.metrics(), None),
                    "{from:?}->{to:?} seed {seed} index={use_index}: shadow reports diverged"
                );
            }
        }
    }
}
