//! Shared std-only generative harness for the cache integration tests.
//!
//! `proptest` cannot be fetched in the offline build environments this
//! repo targets, so the property suites that matter (`gen_harness`,
//! `oracle_parity`, `stress_sharded`) drive the managers from this
//! hand-rolled seeded PRNG + operation-sequence generator instead. The
//! op model (variants, weights and value ranges) mirrors `prop_cache`'s
//! `arb_op` exactly, so the two suites explore the same state space —
//! `prop_cache` adds shrinking when the registry is reachable, this
//! harness keeps the properties running when it is not.

#![allow(dead_code)] // each integration-test crate uses a subset

use bad_cache::{
    CacheManager, CacheMetrics, DroppedObject, GetPlan, NewObject, ShardedCacheManager,
};
use bad_types::{
    BackendSubId, ByteSize, ObjectId, Result, SimDuration, SubscriberId, TimeRange, Timestamp,
};

/// A tiny xorshift64* PRNG: deterministic, seedable, no dependencies.
/// Quality is ample for op-sequence generation (this is not crypto).
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub fn new(seed: u64) -> Self {
        // xorshift has a single absorbing zero state; nudge away from it.
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, n)`. Modulo bias is negligible for the
    /// small ranges used here.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// A randomized operation against a cache manager — the same model as
/// `prop_cache::Op`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Insert {
        cache: u64,
        size: u64,
    },
    Get {
        cache: u64,
        from_sec: u64,
        len_sec: u64,
    },
    Ack {
        cache: u64,
        sub: u64,
        up_to_sec: u64,
    },
    AddSub {
        cache: u64,
        sub: u64,
    },
    RemoveSub {
        cache: u64,
        sub: u64,
    },
    Maintain,
}

/// Generates `len` ops over `caches` caches and `subs` subscriber ids
/// with `prop_cache`'s weights (Insert 4, Get 3, Ack 2, AddSub 1,
/// RemoveSub 1, Maintain 1) and value ranges.
pub fn gen_ops(seed: u64, len: usize, caches: u64, subs: u64) -> Vec<Op> {
    let mut rng = XorShift64::new(seed);
    (0..len)
        .map(|_| match rng.below(12) {
            0..=3 => Op::Insert {
                cache: rng.below(caches),
                size: rng.range(1, 5000),
            },
            4..=6 => Op::Get {
                cache: rng.below(caches),
                from_sec: rng.below(500),
                len_sec: rng.below(100),
            },
            7..=8 => Op::Ack {
                cache: rng.below(caches),
                sub: rng.below(subs),
                up_to_sec: rng.below(500),
            },
            9 => Op::AddSub {
                cache: rng.below(caches),
                sub: rng.below(subs),
            },
            10 => Op::RemoveSub {
                cache: rng.below(caches),
                sub: rng.below(subs),
            },
            _ => Op::Maintain,
        })
        .collect()
}

/// The common surface of [`CacheManager`] and [`ShardedCacheManager`]
/// the harness replays against. The sharded impl delegates its `&mut`
/// receivers to the `&self` API — the point of the oracle is that both
/// produce identical observable behaviour.
pub trait Driver {
    fn create_cache(&mut self, bs: BackendSubId, now: Timestamp);
    fn add_subscriber(&mut self, bs: BackendSubId, sub: SubscriberId) -> Result<()>;
    fn remove_subscriber(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>>;
    fn insert(
        &mut self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>>;
    fn plan_get(&mut self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan;
    fn ack_consume(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>>;
    fn record_miss_fetch(
        &mut self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    );
    fn maintain(&mut self, now: Timestamp) -> Vec<DroppedObject>;
    fn metrics_snapshot(&self) -> CacheMetrics;
    fn total_bytes(&self) -> ByteSize;
    fn budget(&self) -> ByteSize;
    /// Sum of per-cache sizes — must always equal `total_bytes()`.
    fn caches_bytes_sum(&self) -> ByteSize;
}

impl Driver for CacheManager {
    fn create_cache(&mut self, bs: BackendSubId, now: Timestamp) {
        CacheManager::create_cache(self, bs, now);
    }
    fn add_subscriber(&mut self, bs: BackendSubId, sub: SubscriberId) -> Result<()> {
        CacheManager::add_subscriber(self, bs, sub)
    }
    fn remove_subscriber(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        CacheManager::remove_subscriber(self, bs, sub, now)
    }
    fn insert(
        &mut self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        CacheManager::insert(self, bs, desc, now)
    }
    fn plan_get(&mut self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan {
        CacheManager::plan_get(self, bs, range, now)
    }
    fn ack_consume(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        CacheManager::ack_consume(self, bs, sub, up_to, now)
    }
    fn record_miss_fetch(
        &mut self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    ) {
        CacheManager::record_miss_fetch(self, bs, objects, bytes, now);
    }
    fn maintain(&mut self, now: Timestamp) -> Vec<DroppedObject> {
        CacheManager::maintain(self, now)
    }
    fn metrics_snapshot(&self) -> CacheMetrics {
        self.metrics().clone()
    }
    fn total_bytes(&self) -> ByteSize {
        CacheManager::total_bytes(self)
    }
    fn budget(&self) -> ByteSize {
        CacheManager::budget(self)
    }
    fn caches_bytes_sum(&self) -> ByteSize {
        self.iter_caches().map(|c| c.total_bytes()).sum()
    }
}

impl Driver for ShardedCacheManager {
    fn create_cache(&mut self, bs: BackendSubId, now: Timestamp) {
        ShardedCacheManager::create_cache(self, bs, now);
    }
    fn add_subscriber(&mut self, bs: BackendSubId, sub: SubscriberId) -> Result<()> {
        ShardedCacheManager::add_subscriber(self, bs, sub)
    }
    fn remove_subscriber(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        ShardedCacheManager::remove_subscriber(self, bs, sub, now)
    }
    fn insert(
        &mut self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        ShardedCacheManager::insert(self, bs, desc, now)
    }
    fn plan_get(&mut self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan {
        ShardedCacheManager::plan_get(self, bs, range, now)
    }
    fn ack_consume(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        ShardedCacheManager::ack_consume(self, bs, sub, up_to, now)
    }
    fn record_miss_fetch(
        &mut self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    ) {
        ShardedCacheManager::record_miss_fetch(self, bs, objects, bytes, now);
    }
    fn maintain(&mut self, now: Timestamp) -> Vec<DroppedObject> {
        ShardedCacheManager::maintain(self, now)
    }
    fn metrics_snapshot(&self) -> CacheMetrics {
        self.metrics()
    }
    fn total_bytes(&self) -> ByteSize {
        ShardedCacheManager::total_bytes(self)
    }
    fn budget(&self) -> ByteSize {
        ShardedCacheManager::budget(self)
    }
    fn caches_bytes_sum(&self) -> ByteSize {
        let mut sum = ByteSize::ZERO;
        self.for_each_cache(|c| sum += c.total_bytes());
        sum
    }
}

/// What a replay observed, for cross-manager comparison and for
/// checking metric accounting against an independent tally.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Replay {
    /// Every dropped object in manager-reported order.
    pub dropped: Vec<DroppedObject>,
    /// Objects served from cache (sum of plan `cached` lengths).
    pub hits: u64,
    /// Objects re-fetched from the cluster for missed sub-ranges, as
    /// reported back via `record_miss_fetch`.
    pub misses: u64,
}

/// Sets up `n_caches` caches (each with a permanent subscriber
/// `1000 + c`, mirroring `prop_cache::run_ops`) and replays `ops`,
/// invoking `after_op` with the driver after every op.
pub fn replay_with<D: Driver>(
    mgr: &mut D,
    ops: &[Op],
    n_caches: u64,
    mut after_op: impl FnMut(&mut D),
) -> Replay {
    for c in 0..n_caches {
        let bs = BackendSubId::new(c);
        mgr.create_cache(bs, Timestamp::ZERO);
        mgr.add_subscriber(bs, SubscriberId::new(1000 + c))
            .expect("cache just created");
    }
    let mut log = Replay::default();
    let mut produced: Vec<Vec<Timestamp>> = vec![Vec::new(); n_caches as usize];
    let mut next_id = 0u64;
    for (next_ts, op) in (1u64..).zip(ops.iter()) {
        let now = Timestamp::from_secs(next_ts);
        match *op {
            Op::Insert { cache, size } => {
                let desc = NewObject {
                    id: ObjectId::new(next_id),
                    ts: now,
                    size: ByteSize::new(size),
                    fetch_latency: SimDuration::from_millis(500),
                };
                next_id += 1;
                let dropped = mgr
                    .insert(BackendSubId::new(cache), desc, now)
                    .expect("cache exists");
                log.dropped.extend(dropped);
                produced[cache as usize].push(now);
            }
            Op::Get {
                cache,
                from_sec,
                len_sec,
            } => {
                let bs = BackendSubId::new(cache);
                let range = TimeRange::closed(
                    Timestamp::from_secs(from_sec),
                    Timestamp::from_secs(from_sec + len_sec),
                );
                let plan = mgr.plan_get(bs, range, now);
                log.hits += plan.cached.len() as u64;
                // The broker fetches the missed sub-ranges from the
                // cluster and reports back what they held.
                let fetched = produced[cache as usize]
                    .iter()
                    .filter(|&&ts| plan.missed.iter().any(|m| m.contains(ts)))
                    .count() as u64;
                log.misses += fetched;
                mgr.record_miss_fetch(bs, fetched, ByteSize::new(fetched * 64), now);
            }
            Op::Ack {
                cache,
                sub,
                up_to_sec,
            } => {
                if let Ok(dropped) = mgr.ack_consume(
                    BackendSubId::new(cache),
                    SubscriberId::new(sub),
                    Timestamp::from_secs(up_to_sec),
                    now,
                ) {
                    log.dropped.extend(dropped);
                }
            }
            Op::AddSub { cache, sub } => {
                mgr.add_subscriber(BackendSubId::new(cache), SubscriberId::new(sub))
                    .expect("cache exists");
            }
            Op::RemoveSub { cache, sub } => {
                if let Ok(dropped) =
                    mgr.remove_subscriber(BackendSubId::new(cache), SubscriberId::new(sub), now)
                {
                    log.dropped.extend(dropped);
                }
            }
            Op::Maintain => {
                log.dropped.extend(mgr.maintain(now));
            }
        }
        after_op(mgr);
    }
    log
}

/// [`replay_with`] without a per-op hook.
pub fn replay<D: Driver>(mgr: &mut D, ops: &[Op], n_caches: u64) -> Replay {
    replay_with(mgr, ops, n_caches, |_| {})
}
