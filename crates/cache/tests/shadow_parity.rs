//! Shadow-evaluator invariants at the cache level: the ghost of the
//! live policy must mirror the live cache byte-for-byte, and the
//! `bad_cache_shadow_*` series must render as well-formed, label-escaped
//! Prometheus text.

use bad_cache::{
    CacheConfig, CacheManager, NewObject, PolicyName, ShadowConfig, ShardedCacheManager,
};
use bad_telemetry::Registry;
use bad_types::{
    BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, TimeRange, Timestamp,
};

const CACHES: u64 = 12;

struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1),
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Drives a deterministic insert/get/miss-report/ack workload. Misses
/// are reported from a ground-truth log of everything ever produced,
/// exactly as the broker reports what the cluster returned for the
/// plan's missed ranges.
fn drive(mgr: &ShardedCacheManager, seed: u64, ops: u64) {
    let mut rng = XorShift64::new(seed);
    let mut produced: Vec<Vec<(Timestamp, u64)>> = vec![Vec::new(); CACHES as usize];
    for c in 0..CACHES {
        let bs = BackendSubId::new(c);
        mgr.create_cache(bs, Timestamp::ZERO);
        for s in 0..=(c % 3) {
            mgr.add_subscriber(bs, SubscriberId::new(100 * c + s))
                .expect("cache just created");
        }
    }
    for i in 0..ops {
        let now = Timestamp::from_secs(i + 1);
        let c = rng.below(CACHES);
        let bs = BackendSubId::new(c);
        match rng.below(10) {
            0..=3 => {
                let size = 500 + rng.below(4500);
                mgr.insert(
                    bs,
                    NewObject {
                        id: ObjectId::new(i),
                        ts: now,
                        size: ByteSize::new(size),
                        fetch_latency: SimDuration::from_millis(200),
                    },
                    now,
                )
                .expect("cache exists");
                produced[c as usize].push((now, size));
            }
            4..=7 => {
                let from = Timestamp::from_secs(rng.below(i + 1));
                let range = TimeRange::closed(from, now);
                let plan = mgr.plan_get(bs, range, now);
                let (mut objects, mut bytes) = (0u64, 0u64);
                for &(ts, size) in &produced[c as usize] {
                    if plan.missed.iter().any(|r| r.contains(ts)) {
                        objects += 1;
                        bytes += size;
                    }
                }
                if objects > 0 {
                    mgr.record_miss_fetch(bs, objects, ByteSize::new(bytes), now);
                }
            }
            8 => {
                let _ = mgr.ack_consume(
                    bs,
                    SubscriberId::new(100 * c),
                    Timestamp::from_secs(rng.below(i + 1)),
                    now,
                );
            }
            _ => {
                mgr.maintain(now);
            }
        }
    }
}

/// Ghost(live) must report exactly the live cache's counters and zero
/// regret in both directions, for monolith-equivalent and genuinely
/// sharded deployments alike.
#[test]
fn ghost_of_live_policy_mirrors_live_counters_exactly() {
    for (policy, shards) in [
        (PolicyName::Lru, 1),
        (PolicyName::Lru, 4),
        (PolicyName::Lsc, 1),
        (PolicyName::Lsc, 4),
    ] {
        let mgr = ShardedCacheManager::new(
            policy,
            CacheConfig {
                budget: ByteSize::new(30_000),
                ..CacheConfig::default()
            },
            shards,
        );
        mgr.enable_shadow(
            ShadowConfig {
                sample_every_n: 1,
                audit_capacity: 32,
            },
            Timestamp::ZERO,
        );
        drive(&mgr, 0xBAD5EED ^ shards as u64, 3000);

        let live = mgr.metrics();
        let snapshot = mgr.shadow_snapshot().expect("shadow enabled");
        let ghost = snapshot.ghost(policy).expect("live policy has a ghost");
        assert!(live.hit_objects > 0, "workload produced no hits");
        assert!(live.miss_objects > 0, "workload produced no misses");
        assert_eq!(
            ghost.counters.hit_objects, live.hit_objects,
            "{policy}/{shards} shards: hit objects diverged"
        );
        assert_eq!(ghost.counters.hit_bytes, live.hit_bytes.as_u64());
        assert_eq!(ghost.counters.miss_objects, live.miss_objects);
        assert_eq!(ghost.counters.miss_bytes, live.miss_bytes.as_u64());
        assert_eq!(
            ghost.counters.regret_live_hit_ghost_miss, 0,
            "{policy}/{shards} shards: live-hit/ghost-miss regret"
        );
        assert_eq!(
            ghost.counters.regret_ghost_hit_live_miss, 0,
            "{policy}/{shards} shards: ghost-hit/live-miss regret"
        );
    }
}

/// A mid-run budget shrink rebalances every ghost's share; parity with
/// the live cache must survive it (this is the only path where the
/// per-insert ghost budget sweep actually has work to do).
#[test]
fn parity_survives_a_mid_run_budget_change() {
    let mut mgr = CacheManager::new(
        PolicyName::Lru,
        CacheConfig {
            budget: ByteSize::new(40_000),
            ..CacheConfig::default()
        },
    );
    mgr.enable_shadow(
        ShadowConfig {
            sample_every_n: 1,
            audit_capacity: 8,
        },
        Timestamp::ZERO,
    );
    let bs = BackendSubId::new(1);
    mgr.create_cache(bs, Timestamp::ZERO);
    mgr.add_subscriber(bs, SubscriberId::new(7)).unwrap();
    for i in 0..60u64 {
        let now = Timestamp::from_secs(i + 1);
        mgr.insert(
            bs,
            NewObject {
                id: ObjectId::new(i),
                ts: now,
                size: ByteSize::new(1000),
                fetch_latency: SimDuration::from_millis(200),
            },
            now,
        )
        .unwrap();
        if i == 30 {
            mgr.set_budget(ByteSize::new(8_000));
            mgr.enforce_budget(now);
        }
        let plan = mgr.plan_get(bs, TimeRange::closed(Timestamp::ZERO, now), now);
        let missed = (i + 1) - plan.cached.len() as u64;
        if missed > 0 {
            mgr.record_miss_fetch(bs, missed, ByteSize::new(missed * 1000), now);
        }
    }
    let live = mgr.metrics().clone();
    let snapshot = mgr.shadow_snapshot().expect("shadow enabled");
    let ghost = snapshot.ghost(PolicyName::Lru).expect("LRU ghost");
    assert!(live.miss_objects > 0, "budget shrink must force misses");
    assert_eq!(ghost.counters.hit_objects, live.hit_objects);
    assert_eq!(ghost.counters.miss_objects, live.miss_objects);
    assert_eq!(ghost.counters.regret_live_hit_ghost_miss, 0);
    assert_eq!(ghost.counters.regret_ghost_hit_live_miss, 0);
}

/// Every ghost policy publishes `{policy="..."}`-labeled series under
/// one `# TYPE` header per family, and the rendered totals agree with
/// the snapshot the `/policies` endpoint serves.
#[test]
fn shadow_series_render_with_policy_labels() {
    let registry = Registry::new();
    let mgr = ShardedCacheManager::new(
        PolicyName::Lru,
        CacheConfig {
            budget: ByteSize::new(30_000),
            ..CacheConfig::default()
        },
        4,
    );
    mgr.enable_shadow(
        ShadowConfig {
            sample_every_n: 1,
            audit_capacity: 32,
        },
        Timestamp::ZERO,
    );
    mgr.set_shadow_telemetry(&registry);
    drive(&mgr, 77, 3000);

    let text = registry.render();
    for family in [
        "bad_cache_shadow_hit_objects_total",
        "bad_cache_shadow_hit_bytes_total",
        "bad_cache_shadow_miss_objects_total",
        "bad_cache_shadow_miss_bytes_total",
        "bad_cache_shadow_regret_live_hit_ghost_miss_total",
        "bad_cache_shadow_regret_ghost_hit_live_miss_total",
    ] {
        assert_eq!(
            text.matches(&format!("# TYPE {family} counter")).count(),
            1,
            "family {family} must render exactly one TYPE header"
        );
        for policy in PolicyName::ALL {
            assert!(
                text.contains(&format!("{family}{{policy=\"{policy}\"}}")),
                "family {family} lacks the {policy} series"
            );
        }
    }
    // The victim-score histogram renders as a labeled summary, and the
    // sampling counters are unlabeled.
    assert!(text.contains("# TYPE bad_cache_shadow_victim_score_milli summary"));
    assert!(text.contains("bad_cache_shadow_victim_score_milli{policy=\"LRU\",quantile=\"0.5\"}"));
    assert!(text.contains("bad_cache_shadow_sampled_accesses_total "));
    assert!(text.contains("bad_cache_shadow_skipped_accesses_total "));

    // Rendered counters and the snapshot view are two reads of the same
    // state.
    let snapshot = mgr.shadow_snapshot().expect("shadow enabled");
    for ghost in &snapshot.ghosts {
        let needle = format!(
            "bad_cache_shadow_hit_objects_total{{policy=\"{}\"}} {}\n",
            ghost.policy, ghost.counters.hit_objects
        );
        assert!(
            text.contains(&needle),
            "rendered hit counter for {} disagrees with the snapshot",
            ghost.policy
        );
    }
}

/// The escaping path the shadow series rely on must keep the scrape
/// text line-oriented even for hostile label values (policy names are
/// tame today; the invariant must not depend on that staying true).
#[test]
fn hostile_policy_labels_stay_line_oriented_in_shadow_families() {
    let hostile = "LSC\"z\\phi\nrogue";
    let registry = Registry::new();
    registry
        .counter_with("bad_cache_shadow_hit_objects_total", &[("policy", hostile)])
        .add(5);
    registry
        .counter_with("bad_cache_shadow_hit_objects_total", &[("policy", "LRU")])
        .add(2);
    let text = registry.render();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        3,
        "raw newline leaked into the scrape text: {text:?}"
    );
    assert_eq!(
        lines[0],
        "# TYPE bad_cache_shadow_hit_objects_total counter"
    );
    let hostile_line = lines
        .iter()
        .find(|l| l.ends_with(" 5"))
        .expect("hostile series rendered");
    assert!(hostile_line.contains("policy=\"LSC\\\"z\\\\phi\\nrogue\""));
    assert!(text.contains("bad_cache_shadow_hit_objects_total{policy=\"LRU\"} 2\n"));
}
