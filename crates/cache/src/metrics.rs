//! Cache-side measurement of every quantity the paper's evaluation plots.
//!
//! * **hit ratio** — objects served from cache / objects requested,
//! * **hit byte / miss byte** — bytes served from cache vs bytes fetched
//!   from the cluster due to misses,
//! * **fetch** — total bytes pulled from the cluster (`Vol` + miss bytes),
//! * **holding time** — how long objects stay cached before being dropped,
//! * **time-averaged and maximum cache size** (Fig. 5a), where the time
//!   average weights each size by how long the cache stayed at that size.

use std::fmt;

use bad_types::{ByteSize, SimDuration, Timestamp};

/// Why an object left the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropKind {
    /// Every attached subscriber retrieved it.
    Consumed,
    /// Evicted by the policy under budget pressure.
    Evicted,
    /// Its TTL expired.
    Expired,
    /// Its subscription was torn down.
    Unsubscribed,
}

impl DropKind {
    /// The stable lowercase label of this drop cause. The telemetry
    /// event kinds are derived from it (`cache.<label>`), so traces,
    /// logs and `Display` all agree on one spelling.
    pub fn label(self) -> &'static str {
        match self {
            DropKind::Consumed => "consume",
            DropKind::Evicted => "evict",
            DropKind::Expired => "expire",
            DropKind::Unsubscribed => "unsubscribe",
        }
    }
}

impl fmt::Display for DropKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Aggregate metrics for one broker's cache manager.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CacheMetrics {
    // --- request/hit accounting -----------------------------------------
    /// Objects requested by subscribers.
    pub requested_objects: u64,
    /// Objects served from the cache.
    pub hit_objects: u64,
    /// Objects fetched from the cluster on misses.
    pub miss_objects: u64,
    /// Bytes served from the cache.
    pub hit_bytes: ByteSize,
    /// Bytes fetched from the cluster due to misses.
    pub miss_bytes: ByteSize,
    /// Bytes pulled from the cluster to populate caches (the paper's
    /// `Vol` component of *fetch*).
    pub populate_bytes: ByteSize,

    // --- occupancy -------------------------------------------------------
    /// Objects inserted.
    pub inserted_objects: u64,
    /// Bytes inserted.
    pub inserted_bytes: ByteSize,
    /// Objects dropped, by cause.
    pub consumed_objects: u64,
    /// Objects evicted by the policy.
    pub evicted_objects: u64,
    /// Objects expired by TTL.
    pub expired_objects: u64,
    /// Objects dropped by unsubscription.
    pub unsubscribed_objects: u64,

    // --- holding times ----------------------------------------------------
    holding_total: SimDuration,
    holding_count: u64,

    // --- size over time ---------------------------------------------------
    /// `∫ size dt` in byte·microseconds.
    size_integral: u128,
    last_size_change: Timestamp,
    current_size: ByteSize,
    /// Construction anchor for the size integral, in microseconds.
    start_micros: u64,
    /// Largest aggregate size ever observed.
    pub max_bytes: ByteSize,
}

impl CacheMetrics {
    /// Creates zeroed metrics anchored at `start` for the size integral.
    pub fn new(start: Timestamp) -> Self {
        Self {
            last_size_change: start,
            start_micros: start.as_micros(),
            ..Self::default()
        }
    }

    /// Records objects served from cache during a retrieval.
    pub fn record_hits(&mut self, objects: u64, bytes: ByteSize) {
        self.requested_objects += objects;
        self.hit_objects += objects;
        self.hit_bytes += bytes;
    }

    /// Records objects that had to be fetched from the cluster.
    pub fn record_misses(&mut self, objects: u64, bytes: ByteSize) {
        self.requested_objects += objects;
        self.miss_objects += objects;
        self.miss_bytes += bytes;
    }

    /// Records bytes pulled from the cluster to populate a cache.
    pub fn record_populate(&mut self, bytes: ByteSize) {
        self.populate_bytes += bytes;
    }

    /// Records an insertion and the new aggregate size.
    pub fn record_insert(&mut self, bytes: ByteSize, total: ByteSize, now: Timestamp) {
        self.inserted_objects += 1;
        self.inserted_bytes += bytes;
        self.record_size(total, now);
    }

    /// Records a drop with its cause and residence time.
    pub fn record_drop(
        &mut self,
        kind: DropKind,
        held_for: SimDuration,
        total: ByteSize,
        now: Timestamp,
    ) {
        match kind {
            DropKind::Consumed => self.consumed_objects += 1,
            DropKind::Evicted => self.evicted_objects += 1,
            DropKind::Expired => self.expired_objects += 1,
            DropKind::Unsubscribed => self.unsubscribed_objects += 1,
        }
        self.holding_total += held_for;
        self.holding_count += 1;
        self.record_size(total, now);
    }

    /// Updates the time-weighted size integral with a new aggregate size.
    ///
    /// The maximum is *not* updated here: operations like `PUT` overshoot
    /// transiently (append, then evict back under budget), and the
    /// paper's "maximum cache size" is the largest *settled* size. Call
    /// [`CacheMetrics::observe_peak`] once an operation completes.
    ///
    /// `now` values are allowed to arrive out of order (a failover
    /// replays another broker's drops, threads race on a shared clock):
    /// a `now` earlier than the latest one seen contributes zero
    /// elapsed time instead of rewinding, so the size integral is
    /// monotonically non-decreasing and the internal clock never moves
    /// backwards.
    pub fn record_size(&mut self, total: ByteSize, now: Timestamp) {
        // `Timestamp::since` saturates, so an out-of-order `now` yields
        // dt == 0 rather than a negative (wrapping) interval.
        let dt = now.since(self.last_size_change);
        self.size_integral += self.current_size.as_u64() as u128 * dt.as_micros() as u128;
        self.last_size_change = self.last_size_change.max(now);
        self.current_size = total;
    }

    /// Records a settled aggregate size for the maximum-size metric.
    pub fn observe_peak(&mut self, total: ByteSize) {
        self.max_bytes = self.max_bytes.max(total);
    }

    /// Folds another manager's metrics into this one — the shard
    /// aggregation of [`crate::ShardedCacheManager`].
    ///
    /// Counters, byte totals, holding times and size integrals add; the
    /// integral anchor becomes the earliest of the two and the internal
    /// clock the latest. `max_bytes` becomes the *sum* of the per-shard
    /// peaks: the shards hit their peaks at different instants, so the
    /// sum is an upper bound on the true aggregate peak — and since the
    /// per-shard budgets sum to the global budget, the reported maximum
    /// still respects the `max ≤ B` invariant for eviction policies.
    pub fn merge(&mut self, other: &CacheMetrics) {
        self.requested_objects += other.requested_objects;
        self.hit_objects += other.hit_objects;
        self.miss_objects += other.miss_objects;
        self.hit_bytes += other.hit_bytes;
        self.miss_bytes += other.miss_bytes;
        self.populate_bytes += other.populate_bytes;
        self.inserted_objects += other.inserted_objects;
        self.inserted_bytes += other.inserted_bytes;
        self.consumed_objects += other.consumed_objects;
        self.evicted_objects += other.evicted_objects;
        self.expired_objects += other.expired_objects;
        self.unsubscribed_objects += other.unsubscribed_objects;
        self.holding_total += other.holding_total;
        self.holding_count += other.holding_count;
        self.size_integral += other.size_integral;
        self.current_size += other.current_size;
        self.last_size_change = self.last_size_change.max(other.last_size_change);
        self.start_micros = self.start_micros.min(other.start_micros);
        self.max_bytes += other.max_bytes;
    }

    /// The raw time-weighted size integral `∫ size dt` accumulated so
    /// far, in byte·microseconds. Monotonically non-decreasing (see
    /// [`CacheMetrics::record_size`]); exposed so generative tests can
    /// assert that invariant across arbitrary operation sequences.
    pub fn size_integral(&self) -> u128 {
        self.size_integral
    }

    /// Fraction of requested objects served from the cache, in `[0, 1]`.
    /// Returns `None` before any request.
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.requested_objects == 0 {
            None
        } else {
            Some(self.hit_objects as f64 / self.requested_objects as f64)
        }
    }

    /// Total bytes pulled from the data cluster: population + misses.
    pub fn fetched_bytes(&self) -> ByteSize {
        self.populate_bytes + self.miss_bytes
    }

    /// Mean residence time of dropped objects.
    pub fn mean_holding_time(&self) -> Option<SimDuration> {
        if self.holding_count == 0 {
            None
        } else {
            Some(self.holding_total / self.holding_count)
        }
    }

    /// Time-averaged aggregate cache size from the anchor to `end`.
    pub fn time_averaged_bytes(&self, end: Timestamp) -> ByteSize {
        let dt = end.since(self.last_size_change);
        let integral =
            self.size_integral + self.current_size.as_u64() as u128 * dt.as_micros() as u128;
        let span = self.size_integral_span(end);
        if span == 0 {
            return self.current_size;
        }
        ByteSize::new((integral / span as u128) as u64)
    }

    fn size_integral_span(&self, end: Timestamp) -> u64 {
        end.as_micros().saturating_sub(self.start_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn hit_ratio_counts_objects() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        assert_eq!(m.hit_ratio(), None);
        m.record_hits(3, ByteSize::new(300));
        m.record_misses(1, ByteSize::new(100));
        assert_eq!(m.hit_ratio(), Some(0.75));
        assert_eq!(m.hit_bytes, ByteSize::new(300));
        assert_eq!(m.miss_bytes, ByteSize::new(100));
    }

    #[test]
    fn fetched_is_populate_plus_miss() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        m.record_populate(ByteSize::new(1000));
        m.record_misses(1, ByteSize::new(50));
        assert_eq!(m.fetched_bytes(), ByteSize::new(1050));
    }

    #[test]
    fn holding_time_averages_drops() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        m.record_drop(
            DropKind::Evicted,
            SimDuration::from_secs(10),
            ByteSize::ZERO,
            t(1),
        );
        m.record_drop(
            DropKind::Consumed,
            SimDuration::from_secs(20),
            ByteSize::ZERO,
            t(2),
        );
        assert_eq!(m.mean_holding_time(), Some(SimDuration::from_secs(15)));
        assert_eq!(m.evicted_objects, 1);
        assert_eq!(m.consumed_objects, 1);
    }

    #[test]
    fn time_average_weights_by_duration() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        // Size 100 during [0, 10), size 300 during [10, 20).
        m.record_size(ByteSize::new(100), t(0));
        m.record_size(ByteSize::new(300), t(10));
        let avg = m.time_averaged_bytes(t(20));
        assert_eq!(avg, ByteSize::new(200));
        // Max tracks settled sizes only, via observe_peak.
        assert_eq!(m.max_bytes, ByteSize::ZERO);
        m.observe_peak(ByteSize::new(300));
        assert_eq!(m.max_bytes, ByteSize::new(300));
    }

    #[test]
    fn time_average_with_no_span_is_current() {
        let m = CacheMetrics::new(Timestamp::ZERO);
        assert_eq!(m.time_averaged_bytes(Timestamp::ZERO), ByteSize::ZERO);
    }

    #[test]
    fn out_of_order_sizes_never_rewind_the_integral() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        m.record_size(ByteSize::new(100), t(10));
        let after_forward = m.time_averaged_bytes(t(10));
        // A stale timestamp must contribute zero elapsed time, not a
        // negative one, and must not move the internal clock backwards.
        m.record_size(ByteSize::new(500), t(5));
        assert_eq!(m.last_size_change, t(10));
        // Size 0 over [0,10), then 500 over [10,20) -> mean 250.
        assert_eq!(m.time_averaged_bytes(t(20)), ByteSize::new(250));
        assert!(m.time_averaged_bytes(t(10)) >= after_forward);
    }

    #[test]
    fn merge_sums_counters_and_keeps_earliest_anchor() {
        let mut a = CacheMetrics::new(Timestamp::ZERO);
        a.record_hits(3, ByteSize::new(300));
        a.record_insert(ByteSize::new(100), ByteSize::new(100), t(5));
        a.observe_peak(ByteSize::new(100));
        let mut b = CacheMetrics::new(Timestamp::ZERO);
        b.record_misses(2, ByteSize::new(200));
        b.record_insert(ByteSize::new(50), ByteSize::new(50), t(10));
        b.record_drop(
            DropKind::Evicted,
            SimDuration::from_secs(4),
            ByteSize::ZERO,
            t(12),
        );
        b.observe_peak(ByteSize::new(50));

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.requested_objects, 5);
        assert_eq!(merged.hit_objects, 3);
        assert_eq!(merged.miss_objects, 2);
        assert_eq!(merged.inserted_objects, 2);
        assert_eq!(merged.inserted_bytes, ByteSize::new(150));
        assert_eq!(merged.evicted_objects, 1);
        assert_eq!(merged.max_bytes, ByteSize::new(150));
        assert_eq!(merged.last_size_change, t(12));
        assert_eq!(
            merged.size_integral(),
            a.size_integral() + b.size_integral()
        );
        assert_eq!(merged.mean_holding_time(), Some(SimDuration::from_secs(4)));
    }

    #[test]
    fn merge_into_fresh_metrics_is_identity() {
        let mut m = CacheMetrics::new(Timestamp::ZERO);
        m.record_hits(1, ByteSize::new(10));
        m.record_insert(ByteSize::new(20), ByteSize::new(20), t(3));
        m.observe_peak(ByteSize::new(20));
        let mut folded = CacheMetrics::new(Timestamp::ZERO);
        folded.merge(&m);
        assert_eq!(folded, m);
    }

    #[test]
    fn drop_kind_display_matches_label() {
        for (kind, label) in [
            (DropKind::Consumed, "consume"),
            (DropKind::Evicted, "evict"),
            (DropKind::Expired, "expire"),
            (DropKind::Unsubscribed, "unsubscribe"),
        ] {
            assert_eq!(kind.label(), label);
            assert_eq!(kind.to_string(), label);
        }
    }
}
