//! TTL computation (Section IV-B).
//!
//! The broker periodically assigns each cache `i` a TTL
//!
//! ```text
//! T_i = n_i · B / Σ_j n_j · ρ_j          (eq. 7)
//! ```
//!
//! where `n_i` is the number of attached subscribers, `ρ_i = (λ_i − η_i)⁺`
//! the measured net growth rate, and `B` the aggregate cache budget. The
//! weights are proportional to subscriber counts (`ω_i = n_i / Σ n_j`),
//! and by construction `Σ ρ_i · T_i = B` (eq. 5) — so the *expected*
//! total cache size matches the budget, though the instantaneous size may
//! exceed it.

use bad_types::{ByteSize, SimDuration, Timestamp};

use crate::result_cache::ResultCache;

/// Computes per-cache TTLs from measured rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TtlComputer {
    /// Aggregate cache budget `B`.
    pub budget: ByteSize,
    /// How often the broker recomputes TTLs (the paper suggests every
    /// few minutes).
    pub recompute_interval: SimDuration,
    /// TTL assigned when no cache is growing (`Σ n_j ρ_j = 0`) — with no
    /// pressure, objects may live this long by default.
    pub idle_ttl: SimDuration,
    /// Lower clamp so a burst cannot drive TTLs to zero.
    pub min_ttl: SimDuration,
}

impl TtlComputer {
    /// Creates a computer with the paper-style defaults: recompute every
    /// 5 minutes, a 1 h idle TTL and a 1 s floor.
    pub fn new(budget: ByteSize) -> Self {
        Self {
            budget,
            recompute_interval: SimDuration::from_mins(5),
            idle_ttl: SimDuration::from_hours(1),
            min_ttl: SimDuration::from_secs(1),
        }
    }

    /// Computes and assigns `T_i` for every cache per eq. (7).
    ///
    /// Returns the denominator `Σ_j n_j ρ_j` (bytes/s) that was used; a
    /// zero denominator means every cache received [`TtlComputer::idle_ttl`].
    pub fn recompute<'a, I>(&self, caches: I, now: Timestamp) -> f64
    where
        I: IntoIterator<Item = &'a mut ResultCache>,
    {
        let caches: Vec<&'a mut ResultCache> = caches.into_iter().collect();
        let denom: f64 = caches
            .iter()
            .map(|c| c.subscriber_count() as f64 * c.growth_rate(now))
            .sum();
        for cache in caches {
            let ttl = if denom <= f64::EPSILON {
                self.idle_ttl
            } else {
                let n_i = cache.subscriber_count() as f64;
                let secs = n_i * self.budget.as_u64() as f64 / denom;
                SimDuration::from_secs_f64(secs)
                    .max(self.min_ttl)
                    .min(self.idle_ttl)
            };
            cache.set_ttl(ttl);
        }
        denom
    }

    /// The expected aggregate size `Σ ρ_i · T_i` under the *current* TTL
    /// assignment — the quantity Fig. 5(a) overlays against the budget.
    pub fn expected_total_size<'a, I>(&self, caches: I, now: Timestamp) -> ByteSize
    where
        I: IntoIterator<Item = &'a ResultCache>,
    {
        let total: f64 = caches
            .into_iter()
            .map(|c| c.growth_rate(now) * c.ttl().as_secs_f64())
            .sum();
        ByteSize::new(total.round().max(0.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NewObject;
    use bad_types::{BackendSubId, ObjectId, SubscriberId};

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    /// Builds a cache with `subs` subscribers receiving `byte_rate` B/s
    /// of never-consumed arrivals over 60 s.
    fn growing_cache(id: u64, subs: u64, byte_rate: u64) -> ResultCache {
        let mut c = ResultCache::new(
            BackendSubId::new(id),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        for s in 0..subs {
            c.add_subscriber(SubscriberId::new(id * 1000 + s));
        }
        for sec in 0..300u64 {
            c.insert(
                NewObject {
                    id: ObjectId::new(id * 100_000 + sec),
                    ts: t(sec),
                    size: ByteSize::new(byte_rate),
                    fetch_latency: SimDuration::from_millis(500),
                },
                t(sec),
            );
        }
        c
    }

    #[test]
    fn eq5_holds_sum_rho_ttl_equals_budget() {
        let budget = ByteSize::from_mib(1);
        let computer = TtlComputer::new(budget);
        let mut caches = [
            growing_cache(1, 5, 2000),
            growing_cache(2, 10, 1000),
            growing_cache(3, 1, 4000),
        ];
        let now = t(300);
        let denom = computer.recompute(caches.iter_mut(), now);
        assert!(denom > 0.0);
        let expected = computer.expected_total_size(caches.iter(), now);
        let b = budget.as_u64() as f64;
        let got = expected.as_u64() as f64;
        assert!((got - b).abs() / b < 0.01, "Σρ_iT_i = {got}, budget = {b}");
    }

    #[test]
    fn ttl_is_proportional_to_subscribers() {
        let computer = TtlComputer::new(ByteSize::from_mib(1));
        let mut a = growing_cache(1, 2, 1000);
        let mut b = growing_cache(2, 6, 1000);
        computer.recompute([&mut a, &mut b], t(300));
        let ratio = b.ttl().as_secs_f64() / a.ttl().as_secs_f64();
        assert!((ratio - 3.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn idle_caches_get_idle_ttl() {
        let computer = TtlComputer::new(ByteSize::from_mib(10));
        let mut c = ResultCache::new(
            BackendSubId::new(1),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        c.add_subscriber(SubscriberId::new(1));
        let denom = computer.recompute([&mut c], t(10));
        assert_eq!(denom, 0.0);
        assert_eq!(c.ttl(), computer.idle_ttl);
    }

    #[test]
    fn fully_consumed_cache_has_zero_rho_and_gets_idle_ttl() {
        // η_i ≥ λ_i ⇒ ρ_i = (λ_i − η_i)⁺ = 0: a cache whose sole
        // subscriber keeps up with arrivals exerts no budget pressure,
        // so the denominator of eq. 7 vanishes and the idle TTL rules.
        let computer = TtlComputer::new(ByteSize::from_mib(1));
        let mut c = growing_cache(1, 1, 2000);
        c.consume_up_to(SubscriberId::new(1000), t(299), t(300));
        let now = t(300);
        assert!(c.consumption_rate(now) >= c.arrival_rate(now));
        assert_eq!(c.growth_rate(now), 0.0);
        let denom = computer.recompute([&mut c], now);
        assert_eq!(denom, 0.0);
        assert_eq!(c.ttl(), computer.idle_ttl);
    }

    #[test]
    fn zero_subscriber_cache_is_excluded_from_the_weights() {
        // A growing cache with no subscribers contributes n_i·ρ_i = 0
        // to Σ n_j·ρ_j, so its presence must not move anyone's TTL.
        let computer = TtlComputer::new(ByteSize::from_mib(1));
        let now = t(300);

        let mut alone = growing_cache(1, 4, 1000);
        let denom_alone = computer.recompute([&mut alone], now);

        let mut again = growing_cache(1, 4, 1000);
        let mut orphan = growing_cache(2, 0, 8000);
        assert!(orphan.growth_rate(now) > 0.0);
        let denom_both = computer.recompute([&mut again, &mut orphan], now);

        assert!((denom_alone - denom_both).abs() < 1e-9);
        assert_eq!(alone.ttl(), again.ttl());
        // The orphan's own n_i = 0 drives its TTL to the floor.
        assert_eq!(orphan.ttl(), computer.min_ttl);
    }

    #[test]
    fn ttl_respects_floor_and_ceiling() {
        // Huge growth, tiny budget -> TTL would be microscopic; clamp.
        let computer = TtlComputer::new(ByteSize::new(1));
        let mut c = growing_cache(1, 1, 10_000_000);
        computer.recompute([&mut c], t(300));
        assert_eq!(c.ttl(), computer.min_ttl);

        // Tiny growth, huge budget -> TTL capped at idle_ttl.
        let computer = TtlComputer::new(ByteSize::from_gib(100));
        let mut c = growing_cache(2, 1, 1);
        computer.recompute([&mut c], t(300));
        assert_eq!(c.ttl(), computer.idle_ttl);
    }
}
