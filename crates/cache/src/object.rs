//! Cached result objects.

use std::collections::BTreeSet;
use std::sync::Arc;

use bad_types::{ByteSize, ObjectId, SimDuration, SubscriberId, Timestamp};

/// The payload-independent description of a result object handed to the
/// cache by the broker when the cluster produces a new result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NewObject {
    /// Unique object identifier.
    pub id: ObjectId,
    /// Production timestamp assigned by the data cluster.
    pub ts: Timestamp,
    /// Object size (`s_ij` in the paper).
    pub size: ByteSize,
    /// Latency of re-fetching this object from the data cluster
    /// (`l_ij` in the paper), as estimated by the network model.
    pub fetch_latency: SimDuration,
}

/// A result object resident in a [`crate::ResultCache`].
///
/// Every object tracks the set of subscribers still waiting to retrieve
/// it (`S(i,j)` in the paper). The object's *caching value* `φ_ij`
/// depends on that set's size `f_ij` and is what the utility-driven
/// policies of Section IV-A rank on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedObject {
    /// Unique object identifier.
    pub id: ObjectId,
    /// Production timestamp; caches are ordered by this.
    pub ts: Timestamp,
    /// Object size (`s_ij`).
    pub size: ByteSize,
    /// Cluster re-fetch latency (`l_ij`).
    pub fetch_latency: SimDuration,
    /// When the object entered the cache.
    pub cached_at: Timestamp,
    /// Expiry instant frozen at insertion (`cached_at + T_i` with the
    /// cache's TTL at that moment) — the EXP policy's dropping key.
    /// Later TTL recomputations do not move it, mirroring how a cached
    /// object's expiration header is fixed when it is admitted.
    pub frozen_expiry: Timestamp,
    /// Subscribers attached to the object that have not retrieved it yet.
    ///
    /// Shared (`Arc`) with the owning cache's live subscriber list at
    /// insertion time, so attaching the set is a pointer copy rather
    /// than a per-object clone; copy-on-write kicks in only when a
    /// subscriber actually retrieves the object.
    pub pending: Arc<BTreeSet<SubscriberId>>,
}

impl CachedObject {
    /// Builds a resident object from its description, attaching the given
    /// subscriber set.
    pub fn new(
        desc: NewObject,
        cached_at: Timestamp,
        ttl_at_insert: SimDuration,
        pending: impl Into<Arc<BTreeSet<SubscriberId>>>,
    ) -> Self {
        Self {
            id: desc.id,
            ts: desc.ts,
            size: desc.size,
            fetch_latency: desc.fetch_latency,
            cached_at,
            frozen_expiry: cached_at + ttl_at_insert,
            pending: pending.into(),
        }
    }

    /// Number of subscribers still attached (`f_ij`).
    pub fn fanout(&self) -> usize {
        self.pending.len()
    }

    /// `f_ij / s_ij` — the LSCz dropping key (uniform utility).
    pub fn subscribers_per_byte(&self) -> f64 {
        self.fanout() as f64 / self.size.as_u64().max(1) as f64
    }

    /// `f_ij · l_ij / s_ij` — the LSD dropping key (latency utility).
    pub fn delay_value_per_byte(&self) -> f64 {
        self.fanout() as f64 * self.fetch_latency.as_secs_f64() / self.size.as_u64().max(1) as f64
    }

    /// How long the object has been resident.
    pub fn age(&self, now: Timestamp) -> SimDuration {
        now.since(self.cached_at)
    }

    /// Expiry instant under a per-cache TTL.
    pub fn expires_at(&self, ttl: SimDuration) -> Timestamp {
        self.cached_at + ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(size: u64, latency_ms: u64) -> NewObject {
        NewObject {
            id: ObjectId::new(1),
            ts: Timestamp::from_secs(10),
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(latency_ms),
        }
    }

    fn subs(ids: &[u64]) -> BTreeSet<SubscriberId> {
        ids.iter().map(|&i| SubscriberId::new(i)).collect()
    }

    #[test]
    fn fanout_counts_pending() {
        let obj = CachedObject::new(
            desc(100, 500),
            Timestamp::ZERO,
            SimDuration::from_secs(60),
            subs(&[1, 2, 3]),
        );
        assert_eq!(obj.fanout(), 3);
    }

    #[test]
    fn value_keys_match_table_i() {
        let obj = CachedObject::new(
            desc(200, 500),
            Timestamp::ZERO,
            SimDuration::from_secs(60),
            subs(&[1, 2, 3, 4]),
        );
        assert_eq!(obj.subscribers_per_byte(), 4.0 / 200.0);
        assert_eq!(obj.delay_value_per_byte(), 4.0 * 0.5 / 200.0);
    }

    #[test]
    fn zero_size_does_not_divide_by_zero() {
        let obj = CachedObject::new(
            desc(0, 500),
            Timestamp::ZERO,
            SimDuration::from_secs(60),
            subs(&[1]),
        );
        assert!(obj.subscribers_per_byte().is_finite());
        assert!(obj.delay_value_per_byte().is_finite());
    }

    #[test]
    fn age_and_expiry() {
        let obj = CachedObject::new(
            desc(1, 1),
            Timestamp::from_secs(5),
            SimDuration::from_secs(60),
            subs(&[1]),
        );
        assert_eq!(obj.age(Timestamp::from_secs(8)), SimDuration::from_secs(3));
        assert_eq!(
            obj.expires_at(SimDuration::from_secs(10)),
            Timestamp::from_secs(15)
        );
        assert_eq!(obj.frozen_expiry, Timestamp::from_secs(65));
    }
}
