//! Broker-side result caching for Big Active Data — the primary
//! contribution of the reproduced paper.
//!
//! A BAD broker holds one in-memory [`ResultCache`] per *backend
//! subscription* (a merged, deduplicated subscription against the data
//! cluster). Enriched notification results are pushed at the cache head
//! as the cluster produces them and dropped from the tail under memory
//! pressure. This crate implements:
//!
//! * the per-subscription [`ResultCache`] with the range-retrieval
//!   semantics of the paper's Algorithm 1 ([`ResultCache::plan_get`]),
//! * consumption tracking — an object is dropped as soon as every
//!   attached subscriber has retrieved it,
//! * the utility-driven eviction policies of Section IV-A
//!   (**LRU**, **LSC**, **LSCz**, **LSD**, **EXP**) derived from the
//!   0/1-knapsack formulation, plus the **NC** no-cache baseline,
//! * **TTL** caching of Section IV-B: per-cache TTLs recomputed from
//!   measured arrival/consumption rates so that `Σ ρ_i·T_i = B`
//!   ([`TtlComputer`]),
//! * an ordered [`VictimIndex`] implementing the paper's `O(log N)`
//!   victim selection, with a linear-scan fallback for comparison,
//! * the aggregate [`CacheManager`] gluing it all together,
//! * a lock-striped [`ShardedCacheManager`] partitioning the caches
//!   across N mutex-guarded shards for concurrent broker workers
//!   (`shards = 1` reproduces the monolith byte-for-byte),
//! * an adaptive policy [`autopilot`](crate::autopilot) that closes the
//!   shadow-evaluation loop: the persistently-best ghost policy is
//!   promoted to live behind dwell/margin/cooldown hysteresis, with a
//!   safe in-place migration, and
//! * [`CacheMetrics`] capturing every quantity the evaluation plots
//!   (hit ratio, hit/miss bytes, holding times, time-averaged and
//!   maximum cache size).
//!
//! # Examples
//!
//! ```
//! use bad_cache::{CacheConfig, CacheManager, NewObject, PolicyName};
//! use bad_types::{BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, TimeRange, Timestamp};
//!
//! let config = CacheConfig {
//!     budget: ByteSize::from_kib(64),
//!     ..CacheConfig::default()
//! };
//! let mut mgr = CacheManager::new(PolicyName::Lsc, config);
//! let bs = BackendSubId::new(0);
//! let alice = SubscriberId::new(1);
//! mgr.create_cache(bs, Timestamp::ZERO);
//! mgr.add_subscriber(bs, alice);
//!
//! // The cluster produced a result; the broker caches it.
//! mgr.insert(bs, NewObject {
//!     id: ObjectId::new(0),
//!     ts: Timestamp::from_secs(1),
//!     size: ByteSize::from_kib(10),
//!     fetch_latency: SimDuration::from_millis(500),
//! }, Timestamp::from_secs(1));
//!
//! // Alice retrieves everything up to the newest result: a cache hit.
//! let plan = mgr.plan_get(bs, TimeRange::closed(Timestamp::ZERO, Timestamp::from_secs(1)),
//!                         Timestamp::from_secs(2));
//! assert_eq!(plan.cached.len(), 1);
//! assert!(plan.is_full_hit());
//! ```

pub mod admission;
pub mod autopilot;
pub mod index;
pub mod manager;
pub mod metrics;
pub mod object;
pub mod policy;
pub mod rate;
pub(crate) mod readpath;
pub mod result_cache;
pub mod shadow;
pub mod sharded;
pub mod telemetry;
pub mod ttl;

pub use admission::{AdmissionControl, AdmissionRule};
pub use autopilot::{
    AutopilotConfig, AutopilotStatus, Contender, HysteresisState, PolicyController,
    PolicySwitchRecord,
};
pub use index::VictimIndex;
pub use manager::{CacheConfig, CacheManager, DropReason, DroppedObject};
pub use metrics::{CacheMetrics, DropKind};
pub use object::{CachedObject, NewObject};
pub use policy::{policy_catalog, EvictionPolicy, PolicyInfo, PolicyKind, PolicyName};
pub use rate::RateEstimator;
pub use result_cache::{GetPlan, ResultCache};
pub use shadow::{
    AuditChoice, AuditRecord, GhostCounters, GhostReport, ShadowConfig, ShadowEvaluator,
    ShadowSnapshot,
};
pub use sharded::{ShardHealth, ShardedCacheManager};
pub use telemetry::CacheTelemetry;
pub use ttl::TtlComputer;
