//! Admission control — an extension beyond the paper's eviction/TTL
//! dichotomy.
//!
//! The paper's related-work section points at *admission-based* caching
//! ("incoming objects are admitted based on certain criteria (and then
//! evicted or expired)"). This module provides composable admission
//! rules that gate what enters the cache at all; rejected objects are
//! delivered straight through and served from the durable result store
//! on demand, exactly like NC treats everything.
//!
//! Admission composes with every eviction/TTL policy: the
//! [`crate::CacheManager`] consults the configured [`AdmissionControl`]
//! before inserting.

use std::fmt;

use bad_types::{ByteSize, Timestamp};

use crate::object::NewObject;
use crate::result_cache::ResultCache;

/// A single admission criterion.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionRule {
    /// Admit only objects destined for at least this many pending
    /// subscribers — low-fanout objects are cheap to re-fetch relative
    /// to the space they hold.
    MinFanout(usize),
    /// Admit only objects of at most this size — one huge object can
    /// displace dozens of popular small ones.
    MaxObjectSize(ByteSize),
    /// Admit only objects from caches whose subscriber count is at
    /// least this — a per-cache popularity prefilter.
    MinCacheSubscribers(usize),
    /// Admit only if the object is smaller than this fraction of the
    /// whole budget (guards against working-set monopolization).
    MaxBudgetFraction {
        /// Numerator of the fraction.
        num: u64,
        /// Denominator of the fraction.
        den: u64,
    },
}

impl AdmissionRule {
    /// Evaluates the rule for `desc` arriving at `cache`.
    pub fn admits(
        &self,
        cache: &ResultCache,
        desc: &NewObject,
        budget: ByteSize,
        _now: Timestamp,
    ) -> bool {
        match *self {
            AdmissionRule::MinFanout(min) => cache.subscriber_count() >= min,
            AdmissionRule::MaxObjectSize(max) => desc.size <= max,
            AdmissionRule::MinCacheSubscribers(min) => cache.subscriber_count() >= min,
            AdmissionRule::MaxBudgetFraction { num, den } => {
                // desc.size / budget <= num / den, in integers.
                (desc.size.as_u64() as u128) * (den as u128)
                    <= (budget.as_u64() as u128) * (num as u128)
            }
        }
    }
}

impl fmt::Display for AdmissionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionRule::MinFanout(n) => write!(f, "min-fanout({n})"),
            AdmissionRule::MaxObjectSize(s) => write!(f, "max-size({s})"),
            AdmissionRule::MinCacheSubscribers(n) => {
                write!(f, "min-subscribers({n})")
            }
            AdmissionRule::MaxBudgetFraction { num, den } => {
                write!(f, "max-budget-fraction({num}/{den})")
            }
        }
    }
}

/// A conjunction of admission rules (all must pass), with counters.
///
/// # Examples
///
/// ```
/// use bad_cache::{AdmissionControl, AdmissionRule};
/// use bad_types::ByteSize;
///
/// let control = AdmissionControl::all_of([
///     AdmissionRule::MaxObjectSize(ByteSize::from_kib(100)),
///     AdmissionRule::MinFanout(2),
/// ]);
/// assert_eq!(control.rules().len(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdmissionControl {
    rules: Vec<AdmissionRule>,
}

impl AdmissionControl {
    /// Admits everything (the paper's behaviour).
    pub fn admit_all() -> Self {
        Self::default()
    }

    /// Requires every rule to pass.
    pub fn all_of<I: IntoIterator<Item = AdmissionRule>>(rules: I) -> Self {
        Self {
            rules: rules.into_iter().collect(),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AdmissionRule] {
        &self.rules
    }

    /// Whether any rule is configured.
    pub fn is_transparent(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates all rules.
    pub fn admits(
        &self,
        cache: &ResultCache,
        desc: &NewObject,
        budget: ByteSize,
        now: Timestamp,
    ) -> bool {
        self.rules
            .iter()
            .all(|rule| rule.admits(cache, desc, budget, now))
    }
}

impl fmt::Display for AdmissionControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rules.is_empty() {
            return write!(f, "admit-all");
        }
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bad_types::{BackendSubId, ObjectId, SimDuration, SubscriberId};

    fn cache_with_subs(n: u64) -> ResultCache {
        let mut cache = ResultCache::new(
            BackendSubId::new(1),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        for s in 0..n {
            cache.add_subscriber(SubscriberId::new(s));
        }
        cache
    }

    fn obj(size: u64) -> NewObject {
        NewObject {
            id: ObjectId::new(1),
            ts: Timestamp::from_secs(1),
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn min_fanout_gates_on_subscribers() {
        let rule = AdmissionRule::MinFanout(3);
        let budget = ByteSize::from_mib(1);
        assert!(!rule.admits(&cache_with_subs(2), &obj(10), budget, Timestamp::ZERO));
        assert!(rule.admits(&cache_with_subs(3), &obj(10), budget, Timestamp::ZERO));
    }

    #[test]
    fn max_size_gates_on_object_size() {
        let rule = AdmissionRule::MaxObjectSize(ByteSize::new(100));
        let budget = ByteSize::from_mib(1);
        assert!(rule.admits(&cache_with_subs(1), &obj(100), budget, Timestamp::ZERO));
        assert!(!rule.admits(&cache_with_subs(1), &obj(101), budget, Timestamp::ZERO));
    }

    #[test]
    fn budget_fraction_scales_with_budget() {
        let rule = AdmissionRule::MaxBudgetFraction { num: 1, den: 10 };
        let now = Timestamp::ZERO;
        assert!(rule.admits(&cache_with_subs(1), &obj(100), ByteSize::new(1000), now));
        assert!(!rule.admits(&cache_with_subs(1), &obj(101), ByteSize::new(1000), now));
        // A bigger budget admits bigger objects.
        assert!(rule.admits(&cache_with_subs(1), &obj(500), ByteSize::new(5000), now));
    }

    #[test]
    fn conjunction_requires_all() {
        let control = AdmissionControl::all_of([
            AdmissionRule::MaxObjectSize(ByteSize::new(100)),
            AdmissionRule::MinFanout(2),
        ]);
        let budget = ByteSize::from_mib(1);
        let now = Timestamp::ZERO;
        assert!(control.admits(&cache_with_subs(2), &obj(50), budget, now));
        assert!(!control.admits(&cache_with_subs(1), &obj(50), budget, now));
        assert!(!control.admits(&cache_with_subs(2), &obj(150), budget, now));
    }

    #[test]
    fn admit_all_is_transparent() {
        let control = AdmissionControl::admit_all();
        assert!(control.is_transparent());
        assert!(control.admits(
            &cache_with_subs(0),
            &obj(u64::MAX / 2),
            ByteSize::new(1),
            Timestamp::ZERO
        ));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(AdmissionControl::admit_all().to_string(), "admit-all");
        let control = AdmissionControl::all_of([
            AdmissionRule::MinFanout(2),
            AdmissionRule::MaxObjectSize(ByteSize::from_kib(1)),
        ]);
        assert_eq!(control.to_string(), "min-fanout(2) and max-size(1.00KiB)");
    }
}
