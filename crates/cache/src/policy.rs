//! Caching policies (Table I and Section V of the paper).
//!
//! All eviction policies share the same mechanism: when the aggregate
//! cache exceeds the budget `B`, the manager drops the *tail* object of
//! the cache whose tail currently has the **minimum score**. The paper
//! derives this from a 0/1-knapsack relaxation: drop the object with the
//! least value-to-size ratio `φ_ij / s_ij`, restricted to per-cache tails
//! so victim selection is linear (or logarithmic with an index) in the
//! number of caches rather than objects.
//!
//! | name | utility `Δ` | value `φ` | dropping criterion |
//! |------|-------------|-----------|--------------------|
//! | LSCz | uniform, 1  | `f`       | min `f/s`          |
//! | LSC  | size, `s`   | `f·s`     | min `f`            |
//! | LSD  | latency, `l`| `f·l`     | min `f·l/s`        |
//! | LRU  | —           | —         | least recently accessed cache |
//! | EXP  | —           | —         | earliest to expire / most expired |
//! | TTL  | —           | —         | periodic expiration, no eviction |
//! | NC   | —           | —         | never caches (baseline) |

use std::fmt;
use std::str::FromStr;

use bad_types::{BadError, Timestamp};

use crate::result_cache::ResultCache;

/// How a policy bounds the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Evicts tail objects when the aggregate size exceeds the budget.
    Eviction,
    /// Expires objects on per-cache TTLs; size is bounded in expectation
    /// only.
    TtlExpiry,
    /// Caches nothing at all.
    NoCache,
}

/// A victim-scoring policy.
///
/// Implementations must be pure functions of the cache state passed in:
/// the [`crate::CacheManager`] re-scores a cache only when it mutates, so
/// hidden state or clock dependence (beyond the provided `now`) would
/// desynchronize the victim index. This trait is object-safe and used as
/// `Box<dyn EvictionPolicy>`.
pub trait EvictionPolicy: fmt::Debug + Send {
    /// The policy's short name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// How this policy bounds the cache.
    fn kind(&self) -> PolicyKind {
        PolicyKind::Eviction
    }

    /// The victim score of a cache; the cache with the minimum score
    /// loses its tail object. Only meaningful for non-empty caches.
    fn score(&self, cache: &ResultCache, now: Timestamp) -> f64;

    /// Whether the policy needs the periodic TTL recomputation of
    /// Section IV-B (true for TTL itself and for its eviction flavour
    /// EXP, whose scores are expiry instants).
    fn uses_ttl(&self) -> bool {
        false
    }
}

/// Least-recently-used: drop from the cache accessed longest ago.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn name(&self) -> &'static str {
        "LRU"
    }

    fn score(&self, cache: &ResultCache, _now: Timestamp) -> f64 {
        cache.last_access().as_micros() as f64
    }
}

/// Least-subscribed content: drop the tail with the fewest pending
/// subscribers (`min f`) — maximizes hit *bytes*; an LFU variant.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lsc;

impl EvictionPolicy for Lsc {
    fn name(&self) -> &'static str {
        "LSC"
    }

    fn score(&self, cache: &ResultCache, _now: Timestamp) -> f64 {
        cache.tail().map_or(f64::INFINITY, |t| t.fanout() as f64)
    }
}

/// Size-normalized LSC: drop the tail with the fewest pending subscribers
/// per byte (`min f/s`) — maximizes hit *count* (uniform utility).
#[derive(Clone, Copy, Debug, Default)]
pub struct Lscz;

impl EvictionPolicy for Lscz {
    fn name(&self) -> &'static str {
        "LSCz"
    }

    fn score(&self, cache: &ResultCache, _now: Timestamp) -> f64 {
        cache
            .tail()
            .map_or(f64::INFINITY, |t| t.subscribers_per_byte())
    }
}

/// Least subscriber delay: drop the tail with the least `f·l/s` —
/// maximizes the total re-fetch latency avoided (latency utility).
#[derive(Clone, Copy, Debug, Default)]
pub struct Lsd;

impl EvictionPolicy for Lsd {
    fn name(&self) -> &'static str {
        "LSD"
    }

    fn score(&self, cache: &ResultCache, _now: Timestamp) -> f64 {
        cache
            .tail()
            .map_or(f64::INFINITY, |t| t.delay_value_per_byte())
    }
}

/// Eviction flavour of TTL: drop the object that has already expired
/// furthest in the past, otherwise the one that will expire soonest.
/// Both orders coincide with "minimum expiry instant", so the score is
/// simply the tail's expiry instant, *frozen at insertion time* — later
/// TTL recomputations do not retroactively extend or shrink an admitted
/// object's lifetime.
#[derive(Clone, Copy, Debug, Default)]
pub struct Exp;

impl EvictionPolicy for Exp {
    fn name(&self) -> &'static str {
        "EXP"
    }

    fn uses_ttl(&self) -> bool {
        true
    }

    fn score(&self, cache: &ResultCache, _now: Timestamp) -> f64 {
        cache
            .tail()
            .map_or(f64::INFINITY, |t| t.frozen_expiry.as_micros() as f64)
    }
}

/// TTL expiration (Section IV-B): no eviction; the manager periodically
/// expires tails older than each cache's `T_i`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ttl;

impl EvictionPolicy for Ttl {
    fn name(&self) -> &'static str {
        "TTL"
    }

    fn uses_ttl(&self) -> bool {
        true
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TtlExpiry
    }

    fn score(&self, _cache: &ResultCache, _now: Timestamp) -> f64 {
        // Never consulted: TTL caches are not evicted.
        f64::INFINITY
    }
}

/// No-cache baseline (the prototype evaluation's "NC"): every retrieval
/// goes to the data cluster.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCache;

impl EvictionPolicy for NoCache {
    fn name(&self) -> &'static str {
        "NC"
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::NoCache
    }

    fn score(&self, _cache: &ResultCache, _now: Timestamp) -> f64 {
        f64::INFINITY
    }
}

/// Policy selector used in configuration, sweeps and the CLI harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PolicyName {
    /// [`Lru`]
    Lru,
    /// [`Lsc`]
    Lsc,
    /// [`Lscz`]
    Lscz,
    /// [`Lsd`]
    Lsd,
    /// [`Exp`]
    Exp,
    /// [`Ttl`]
    Ttl,
    /// [`NoCache`]
    Nc,
}

impl PolicyName {
    /// All policies, in the order the paper's figures list them.
    pub const ALL: [PolicyName; 7] = [
        PolicyName::Lru,
        PolicyName::Lsc,
        PolicyName::Lscz,
        PolicyName::Lsd,
        PolicyName::Exp,
        PolicyName::Ttl,
        PolicyName::Nc,
    ];

    /// The eviction/TTL policies compared in the simulation figures
    /// (Figs. 3–5), i.e. everything except the no-cache baseline.
    pub const SIMULATED: [PolicyName; 6] = [
        PolicyName::Lru,
        PolicyName::Lsc,
        PolicyName::Lscz,
        PolicyName::Lsd,
        PolicyName::Exp,
        PolicyName::Ttl,
    ];

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn EvictionPolicy> {
        match self {
            PolicyName::Lru => Box::new(Lru),
            PolicyName::Lsc => Box::new(Lsc),
            PolicyName::Lscz => Box::new(Lscz),
            PolicyName::Lsd => Box::new(Lsd),
            PolicyName::Exp => Box::new(Exp),
            PolicyName::Ttl => Box::new(Ttl),
            PolicyName::Nc => Box::new(NoCache),
        }
    }

    /// The display name used in figures.
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyName::Lru => "LRU",
            PolicyName::Lsc => "LSC",
            PolicyName::Lscz => "LSCz",
            PolicyName::Lsd => "LSD",
            PolicyName::Exp => "EXP",
            PolicyName::Ttl => "TTL",
            PolicyName::Nc => "NC",
        }
    }
}

impl fmt::Display for PolicyName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for PolicyName {
    type Err = BadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(PolicyName::Lru),
            "lsc" => Ok(PolicyName::Lsc),
            "lscz" => Ok(PolicyName::Lscz),
            "lsd" => Ok(PolicyName::Lsd),
            "exp" => Ok(PolicyName::Exp),
            "ttl" => Ok(PolicyName::Ttl),
            "nc" | "nocache" | "none" => Ok(PolicyName::Nc),
            other => Err(BadError::InvalidArgument(format!(
                "unknown caching policy `{other}`"
            ))),
        }
    }
}

/// A row of the paper's Table I / Section V policy listing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyInfo {
    /// Policy selector.
    pub name: PolicyName,
    /// Utility gain `Δ(i,j,k)` of the knapsack derivation, if any.
    pub utility: &'static str,
    /// Caching value `φ_ij`, if any.
    pub value: &'static str,
    /// Dropping criterion as stated in the paper.
    pub dropping: &'static str,
}

/// The policy catalog — the contents of Table I plus the extra schemes of
/// Section V, used by the `table1` experiment binary.
pub fn policy_catalog() -> Vec<PolicyInfo> {
    vec![
        PolicyInfo {
            name: PolicyName::Lscz,
            utility: "uniform, 1",
            value: "f_ij",
            dropping: "min f_ij / s_ij",
        },
        PolicyInfo {
            name: PolicyName::Lsc,
            utility: "size, s_ij",
            value: "f_ij * s_ij",
            dropping: "min f_ij",
        },
        PolicyInfo {
            name: PolicyName::Lsd,
            utility: "latency, l_ij",
            value: "f_ij * l_ij",
            dropping: "min f_ij * l_ij / s_ij",
        },
        PolicyInfo {
            name: PolicyName::Lru,
            utility: "-",
            value: "-",
            dropping: "drop from the least recently accessed cache",
        },
        PolicyInfo {
            name: PolicyName::Exp,
            utility: "-",
            value: "-",
            dropping: "earliest object to be expired",
        },
        PolicyInfo {
            name: PolicyName::Ttl,
            utility: "-",
            value: "-",
            dropping: "drop objects when TTL expires",
        },
        PolicyInfo {
            name: PolicyName::Nc,
            utility: "-",
            value: "-",
            dropping: "never caches (baseline)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NewObject;
    use bad_types::{BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId};

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    /// Cache with one tail object of given fanout/size/latency.
    fn cache(id: u64, fanout: u64, size: u64, latency_ms: u64) -> ResultCache {
        let mut c = ResultCache::new(
            BackendSubId::new(id),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        for s in 0..fanout {
            c.add_subscriber(SubscriberId::new(id * 100 + s));
        }
        c.insert(
            NewObject {
                id: ObjectId::new(id),
                ts: t(1),
                size: ByteSize::new(size),
                fetch_latency: SimDuration::from_millis(latency_ms),
            },
            t(1),
        );
        c
    }

    #[test]
    fn lsc_prefers_fewest_subscribers() {
        let few = cache(1, 1, 100, 500);
        let many = cache(2, 9, 100, 500);
        assert!(Lsc.score(&few, t(2)) < Lsc.score(&many, t(2)));
    }

    #[test]
    fn lscz_normalizes_by_size() {
        // Same fanout; the bigger object has fewer subscribers per byte.
        let big = cache(1, 2, 1000, 500);
        let small = cache(2, 2, 10, 500);
        assert!(Lscz.score(&big, t(2)) < Lscz.score(&small, t(2)));
    }

    #[test]
    fn lsd_weighs_refetch_latency() {
        let cheap = cache(1, 2, 100, 10);
        let costly = cache(2, 2, 100, 5000);
        assert!(Lsd.score(&cheap, t(2)) < Lsd.score(&costly, t(2)));
    }

    #[test]
    fn lru_prefers_stale_caches() {
        let mut stale = cache(1, 1, 100, 500);
        let mut fresh = cache(2, 1, 100, 500);
        stale.plan_get(bad_types::TimeRange::closed(t(0), t(1)), t(2));
        fresh.plan_get(bad_types::TimeRange::closed(t(0), t(1)), t(50));
        assert!(Lru.score(&stale, t(51)) < Lru.score(&fresh, t(51)));
    }

    #[test]
    fn exp_orders_by_frozen_expiry_instant() {
        // Expiry is frozen at insertion with the cache's TTL at that time.
        let mut soon = ResultCache::new(
            BackendSubId::new(1),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        soon.add_subscriber(SubscriberId::new(1));
        soon.set_ttl(SimDuration::from_secs(5));
        soon.insert(
            NewObject {
                id: ObjectId::new(1),
                ts: t(1),
                size: ByteSize::new(100),
                fetch_latency: SimDuration::from_millis(500),
            },
            t(1),
        ); // frozen expiry at t=6

        let mut late = ResultCache::new(
            BackendSubId::new(2),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        late.add_subscriber(SubscriberId::new(2));
        late.set_ttl(SimDuration::from_secs(500));
        late.insert(
            NewObject {
                id: ObjectId::new(2),
                ts: t(1),
                size: ByteSize::new(100),
                fetch_latency: SimDuration::from_millis(500),
            },
            t(1),
        ); // frozen expiry at t=501

        assert!(Exp.score(&soon, t(2)) < Exp.score(&late, t(2)));
        // An already-expired object still has the smallest score.
        assert!(Exp.score(&soon, t(100)) < Exp.score(&late, t(100)));
        // Raising the TTL afterwards does not rescue admitted objects.
        soon.set_ttl(SimDuration::from_hours(2));
        assert!(Exp.score(&soon, t(100)) < Exp.score(&late, t(100)));
    }

    #[test]
    fn empty_caches_never_win_victim_selection() {
        let empty = ResultCache::new(
            BackendSubId::new(9),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        for policy in [&Lsc as &dyn EvictionPolicy, &Lscz, &Lsd, &Exp] {
            assert_eq!(policy.score(&empty, t(1)), f64::INFINITY);
        }
    }

    #[test]
    fn names_parse_and_display() {
        for name in PolicyName::ALL {
            assert_eq!(name.as_str().parse::<PolicyName>().unwrap(), name);
            assert_eq!(name.build().name(), name.as_str());
        }
        assert!("bogus".parse::<PolicyName>().is_err());
    }

    #[test]
    fn kinds_are_consistent() {
        assert_eq!(PolicyName::Ttl.build().kind(), PolicyKind::TtlExpiry);
        assert_eq!(PolicyName::Nc.build().kind(), PolicyKind::NoCache);
        for name in [
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
            PolicyName::Exp,
        ] {
            assert_eq!(name.build().kind(), PolicyKind::Eviction);
        }
    }

    #[test]
    fn catalog_covers_all_policies() {
        let catalog = policy_catalog();
        assert_eq!(catalog.len(), PolicyName::ALL.len());
        for name in PolicyName::ALL {
            assert!(catalog.iter().any(|info| info.name == name));
        }
    }
}
