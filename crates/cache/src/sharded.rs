//! Lock-striped sharding of the broker cache tier.
//!
//! [`ShardedCacheManager`] partitions one broker's result caches across
//! `N` independent [`CacheManager`] shards, each behind its own
//! `std::sync::Mutex`. Per-backend-subscription caches are independent
//! except for the shared budget `B` (the knapsack coupling of Section
//! IV-A), so a cache's shard is fixed by a hash of its
//! [`BackendSubId`] and every data-path operation (`insert`,
//! `plan_get`, `ack_consume`, subscriber churn) takes `&self` and locks
//! exactly one shard — broker worker threads proceed concurrently as
//! long as they touch different shards.
//!
//! The budget coupling is resolved in two pieces:
//!
//! * each shard owns a fixed share of `B` (`B/N`, remainder spread over
//!   the first shards so the shares sum to `B` exactly) and enforces
//!   it locally — evictions and the per-shard TTL retune (eq. 5–7) use
//!   the shard-local `Σ n_j·ρ_j`;
//! * the periodic [`ShardedCacheManager::maintain`] pass rebalances
//!   the shares — half of `B` split equally as a per-shard floor, half
//!   by per-shard occupancy — so a hot shard borrows budget from cold
//!   ones while the global sum stays exactly `B` and no shard is ever
//!   starved below `B/2N`.
//!
//! With `shards = 1` the single shard owns the whole budget, sees the
//! global `Σ n_j·ρ_j`, and the rebalance is skipped — every eviction
//! and expiry decision is byte-for-byte identical to a monolithic
//! [`CacheManager`]. That parity is the paper-faithful mode (the
//! ICDCS 2018 evaluation is single-threaded) and is pinned by the
//! `oracle_parity` integration test for all six policies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, TryLockError};

use bad_telemetry::{
    HotSnapshot, LockSite, OpTimer, ProfiledGuard, Profiler, SketchConfig, SketchRecorder,
    StagePath, TraceId,
};
use bad_types::{BackendSubId, ByteSize, Result, SubscriberId, TimeRange, Timestamp};

use crate::admission::AdmissionControl;
use crate::autopilot::{AutopilotConfig, AutopilotStatus, PolicyController, PolicySwitchRecord};
use crate::manager::{CacheConfig, CacheManager, DroppedObject};
use crate::metrics::CacheMetrics;
use crate::object::NewObject;
use crate::policy::{PolicyKind, PolicyName};
use crate::readpath::{ReadRecord, ShardReadPath};
use crate::result_cache::{GetPlan, ResultCache};
use crate::shadow::{ShadowConfig, ShadowSnapshot};
use crate::telemetry::CacheTelemetry;

/// A finalizer-quality 64-bit mix (splitmix64) so consecutive
/// subscription ids spread evenly across shards on every platform.
/// Also used (salted) by [`crate::shadow`]'s access sampling.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Packs a `(PolicyName, PolicyKind)` pair into one `u64` so the live
/// policy can live in an `AtomicU64` — read on every routed operation
/// (and by the optimistic GET's NC check) without taking a lock.
fn pack_policy(name: PolicyName, kind: PolicyKind) -> u64 {
    let n: u64 = match name {
        PolicyName::Lru => 0,
        PolicyName::Lsc => 1,
        PolicyName::Lscz => 2,
        PolicyName::Lsd => 3,
        PolicyName::Exp => 4,
        PolicyName::Ttl => 5,
        PolicyName::Nc => 6,
    };
    let k: u64 = match kind {
        PolicyKind::Eviction => 0,
        PolicyKind::TtlExpiry => 1,
        PolicyKind::NoCache => 2,
    };
    n | (k << 8)
}

/// Inverse of [`pack_policy`].
fn unpack_policy(bits: u64) -> (PolicyName, PolicyKind) {
    let name = match bits & 0xFF {
        0 => PolicyName::Lru,
        1 => PolicyName::Lsc,
        2 => PolicyName::Lscz,
        3 => PolicyName::Lsd,
        4 => PolicyName::Exp,
        5 => PolicyName::Ttl,
        6 => PolicyName::Nc,
        other => unreachable!("bad packed policy name {other}"),
    };
    let kind = match (bits >> 8) & 0xFF {
        0 => PolicyKind::Eviction,
        1 => PolicyKind::TtlExpiry,
        2 => PolicyKind::NoCache,
        other => unreachable!("bad packed policy kind {other}"),
    };
    (name, kind)
}

/// Splits `budget` into `n` shares that sum to `budget` exactly, the
/// remainder bytes going to the first shards.
fn split_budget(budget: ByteSize, n: u64) -> Vec<ByteSize> {
    let base = budget.as_u64() / n;
    let remainder = budget.as_u64() % n;
    (0..n)
        .map(|i| ByteSize::new(base + u64::from(i < remainder)))
        .collect()
}

/// One shard's point-in-time occupancy, as reported by
/// [`ShardedCacheManager::shard_health`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub index: usize,
    /// Bytes currently resident in the shard.
    pub occupancy_bytes: u64,
    /// The shard's current budget share.
    pub budget_bytes: u64,
    /// Result caches owned by the shard.
    pub caches: usize,
}

/// N lock-striped [`CacheManager`] shards under one global budget.
///
/// All operations take `&self`; each data-path call locks the single
/// shard owning the addressed cache. See the [module docs](self) for
/// the budget model and the `shards = 1` parity guarantee.
#[derive(Debug)]
pub struct ShardedCacheManager {
    shards: Vec<Mutex<CacheManager>>,
    budget: ByteSize,
    /// The live policy and its kind, packed by [`pack_policy`] —
    /// mutable since the autopilot can promote a new policy fleet-wide
    /// ([`crate::autopilot`]). An atomic (not a mutex) because it is
    /// read on the lock-free GET path, where even an uncontended lock
    /// acquisition would dirty the line shared with writers.
    policy: AtomicU64,
    /// Per-shard lock-free read paths (seqlock snapshots + deferred-ack
    /// mailboxes), index-aligned with `shards`. `None` when
    /// [`CacheConfig::use_lockfree_reads`] is off — every read then
    /// takes the shard mutex exactly as before the read path existed.
    read_paths: Option<Vec<Arc<ShardReadPath>>>,
    /// Test-only knob: force every `ack_consume` through the deferred
    /// mailbox even when the shard lock is free, so tests can exercise
    /// the drain/stash machinery deterministically.
    force_defer_acks: AtomicBool,
    /// The fleet-level policy controller: one decision from the merged
    /// shard snapshots, applied to every shard — so a fleet never runs
    /// mixed policies. Lock order: taken first, before any shard lock.
    autopilot: Mutex<Option<PolicyController>>,
    /// Continuous profiler attachment (write-once): per-shard lock
    /// sites plus the stage-timer handle. `None` keeps every lock
    /// acquisition a plain `Mutex::lock` and every stage call a single
    /// branch. The sites only *observe* the shard mutexes, so the
    /// autopilot → shard → policy lock order is unchanged.
    profile: OnceLock<ShardProfile>,
    /// Hot-key sketch recorders, one per shard, index-aligned with
    /// `shards` (write-once, like `profile`). Each shard's hooks feed
    /// its own recorder under the shard lock (so the recorder mutex is
    /// uncontended); [`ShardedCacheManager::hot_snapshot`] merges the
    /// per-shard states at read time, order-independently. Delivery-lag
    /// recording routes here directly, *without* the shard mutex.
    sketch: OnceLock<Vec<Arc<SketchRecorder>>>,
}

/// The profiler attachment of one [`ShardedCacheManager`].
#[derive(Debug)]
struct ShardProfile {
    profiler: Profiler,
    /// One instrumented site per shard, index-aligned with `shards`.
    sites: Vec<LockSite>,
}

impl ShardedCacheManager {
    /// Creates `shards.max(1)` shards of `policy`, splitting
    /// `config.budget` evenly across them.
    pub fn new(policy: PolicyName, config: CacheConfig, shards: usize) -> Self {
        let n = shards.max(1) as u64;
        let read_paths = config.use_lockfree_reads.then(|| {
            (0..n)
                .map(|_| Arc::new(ShardReadPath::new()))
                .collect::<Vec<_>>()
        });
        let shards = split_budget(config.budget, n)
            .into_iter()
            .enumerate()
            .map(|(i, share)| {
                let mut mgr = CacheManager::new(
                    policy,
                    CacheConfig {
                        budget: share,
                        ..config
                    },
                );
                if let Some(read_paths) = &read_paths {
                    mgr.attach_read_path(Arc::clone(&read_paths[i]));
                }
                Mutex::new(mgr)
            })
            .collect();
        Self {
            shards,
            budget: config.budget,
            policy: AtomicU64::new(pack_policy(policy, policy.build().kind())),
            read_paths,
            force_defer_acks: AtomicBool::new(false),
            autopilot: Mutex::new(None),
            profile: OnceLock::new(),
            sketch: OnceLock::new(),
        }
    }

    /// The read path of shard `idx`, when lock-free reads are enabled.
    fn read_path(&self, idx: usize) -> Option<&Arc<ShardReadPath>> {
        self.read_paths.as_ref().map(|paths| &paths[idx])
    }

    /// The shard index owning `bs` — a stable hash, so routing is
    /// deterministic across runs and platforms.
    pub fn shard_index(&self, bs: BackendSubId) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (mix64(bs.as_u64()) % self.shards.len() as u64) as usize
        }
    }

    fn lock(&self, idx: usize) -> ProfiledGuard<'_, CacheManager> {
        self.lock_timed(idx, false)
    }

    /// Acquires shard `idx` through its lock site when the profiler is
    /// attached (`timed` gates the hold-time pair — pass the per-op
    /// sampling decision), a plain acquisition otherwise.
    fn lock_timed(&self, idx: usize, timed: bool) -> ProfiledGuard<'_, CacheManager> {
        let mut guard = match self.profile.get() {
            Some(p) => p.sites[idx].lock(&self.shards[idx], timed),
            None => ProfiledGuard::plain(&self.shards[idx]),
        };
        // Every shard-lock acquisition drains the read mailbox first,
        // so everything observed under the lock is post-drain and
        // byte-identical to the serial locked execution.
        guard.drain_reads();
        guard
    }

    /// Acquires shard `idx` through its lock site, crossing the
    /// sampled op's lock-wait boundary with the same tick read that
    /// starts the hold timer (see [`LockSite::lock_staged`]).
    fn lock_staged(
        &self,
        idx: usize,
        timer: &mut Option<OpTimer>,
        path: StagePath,
        trace: u64,
    ) -> ProfiledGuard<'_, CacheManager> {
        match self.profile.get() {
            Some(p) => {
                let mut guard = p.sites[idx].lock_staged(&self.shards[idx], timer, path, trace);
                if guard.drain_reads() > 0 {
                    // Attribute the replay of deferred hit/ack records
                    // to its own stage so drain cost is visible in the
                    // folded tree rather than polluting the caller's
                    // next stage.
                    p.profiler.stage(timer, StagePath::GetAckDrain, trace);
                }
                guard
            }
            None => {
                let mut guard = ProfiledGuard::plain(&self.shards[idx]);
                guard.drain_reads();
                guard
            }
        }
    }

    fn shard(&self, bs: BackendSubId) -> ProfiledGuard<'_, CacheManager> {
        self.lock(self.shard_index(bs))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global budget `B` (the per-shard shares sum to this).
    pub fn budget(&self) -> ByteSize {
        self.budget
    }

    /// The current budget share of one shard.
    pub fn shard_budget(&self, idx: usize) -> ByteSize {
        self.lock(idx).budget()
    }

    fn live_policy(&self) -> (PolicyName, PolicyKind) {
        unpack_policy(self.policy.load(Ordering::Acquire))
    }

    /// The live policy (the configured one until the autopilot promotes
    /// a ghost; see [`ShardedCacheManager::enable_autopilot`]).
    pub fn policy_name(&self) -> PolicyName {
        self.live_policy().0
    }

    /// How the live policy bounds the cache.
    pub fn kind(&self) -> PolicyKind {
        self.live_policy().1
    }

    /// Whether the broker should prefetch results into the cache on
    /// cluster notifications (everything except the NC baseline).
    pub fn caches_results(&self) -> bool {
        self.live_policy().1 != PolicyKind::NoCache
    }

    /// Current aggregate size across all shards.
    pub fn total_bytes(&self) -> ByteSize {
        (0..self.shards.len())
            .map(|i| self.lock(i).total_bytes())
            .sum()
    }

    /// Number of result caches across all shards.
    pub fn cache_count(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.lock(i).cache_count())
            .sum()
    }

    /// Objects rejected by admission control across all shards.
    pub fn admission_rejections(&self) -> u64 {
        (0..self.shards.len())
            .map(|i| self.lock(i).admission_rejections())
            .sum()
    }

    /// Point-in-time occupancy of every shard — the payload behind the
    /// scrape endpoint's `/healthz` and the runtime's shard-imbalance
    /// anomaly check. Locks one shard at a time, so the rows are each
    /// internally consistent but not a global atomic snapshot.
    pub fn shard_health(&self) -> Vec<ShardHealth> {
        (0..self.shards.len())
            .map(|idx| {
                let shard = self.lock(idx);
                ShardHealth {
                    index: idx,
                    occupancy_bytes: shard.total_bytes().as_u64(),
                    budget_bytes: shard.budget().as_u64(),
                    caches: shard.cache_count(),
                }
            })
            .collect()
    }

    /// Aggregated metrics: the fold of every shard's [`CacheMetrics`]
    /// via [`CacheMetrics::merge`]. With one shard this is an exact
    /// clone of the shard's metrics.
    pub fn metrics(&self) -> CacheMetrics {
        let mut out = self.lock(0).metrics().clone();
        for i in 1..self.shards.len() {
            out.merge(self.lock(i).metrics());
        }
        out
    }

    /// Installs a telemetry bundle on every shard. The bundle's metric
    /// handles are registry-backed and shared, so per-shard counter
    /// bumps aggregate automatically; the occupancy gauge becomes
    /// last-writer-wins across shards (an approximation documented in
    /// DESIGN.md).
    pub fn set_telemetry(&self, telemetry: CacheTelemetry) {
        self.set_profiler(telemetry.profiler());
        for i in 0..self.shards.len() {
            self.lock(i).set_telemetry(telemetry.clone());
        }
    }

    /// Attaches the continuous profiler: registers one
    /// `cache_shard<i>` lock site per shard and enables stage timing
    /// on the data paths. Write-once — later calls (and disabled
    /// profilers) are no-ops, so re-installing telemetry can't tear
    /// sites out from under concurrent operations.
    pub fn set_profiler(&self, profiler: &Profiler) {
        if !profiler.enabled() {
            return;
        }
        let sites = (0..self.shards.len())
            .map(|i| profiler.lock_site(&format!("cache_shard{i}")))
            .collect();
        let _ = self.profile.set(ShardProfile {
            profiler: profiler.clone(),
            sites,
        });
    }

    /// Enables hot-key attribution sketches ([`bad_telemetry::sketch`]):
    /// one recorder per shard, installed on each shard manager's hooks.
    /// Write-once, like [`ShardedCacheManager::set_profiler`] — later
    /// calls are no-ops. Strictly metadata-only: no caching decision
    /// reads the sketches, so `shards = 1` with sketches enabled stays
    /// byte-identical to the monolith (pinned by `oracle_parity`).
    pub fn enable_sketches(&self, config: SketchConfig) {
        let recorders: Vec<Arc<SketchRecorder>> = (0..self.shards.len())
            .map(|_| Arc::new(SketchRecorder::new(config)))
            .collect();
        if self.sketch.set(recorders).is_err() {
            return;
        }
        let recorders = self.sketch.get().expect("just set");
        for (i, recorder) in recorders.iter().enumerate() {
            self.lock(i).set_sketches(Arc::clone(recorder));
        }
    }

    /// Whether sketches are enabled.
    pub fn sketches_enabled(&self) -> bool {
        self.sketch.get().is_some()
    }

    /// The merged hot-key snapshot across all shards (`None` until
    /// [`ShardedCacheManager::enable_sketches`]). Reads each shard's
    /// recorder directly — never the shard mutexes — and merges
    /// order-independently, so two scrapes over the same quiescent
    /// state render byte-identical `/hot` JSON regardless of shard
    /// iteration order.
    pub fn hot_snapshot(&self) -> Option<HotSnapshot> {
        let recorders = self.sketch.get()?;
        let snapshots: Vec<HotSnapshot> = recorders.iter().map(|r| r.snapshot()).collect();
        HotSnapshot::merge(&snapshots)
    }

    /// Attributes one delivered object's end-to-end lag to `bs`'s
    /// shard recorder. No-op until sketches are enabled. Deliberately
    /// lock-free with respect to the shards: the broker calls this per
    /// delivered object on the GET path, which (with lock-free reads)
    /// may not have taken the shard mutex at all.
    pub fn record_delivery_lag(&self, bs: BackendSubId, lag_us: u64) {
        if let Some(recorders) = self.sketch.get() {
            recorders[self.shard_index(bs)].record_delivery_lag(bs.as_u64(), lag_us);
        }
    }

    /// Installs admission control on every shard.
    pub fn set_admission(&self, admission: AdmissionControl) {
        for i in 0..self.shards.len() {
            self.lock(i).set_admission(admission.clone());
        }
    }

    /// Enables shadow-policy evaluation ([`crate::shadow`]) on every
    /// shard: each shard gets its own ghost fleet replaying that
    /// shard's slice of the access stream, merged at read time by
    /// [`ShardedCacheManager::shadow_snapshot`].
    pub fn enable_shadow(&self, config: ShadowConfig, now: Timestamp) {
        for i in 0..self.shards.len() {
            self.lock(i).enable_shadow(config, now);
        }
    }

    /// Registers the `bad_cache_shadow_*` series on `registry` (no-op
    /// until [`ShardedCacheManager::enable_shadow`]). The labeled
    /// handles are registry-backed and shared, so per-shard ghost
    /// bumps aggregate automatically.
    pub fn set_shadow_telemetry(&self, registry: &bad_telemetry::Registry) {
        for i in 0..self.shards.len() {
            self.lock(i).set_shadow_telemetry(registry);
        }
    }

    /// The fold of every shard's [`ShadowSnapshot`] — per-policy
    /// counters sum, audits concatenate in eviction-time order. `None`
    /// until [`ShardedCacheManager::enable_shadow`]. Locks one shard
    /// at a time, like [`ShardedCacheManager::metrics`].
    pub fn shadow_snapshot(&self) -> Option<ShadowSnapshot> {
        let mut out: Option<ShadowSnapshot> = None;
        for i in 0..self.shards.len() {
            let Some(snap) = self.lock(i).shadow_snapshot() else {
                continue;
            };
            match out.as_mut() {
                Some(merged) => merged.merge(&snap),
                None => out = Some(snap),
            }
        }
        out
    }

    /// Enables the fleet-level policy autopilot ([`crate::autopilot`]):
    /// one controller judging the *merged* shard snapshots, so every
    /// shard switches together and `shards = 1` makes the exact same
    /// decisions as a monolithic manager. Requires
    /// [`ShardedCacheManager::enable_shadow`] to have any effect.
    pub fn enable_autopilot(&self, config: AutopilotConfig) {
        *self.autopilot.lock().expect("autopilot lock poisoned") =
            Some(PolicyController::new(config));
    }

    /// Registers the `bad_cache_autopilot_*` series on `registry`
    /// (no-op until [`ShardedCacheManager::enable_autopilot`]).
    pub fn set_autopilot_telemetry(&self, registry: &bad_telemetry::Registry) {
        if let Some(autopilot) = self
            .autopilot
            .lock()
            .expect("autopilot lock poisoned")
            .as_mut()
        {
            autopilot.set_telemetry(registry);
        }
    }

    /// The fleet controller's status, when enabled.
    pub fn autopilot_status(&self) -> Option<AutopilotStatus> {
        let live = self.policy_name();
        self.autopilot
            .lock()
            .expect("autopilot lock poisoned")
            .as_ref()
            .map(|a| a.status(live))
    }

    /// Feeds the fleet controller one evaluation window: judges the
    /// merged [`ShardedCacheManager::shadow_snapshot`] and — on
    /// promotion — applies [`CacheManager::switch_policy`] to every
    /// shard (a coordinated fleet-wide switch; shards migrate one at a
    /// time, so concurrent data-path calls see old-policy and
    /// new-policy shards briefly coexist, all with intact accounting)
    /// and emits one [`PolicySwitch`](bad_telemetry::Event::PolicySwitch)
    /// event. Call once per maintenance window.
    pub fn autopilot_tick(&self, now: Timestamp) -> Option<PolicySwitchRecord> {
        let Some(p) = self.profile.get() else {
            return self.autopilot_tick_inner(now);
        };
        let mut timer = p.profiler.op();
        let record = self.autopilot_tick_inner(now);
        // A leaf-only sample: the autopilot runs outside any maintain
        // envelope, so its time shows up as its own folded line.
        p.profiler
            .stage(&mut timer, StagePath::MaintainAutopilot, 0);
        record
    }

    fn autopilot_tick_inner(&self, now: Timestamp) -> Option<PolicySwitchRecord> {
        let mut autopilot = self.autopilot.lock().expect("autopilot lock poisoned");
        let controller = autopilot.as_mut()?;
        let snapshot = self.shadow_snapshot()?;
        let live = self.policy_name();
        let record = controller.observe(&snapshot, live, now)?;
        for i in 0..self.shards.len() {
            self.lock(i).switch_policy(record.to, now);
        }
        self.policy.store(
            pack_policy(record.to, record.to.build().kind()),
            Ordering::Release,
        );
        let telemetry = self.lock(0).telemetry().clone();
        telemetry.on_policy_switch(&record);
        Some(record)
    }

    /// Creates an empty cache for a new backend subscription.
    pub fn create_cache(&self, bs: BackendSubId, now: Timestamp) {
        self.shard(bs).create_cache(bs, now);
    }

    /// Tears down a backend subscription's cache, dropping its objects.
    pub fn remove_cache(&self, bs: BackendSubId, now: Timestamp) -> Vec<DroppedObject> {
        let mut shard = self.shard(bs);
        let dropped = shard.remove_cache(bs, now);
        let mut out = shard.take_deferred_drops();
        out.extend(dropped);
        out
    }

    /// Attaches a subscriber to a cache.
    ///
    /// # Errors
    ///
    /// Returns [`bad_types::BadError::NotFound`] when no cache exists
    /// for `bs`.
    pub fn add_subscriber(&self, bs: BackendSubId, sub: SubscriberId) -> Result<()> {
        self.shard(bs).add_subscriber(bs, sub)
    }

    /// Detaches a subscriber, dropping objects only waiting on it.
    ///
    /// # Errors
    ///
    /// Returns [`bad_types::BadError::NotFound`] when no cache exists
    /// for `bs`.
    pub fn remove_subscriber(
        &self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        let mut shard = self.shard(bs);
        let dropped = shard.remove_subscriber(bs, sub, now)?;
        let mut out = shard.take_deferred_drops();
        out.extend(dropped);
        Ok(out)
    }

    /// Inserts a freshly produced result (Algorithm 1 `PUT`), evicting
    /// within the owning shard until its share is respected.
    ///
    /// # Errors
    ///
    /// Returns [`bad_types::BadError::NotFound`] when no cache exists
    /// for `bs`.
    pub fn insert(
        &self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        let Some(p) = self.profile.get() else {
            let mut shard = self.shard(bs);
            let dropped = shard.insert(bs, desc, now)?;
            let mut out = shard.take_deferred_drops();
            out.extend(dropped);
            return Ok(out);
        };
        let mut timer = p.profiler.op();
        let trace = match timer {
            Some(_) => TraceId::for_object(desc.id.as_u64()).as_u64(),
            None => 0,
        };
        let idx = self.shard_index(bs);
        let mut shard = self.lock_staged(idx, &mut timer, StagePath::InsertLockWait, trace);
        let out = shard.insert_staged(bs, desc, now, &p.profiler, &mut timer);
        let out = out.map(|dropped| {
            let mut all = shard.take_deferred_drops();
            all.extend(dropped);
            all
        });
        drop(shard);
        p.profiler.finish(timer, StagePath::InsertTotal, trace);
        out
    }

    /// Attempts a lock-free GET against shard `idx`'s published
    /// snapshot. `None` means "take the locked path": the read path is
    /// disabled (config off or shadow evaluation active), an ack for
    /// `bs` may be pending in the mailbox (planning before it is
    /// applied could return a stale hit set), the snapshot generation
    /// was stale before or after planning, or the mailbox was full.
    ///
    /// On success the plan's hit accounting is enqueued as a
    /// [`ReadRecord::Hits`] and applied by the next lock holder, so
    /// metrics/telemetry stay exactly what the locked path would have
    /// produced (zero-hit plans enqueue too — the locked path touches
    /// `last_access` and reindexes even then).
    fn try_optimistic_plan(
        &self,
        idx: usize,
        bs: BackendSubId,
        range: TimeRange,
        now: Timestamp,
    ) -> Option<GetPlan> {
        let rp = self.read_path(idx)?;
        if !rp.optimistic() {
            return None;
        }
        // Mirrors CacheManager::plan_get_live's NC / missing-cache
        // short-circuits: no metrics, no telemetry, no record.
        let all_missed = |range: TimeRange| GetPlan {
            cached: Vec::new(),
            cached_bytes: ByteSize::ZERO,
            missed: if range.is_empty() {
                Vec::new()
            } else {
                vec![range]
            },
        };
        if self.live_policy().1 == PolicyKind::NoCache {
            return Some(all_missed(range));
        }
        if rp.mailbox.maybe_pending_ack(bs) {
            return None;
        }
        let slots = rp.slots();
        let Some(slot) = slots.get(&bs) else {
            return Some(all_missed(range));
        };
        let snap = slot.read()?;
        let plan = snap.plan_get(range);
        if !slot.still_valid(&snap) {
            return None;
        }
        let recorded = rp.mailbox.push(ReadRecord::Hits {
            bs,
            objects: plan.cached.len() as u64,
            bytes: plan.cached_bytes,
            now,
        });
        if !recorded {
            // Mailbox full: serving the plan would lose its hit
            // accounting. Fall back to the locked path (which drains).
            return None;
        }
        Some(plan)
    }

    /// Plans a range retrieval (Algorithm 1 `GET`) against the owning
    /// shard — optimistically against the shard's published snapshot
    /// when lock-free reads are on, falling back to the shard mutex on
    /// any seqlock conflict (and republishing the snapshot before
    /// releasing it, so the next read succeeds).
    pub fn plan_get(&self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan {
        let idx = self.shard_index(bs);
        let Some(p) = self.profile.get() else {
            if let Some(plan) = self.try_optimistic_plan(idx, bs, range, now) {
                return plan;
            }
            let mut shard = self.lock(idx);
            let plan = shard.plan_get(bs, range, now);
            shard.refresh_read_slot(bs);
            return plan;
        };
        let mut timer = p.profiler.op();
        p.profiler.stage(&mut timer, StagePath::GetRoute, 0);
        if let Some(plan) = self.try_optimistic_plan(idx, bs, range, now) {
            p.profiler
                .stage(&mut timer, StagePath::GetOptimisticRead, 0);
            p.profiler.finish(timer, StagePath::GetTotal, 0);
            return plan;
        }
        if self.read_paths.is_some() {
            // The optimistic attempt ran and failed — record the retry
            // boundary so fallback frequency shows up in /profile.
            p.profiler.stage(&mut timer, StagePath::GetSeqlockRetry, 0);
        }
        let mut shard = self.lock_staged(idx, &mut timer, StagePath::GetLockWait, 0);
        let plan = shard.plan_get_staged(bs, range, now, &p.profiler, &mut timer);
        shard.refresh_read_slot(bs);
        let tail = shard.tail_get_stage();
        shard.unlock_staged(&mut timer, tail);
        p.profiler.finish(timer, StagePath::GetTotal, 0);
        plan
    }

    /// Marks everything up to `up_to` as retrieved by `sub` (`ACK`),
    /// dropping fully consumed objects.
    ///
    /// # Errors
    ///
    /// Returns [`bad_types::BadError::NotFound`] when no cache exists
    /// for `bs`.
    pub fn ack_consume(
        &self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        let idx = self.shard_index(bs);
        if let Some(rp) = self.read_path(idx) {
            let defer = self.force_defer_acks.load(Ordering::Relaxed);
            if defer {
                if rp.mailbox.push(ReadRecord::Ack {
                    bs,
                    sub,
                    up_to,
                    now,
                }) {
                    return Ok(Vec::new());
                }
                // Mailbox full: fall through to the blocking path.
            } else {
                // Adaptive: apply synchronously when the shard lock is
                // free (uncontended serial tapes keep exact per-call
                // Result parity with the locked build), defer into the
                // mailbox only under contention. try_lock bypasses the
                // profiler's lock site — there is no wait to measure.
                match self.shards[idx].try_lock() {
                    Ok(mut shard) => {
                        shard.drain_reads();
                        let dropped = shard.ack_consume(bs, sub, up_to, now)?;
                        let mut out = shard.take_deferred_drops();
                        out.extend(dropped);
                        return Ok(out);
                    }
                    Err(TryLockError::WouldBlock) => {
                        if rp.mailbox.push(ReadRecord::Ack {
                            bs,
                            sub,
                            up_to,
                            now,
                        }) {
                            return Ok(Vec::new());
                        }
                        // Mailbox full: block on the lock instead.
                    }
                    Err(TryLockError::Poisoned(e)) => panic!("shard mutex poisoned: {e}"),
                }
            }
        }
        let mut shard = self.shard(bs);
        let dropped = shard.ack_consume(bs, sub, up_to, now)?;
        let mut out = shard.take_deferred_drops();
        out.extend(dropped);
        Ok(out)
    }

    /// Test-only: forces every [`ShardedCacheManager::ack_consume`]
    /// through the deferred mailbox so the drain/stash machinery can be
    /// exercised deterministically. No effect when lock-free reads are
    /// disabled.
    #[doc(hidden)]
    pub fn set_force_defer_acks(&self, on: bool) {
        self.force_defer_acks.store(on, Ordering::Relaxed);
    }

    /// Drains every shard's read mailbox and returns all deferred
    /// drops still stashed in the shards — drops whose triggering
    /// `ack_consume` was deferred and whose drain happened under a
    /// non-drop-returning operation. Call before tearing down or
    /// comparing final state; always empty when lock-free reads are
    /// disabled.
    pub fn quiesce(&self) -> Vec<DroppedObject> {
        let mut out = Vec::new();
        for idx in 0..self.shards.len() {
            let mut shard = self.lock(idx);
            out.extend(shard.take_deferred_drops());
        }
        out
    }

    /// Re-splits a new global budget `B` across the shards (same
    /// even-split-with-remainder rule as construction) and enforces
    /// each share immediately. Returns the evictions a shrink forces.
    pub fn set_budget(&mut self, budget: ByteSize, now: Timestamp) -> Vec<DroppedObject> {
        self.budget = budget;
        let shares = split_budget(budget, self.shards.len() as u64);
        let mut dropped = Vec::new();
        for (idx, share) in shares.into_iter().enumerate() {
            let mut shard = self.lock(idx);
            dropped.extend(shard.take_deferred_drops());
            shard.set_budget(share);
            dropped.extend(shard.enforce_budget(now));
        }
        dropped
    }

    /// Plans a batch of range retrievals, locking each shard exactly
    /// once no matter how many of the batch's caches it owns. Plans
    /// come back in request order; within a shard the requests are
    /// applied in request order, and caches on different shards are
    /// independent, so each plan is identical to what a sequence of
    /// [`ShardedCacheManager::plan_get`] calls would have produced
    /// (and, with `shards = 1`, to [`CacheManager::plan_get_batch`]).
    pub fn plan_get_batch(
        &self,
        requests: &[(BackendSubId, TimeRange)],
        now: Timestamp,
    ) -> Vec<GetPlan> {
        let Some(p) = self.profile.get() else {
            return self.plan_get_batch_staged(requests, now, &Profiler::disabled(), &mut None);
        };
        let mut timer = p.profiler.op();
        let plans = self.plan_get_batch_staged(requests, now, &p.profiler, &mut timer);
        p.profiler.finish(timer, StagePath::GetTotal, 0);
        plans
    }

    /// [`ShardedCacheManager::plan_get_batch`] recording its
    /// route / lock-wait / lookup stages on a caller-owned
    /// [`OpTimer`] — the broker threads its `get_all_pending` timer
    /// through here so one operation envelope spans broker and cache
    /// layers. Plans are identical to the plain batch call.
    pub fn plan_get_batch_staged(
        &self,
        requests: &[(BackendSubId, TimeRange)],
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Vec<GetPlan> {
        if self.shards.len() == 1 {
            return self.plan_shard_group(0, requests, now, profiler, timer);
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &(bs, _)) in requests.iter().enumerate() {
            by_shard[self.shard_index(bs)].push(i);
        }
        profiler.stage(timer, StagePath::GetRoute, 0);
        let mut plans: Vec<Option<GetPlan>> = (0..requests.len()).map(|_| None).collect();
        for (idx, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let group: Vec<(BackendSubId, TimeRange)> =
                indices.iter().map(|&i| requests[i]).collect();
            let group_plans = self.plan_shard_group(idx, &group, now, profiler, timer);
            for (&i, plan) in indices.iter().zip(group_plans) {
                plans[i] = Some(plan);
            }
        }
        plans.into_iter().map(|p| p.expect("planned")).collect()
    }

    /// Plans one shard's slice of a batch, in slice order: an
    /// optimistic prefix (lock-free snapshot reads) up to the first
    /// seqlock conflict, then — if anything remains — one lock
    /// acquisition serving the whole remainder through the
    /// batch-staged manager call. Stopping the optimistic prefix at
    /// the first failure (rather than attempting every request) keeps
    /// per-request telemetry events in request order: the lock drains
    /// the prefix's enqueued hit records before the locked remainder
    /// emits its own.
    fn plan_shard_group(
        &self,
        idx: usize,
        group: &[(BackendSubId, TimeRange)],
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Vec<GetPlan> {
        let mut plans = Vec::with_capacity(group.len());
        while plans.len() < group.len() {
            let (bs, range) = group[plans.len()];
            match self.try_optimistic_plan(idx, bs, range, now) {
                Some(plan) => plans.push(plan),
                None => break,
            }
        }
        if !plans.is_empty() {
            profiler.stage(timer, StagePath::GetOptimisticRead, 0);
        }
        if plans.len() < group.len() {
            if self.read_paths.is_some() {
                profiler.stage(timer, StagePath::GetSeqlockRetry, 0);
            }
            let rest = &group[plans.len()..];
            // One lock-wait boundary per shard, then the whole
            // remainder through the batch-staged manager call:
            // stage-timer cost per operation is bounded by the shard
            // count, not the batch size.
            let mut shard = self.lock_staged(idx, timer, StagePath::GetLockWait, 0);
            plans.extend(shard.plan_get_batch_staged(rest, now, profiler, timer));
            for &(bs, _) in rest {
                shard.refresh_read_slot(bs);
            }
            let tail = shard.tail_get_stage();
            shard.unlock_staged(timer, tail);
        }
        plans
    }

    /// Applies a batch of `ACK`s, locking each shard exactly once.
    /// Unknown caches are skipped (mirroring
    /// [`CacheManager::ack_consume_batch`]); drops come back grouped by
    /// shard, in request order within a shard.
    pub fn ack_consume_batch(
        &self,
        requests: &[(BackendSubId, SubscriberId, Timestamp)],
        now: Timestamp,
    ) -> Vec<DroppedObject> {
        let Some(p) = self.profile.get() else {
            return self.ack_consume_batch_staged(requests, now, &Profiler::disabled(), &mut None);
        };
        let mut timer = p.profiler.op();
        let out = self.ack_consume_batch_staged(requests, now, &p.profiler, &mut timer);
        p.profiler.finish(timer, StagePath::GetTotal, 0);
        out
    }

    /// [`ShardedCacheManager::ack_consume_batch`] recording lock-wait
    /// and ack-consume stages on a caller-owned [`OpTimer`].
    pub fn ack_consume_batch_staged(
        &self,
        requests: &[(BackendSubId, SubscriberId, Timestamp)],
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Vec<DroppedObject> {
        if self.shards.len() == 1 {
            let mut shard = self.lock_staged(0, timer, StagePath::GetLockWait, 0);
            let batch = shard.ack_consume_batch(requests, now);
            let mut dropped = shard.take_deferred_drops();
            dropped.extend(batch);
            shard.unlock_staged(timer, StagePath::GetAck);
            return dropped;
        }
        if requests.len() <= 1 {
            let mut dropped = Vec::new();
            for &(bs, sub, up_to) in requests {
                let idx = self.shard_index(bs);
                let mut shard = self.lock_staged(idx, timer, StagePath::GetLockWait, 0);
                let batch = shard.ack_consume(bs, sub, up_to, now);
                dropped.extend(shard.take_deferred_drops());
                shard.unlock_staged(timer, StagePath::GetAck);
                if let Ok(batch) = batch {
                    dropped.extend(batch);
                }
            }
            return dropped;
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &(bs, _, _)) in requests.iter().enumerate() {
            by_shard[self.shard_index(bs)].push(i);
        }
        profiler.stage(timer, StagePath::GetRoute, 0);
        let mut dropped = Vec::new();
        for (idx, indices) in by_shard.iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let group: Vec<(BackendSubId, SubscriberId, Timestamp)> =
                indices.iter().map(|&i| requests[i]).collect();
            let mut shard = self.lock_staged(idx, timer, StagePath::GetLockWait, 0);
            let batch = shard.ack_consume_batch(&group, now);
            dropped.extend(shard.take_deferred_drops());
            shard.unlock_staged(timer, StagePath::GetAck);
            dropped.extend(batch);
        }
        dropped
    }

    /// Records objects fetched from the cluster due to a cache miss.
    pub fn record_miss_fetch(
        &self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    ) {
        self.shard(bs).record_miss_fetch(bs, objects, bytes, now);
    }

    /// Records bytes pulled from the cluster to populate `bs`'s cache
    /// (`Vol`), accounted to the owning shard.
    pub fn record_populate(&self, bs: BackendSubId, bytes: ByteSize) {
        self.shard(bs).record_populate(bytes);
    }

    /// Per-subscription analytical-model inputs across every shard —
    /// the sharded counterpart of [`CacheManager::model_inputs`]. Locks
    /// one shard at a time, never two at once.
    pub fn model_inputs(&self, now: Timestamp) -> Vec<bad_telemetry::SubscriptionModel> {
        let mut models = Vec::new();
        for idx in 0..self.shards.len() {
            models.extend(self.lock(idx).model_inputs(now));
        }
        models
    }

    /// Periodic maintenance: runs every shard's TTL retune/expiry pass
    /// in shard order, then (with more than one shard) rebalances the
    /// budget shares by occupancy. With one shard this is exactly
    /// [`CacheManager::maintain`].
    pub fn maintain(&self, now: Timestamp) -> Vec<DroppedObject> {
        let mut dropped = Vec::new();
        for idx in 0..self.shards.len() {
            dropped.extend(self.maintain_shard(idx, now));
        }
        if self.shards.len() > 1 {
            match self.profile.get() {
                Some(p) => {
                    let mut timer = p.profiler.op();
                    dropped.extend(self.rebalance(now));
                    p.profiler
                        .stage(&mut timer, StagePath::MaintainRebalance, 0);
                }
                None => dropped.extend(self.rebalance(now)),
            }
        }
        if let Some(p) = self.profile.get() {
            // Fold this thread's buffered stage samples so scrapes lag
            // a quiet thread by at most one maintenance interval.
            p.profiler.flush_thread();
        }
        dropped
    }

    /// Runs one shard's maintenance pass — the unit of work the
    /// prototype runtime fans out to its shard workers. TTL retuning
    /// uses the shard-local `Σ n_j·ρ_j` against the shard's budget
    /// share.
    pub fn maintain_shard(&self, idx: usize, now: Timestamp) -> Vec<DroppedObject> {
        let Some(p) = self.profile.get() else {
            let mut shard = self.lock(idx);
            let maintained = shard.maintain(now);
            let mut out = shard.take_deferred_drops();
            out.extend(maintained);
            return out;
        };
        let mut timer = p.profiler.op();
        let mut shard = self.lock_staged(idx, &mut timer, StagePath::MaintainLockWait, 0);
        let maintained = shard.maintain_staged(now, &p.profiler, &mut timer);
        let mut dropped = shard.take_deferred_drops();
        dropped.extend(maintained);
        drop(shard);
        p.profiler.finish(timer, StagePath::MaintainTotal, 0);
        dropped
    }

    /// Rebalances the per-shard budget shares: half of `B` is split
    /// equally (a floor of `B/2N` per shard, so a currently-cold shard
    /// always keeps real headroom to grow into), the other half in
    /// proportion to current occupancy (`w_i = occ_i + 1`, so the
    /// weights never vanish) — a hot shard borrows cold shards'
    /// proportional half while the exact-sum invariant `Σ share_i = B`
    /// holds. Shards shrunk below their occupancy evict down
    /// immediately; the returned drops are those evictions.
    ///
    /// Locks one shard at a time — never two at once — so it can run
    /// concurrently with data-path operations without deadlock.
    pub fn rebalance(&self, now: Timestamp) -> Vec<DroppedObject> {
        let n = self.shards.len();
        if n <= 1 {
            return Vec::new();
        }
        let occupancy: Vec<u64> = (0..n)
            .map(|i| self.lock(i).total_bytes().as_u64())
            .collect();
        let weights: Vec<u128> = occupancy.iter().map(|&o| u128::from(o) + 1).collect();
        let total_weight: u128 = weights.iter().sum();
        let equal_total = self.budget.as_u64() / 2;
        let prop_total = u128::from(self.budget.as_u64() - equal_total);
        let mut shares: Vec<u64> = split_budget(ByteSize::new(equal_total), n as u64)
            .into_iter()
            .zip(&weights)
            .map(|(floor, w)| floor.as_u64() + (prop_total * w / total_weight) as u64)
            .collect();
        // Flooring leaves a few bytes unassigned; hand them out in
        // shard order so the shares sum to B exactly.
        let mut leftover = self.budget.as_u64() - shares.iter().sum::<u64>();
        for share in shares.iter_mut() {
            if leftover == 0 {
                break;
            }
            *share += 1;
            leftover -= 1;
        }
        let mut dropped = Vec::new();
        for (idx, share) in shares.into_iter().enumerate() {
            let mut shard = self.lock(idx);
            dropped.extend(shard.take_deferred_drops());
            if shard.budget() != ByteSize::new(share) {
                shard.set_budget(ByteSize::new(share));
                dropped.extend(shard.enforce_budget(now));
            }
        }
        dropped
    }

    /// The expected aggregate size `Σ ρ_i·T_i` under current TTLs,
    /// summed across shards (Fig. 5a overlay).
    pub fn expected_ttl_size(&self, now: Timestamp) -> ByteSize {
        (0..self.shards.len())
            .map(|i| self.lock(i).expected_ttl_size(now))
            .sum()
    }

    /// Visits every result cache across all shards, in shard order then
    /// id order within a shard. (References cannot escape the shard
    /// locks, hence the visitor shape instead of an iterator.)
    pub fn for_each_cache(&self, mut f: impl FnMut(&ResultCache)) {
        for i in 0..self.shards.len() {
            let shard = self.lock(i);
            for cache in shard.iter_caches() {
                f(cache);
            }
        }
    }

    /// Runs `f` on `bs`'s cache (or `None` when it does not exist)
    /// while holding the owning shard's lock.
    pub fn with_cache<R>(&self, bs: BackendSubId, f: impl FnOnce(Option<&ResultCache>) -> R) -> R {
        let shard = self.shard(bs);
        f(shard.cache(bs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bad_types::{ObjectId, SimDuration};

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn obj(id: u64, ts_secs: u64, size: u64) -> NewObject {
        NewObject {
            id: ObjectId::new(id),
            ts: t(ts_secs),
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(500),
        }
    }

    fn sharded(policy: PolicyName, budget: u64, shards: usize) -> ShardedCacheManager {
        ShardedCacheManager::new(
            policy,
            CacheConfig {
                budget: ByteSize::new(budget),
                ..CacheConfig::default()
            },
            shards,
        )
    }

    fn with_caches(mgr: &ShardedCacheManager, n: u64) {
        for i in 0..n {
            let bs = BackendSubId::new(i);
            mgr.create_cache(bs, Timestamp::ZERO);
            mgr.add_subscriber(bs, SubscriberId::new(1000 + i)).unwrap();
        }
    }

    #[test]
    fn budget_shares_sum_to_global_budget() {
        for (budget, shards) in [(100u64, 3usize), (7, 4), (1, 8), (1000, 1)] {
            let mgr = sharded(PolicyName::Lsc, budget, shards);
            let sum: u64 = (0..mgr.shard_count())
                .map(|i| mgr.shard_budget(i).as_u64())
                .sum();
            assert_eq!(sum, budget, "budget {budget} over {shards} shards");
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let mgr = sharded(PolicyName::Lru, 100, 0);
        assert_eq!(mgr.shard_count(), 1);
        assert_eq!(mgr.shard_budget(0), ByteSize::new(100));
    }

    #[test]
    fn routing_is_deterministic_and_single_shard_maps_to_zero() {
        let one = sharded(PolicyName::Lsc, 100, 1);
        let four = sharded(PolicyName::Lsc, 100, 4);
        for i in 0..64u64 {
            let bs = BackendSubId::new(i);
            assert_eq!(one.shard_index(bs), 0);
            assert_eq!(four.shard_index(bs), four.shard_index(bs));
            assert!(four.shard_index(bs) < 4);
        }
    }

    #[test]
    fn routing_spreads_across_shards() {
        let mgr = sharded(PolicyName::Lsc, 1000, 4);
        let mut seen = [false; 4];
        for i in 0..64u64 {
            seen[mgr.shard_index(BackendSubId::new(i))] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "64 ids left a shard empty: {seen:?}"
        );
    }

    #[test]
    fn eviction_respects_per_shard_shares_and_global_budget() {
        let mgr = sharded(PolicyName::Lsc, 400, 4);
        with_caches(&mgr, 16);
        let mut id = 0u64;
        for sec in 1..=20u64 {
            for c in 0..16u64 {
                mgr.insert(BackendSubId::new(c), obj(id, sec, 30), t(sec))
                    .unwrap();
                id += 1;
            }
            assert!(mgr.total_bytes() <= ByteSize::new(400));
        }
        assert!(mgr.metrics().evicted_objects > 0);
    }

    #[test]
    fn rebalance_moves_budget_toward_occupied_shards() {
        let mgr = sharded(PolicyName::Lsc, 400, 4);
        with_caches(&mgr, 16);
        // Load exactly one cache heavily; its shard should end up with
        // most of the budget after a rebalance.
        let hot = BackendSubId::new(0);
        let hot_shard = mgr.shard_index(hot);
        for sec in 1..=10u64 {
            mgr.insert(hot, obj(sec, sec, 10), t(sec)).unwrap();
        }
        mgr.rebalance(t(11));
        let hot_share = mgr.shard_budget(hot_shard).as_u64();
        for idx in 0..4 {
            if idx != hot_shard {
                assert!(
                    mgr.shard_budget(idx).as_u64() < hot_share,
                    "cold shard {idx} kept share >= hot shard's {hot_share}"
                );
            }
            // The equal half guarantees every shard a B/2N floor.
            assert!(
                mgr.shard_budget(idx).as_u64() >= 400 / 8,
                "shard {idx} starved below the B/2N floor"
            );
        }
        let sum: u64 = (0..4).map(|i| mgr.shard_budget(i).as_u64()).sum();
        assert_eq!(sum, 400);
    }

    #[test]
    fn rebalance_shrink_evicts_down_to_the_new_share() {
        let mgr = sharded(PolicyName::Lru, 100, 2);
        // Occupy one shard right at the global budget split, then force
        // a rebalance that shrinks the other; totals stay within B.
        with_caches(&mgr, 8);
        let mut id = 0u64;
        for sec in 1..=10u64 {
            for c in 0..8u64 {
                mgr.insert(BackendSubId::new(c), obj(id, sec, 7), t(sec))
                    .unwrap();
                id += 1;
            }
        }
        let dropped = mgr.rebalance(t(20));
        let total: u64 = (0..2).map(|i| mgr.shard_budget(i).as_u64()).sum();
        assert_eq!(total, 100);
        assert!(mgr.total_bytes() <= ByteSize::new(100));
        // Any rebalance evictions are tagged as such.
        assert!(dropped
            .iter()
            .all(|d| d.reason == crate::manager::DropReason::Evicted));
    }

    #[test]
    fn single_shard_maintain_skips_rebalance_and_keeps_budget() {
        let mgr = sharded(PolicyName::Ttl, 1000, 1);
        with_caches(&mgr, 2);
        mgr.insert(BackendSubId::new(0), obj(1, 1, 100), t(1))
            .unwrap();
        mgr.maintain(t(120));
        assert_eq!(mgr.shard_budget(0), ByteSize::new(1000));
    }

    #[test]
    fn metrics_aggregate_across_shards() {
        let mgr = sharded(PolicyName::Lru, 10_000, 4);
        with_caches(&mgr, 8);
        for c in 0..8u64 {
            mgr.insert(BackendSubId::new(c), obj(c, 1, 50), t(1))
                .unwrap();
        }
        let m = mgr.metrics();
        assert_eq!(m.inserted_objects, 8);
        assert_eq!(m.inserted_bytes, ByteSize::new(400));
        assert_eq!(mgr.total_bytes(), ByteSize::new(400));
        assert_eq!(mgr.cache_count(), 8);
    }

    #[test]
    fn profiler_attaches_lock_sites_and_stage_tree() {
        use bad_telemetry::{ProfileConfig, Registry};

        let registry = Registry::new();
        let profiler = Profiler::new(&registry, ProfileConfig::default());
        let mgr = sharded(PolicyName::Lsc, 400, 2);
        mgr.set_profiler(&profiler);
        with_caches(&mgr, 8);
        let twin = sharded(PolicyName::Lsc, 400, 2);
        with_caches(&twin, 8);

        let mut id = 0u64;
        for sec in 1..=5u64 {
            for c in 0..8u64 {
                let bs = BackendSubId::new(c);
                mgr.insert(bs, obj(id, sec, 30), t(sec)).unwrap();
                twin.insert(bs, obj(id, sec, 30), t(sec)).unwrap();
                id += 1;
            }
        }
        let requests: Vec<_> = (0..8u64)
            .map(|c| (BackendSubId::new(c), TimeRange::closed(t(0), t(5))))
            .collect();
        let plans = mgr.plan_get_batch(&requests, t(6));
        let twin_plans = twin.plan_get_batch(&requests, t(6));
        mgr.maintain(t(7));
        twin.maintain(t(7));
        profiler.flush_thread();

        // Stage tree covers all three roots' hot leaves. Lock-wait
        // stages are fed only by *contended* acquisitions (mirroring
        // the wait histogram), so this single-threaded tape must show
        // none at all.
        let folded = profiler.render_folded();
        assert!(folded.contains("insert;apply "), "{folded}");
        assert!(!folded.contains("lock_wait"), "{folded}");
        assert!(folded.contains("get_all_pending;lookup "), "{folded}");
        assert!(folded.contains("maintain;ttl_expiry "), "{folded}");
        // …the per-shard lock sites are registered and counting…
        let text = registry.render();
        assert!(
            text.contains(r#"bad_profile_lock_acquisitions_total{site="cache_shard0"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"bad_profile_lock_acquisitions_total{site="cache_shard1"}"#),
            "{text}"
        );
        // …and profiling is metadata-only: an unprofiled twin fed the
        // same tape lands in the same state with the same plans.
        assert_eq!(plans, twin_plans);
        assert_eq!(mgr.total_bytes(), twin.total_bytes());
        assert_eq!(
            mgr.metrics().evicted_objects,
            twin.metrics().evicted_objects
        );
    }

    #[test]
    fn per_shard_ttl_retune_balances_each_share() {
        // Satellite: after a retune, every shard satisfies the eq. 5
        // balance Σ ρ_i·T_i ≈ shard budget against its *own* share (as
        // long as its TTLs are not clamped).
        let mgr = ShardedCacheManager::new(
            PolicyName::Ttl,
            CacheConfig {
                budget: ByteSize::from_mib(8),
                ttl_recompute_interval: SimDuration::from_secs(60),
                ..CacheConfig::default()
            },
            4,
        );
        for i in 0..16u64 {
            let bs = BackendSubId::new(i);
            mgr.create_cache(bs, Timestamp::ZERO);
            mgr.add_subscriber(bs, SubscriberId::new(1000 + i)).unwrap();
        }
        // Sustained growth on every cache: ~2 KB/s for 5 minutes.
        let mut id = 0u64;
        for sec in 1..=300u64 {
            for i in 0..16u64 {
                mgr.insert(BackendSubId::new(i), obj(id, sec, 2048), t(sec))
                    .unwrap();
                id += 1;
            }
        }
        let now = t(301);
        for idx in 0..mgr.shard_count() {
            mgr.maintain_shard(idx, now);
            let share = mgr.shard_budget(idx).as_u64() as f64;
            let expected = {
                let shard = mgr.lock(idx);
                shard.expected_ttl_size(now).as_u64() as f64
            };
            assert!(
                (expected - share).abs() / share < 0.02,
                "shard {idx}: Σρ_iT_i = {expected}, share = {share}"
            );
        }
    }
}
