//! Shadow-policy ghost caches: online counterfactual policy evaluation.
//!
//! The paper's contribution is a *comparison* of eviction/expiration
//! policies, yet a running broker only ever observes the one policy it
//! was configured with. A [`ShadowEvaluator`] replays the live access
//! stream — insert, retrieval plan, consumption ack, unsubscription —
//! through miniature *ghost* simulations of every catalog policy
//! ([`crate::policy_catalog`]), each honoring a proportional share of
//! the live budget `B`, and answers three questions online:
//!
//! * **counterfactual hit ratio** — what fraction of requests would
//!   policy *p* have served from cache on this exact workload?
//! * **regret** — how many objects did the live policy miss that ghost
//!   *p* would have hit (and vice versa)?
//! * **eviction audit** — when the live policy evicted, which victim
//!   would each alternative policy have picked, and did they agree?
//!
//! # Metadata only
//!
//! Ghosts are [`CacheManager`]s like the live one — and the cache tier
//! stores *descriptors* (ids, sizes, timestamps, subscriber sets),
//! never payload bytes, so a full ghost fleet costs a small constant
//! factor in descriptor memory and zero payload copies.
//!
//! # Sampling
//!
//! `shadow_sample_every_n = n` spatially samples backend subscriptions:
//! a stream is shadowed iff `mix64(bs ^ SALT) % n == 0`, so roughly
//! `1/n` of streams pay ghost updates and the rest skip the evaluator
//! entirely (one hash per access). The hash is salted so sampling does
//! not correlate with [`crate::ShardedCacheManager`]'s shard routing,
//! which uses the same mixer unsalted. Ghost budgets are scaled to
//! `B/n` to match the sampled fraction of the load. `n = 1` shadows
//! everything at full budget — the exact mode the parity tests use.
//!
//! Eviction audits are sampled on the same `n` (every n-th live
//! eviction), bounding the `O(policies × caches)` victim rescans.

use std::collections::{BTreeMap, VecDeque};

use bad_telemetry::json::ObjectWriter;
use bad_telemetry::{Counter, Histogram, Registry};
use bad_types::{BackendSubId, ByteSize, ObjectId, SubscriberId, TimeRange, Timestamp};

use crate::admission::AdmissionControl;
use crate::manager::{CacheConfig, CacheManager};
use crate::metrics::CacheMetrics;
use crate::object::{CachedObject, NewObject};
use crate::policy::{policy_catalog, EvictionPolicy, PolicyKind, PolicyName};
use crate::result_cache::{GetPlan, ResultCache};
use crate::sharded::mix64;

/// Decorrelates the sampling hash from the shard-routing hash, which
/// uses the same mixer on the raw id.
const SAMPLE_SALT: u64 = 0x51AD_0077_C0FF_EE11;

/// Tuning knobs of the shadow evaluator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShadowConfig {
    /// Shadow one in `n` backend subscriptions (and audit one in `n`
    /// evictions). `1` shadows everything; `0` is treated as `1`.
    pub sample_every_n: u32,
    /// Bounded capacity of the eviction-decision audit ring; the oldest
    /// record is overwritten when full ([`ShadowSnapshot::audit_dropped`]
    /// counts the overwrites).
    pub audit_capacity: usize,
}

impl Default for ShadowConfig {
    /// Defaults chosen for production overhead: the catalog holds seven
    /// policies, so every sampled access costs ~7 ghost updates and the
    /// sampling rate must satisfy `7/n ≤ 0.1` to keep the ghost fleet
    /// under the 10 % overhead gate (`shadow_overhead --smoke`).
    fn default() -> Self {
        Self {
            sample_every_n: 128,
            audit_capacity: 128,
        }
    }
}

/// Registry handles for one ghost's `bad_cache_shadow_*` series, all
/// labeled `{policy="..."}`.
#[derive(Debug)]
struct GhostSeries {
    hit_objects: Counter,
    hit_bytes: Counter,
    miss_objects: Counter,
    miss_bytes: Counter,
    regret_live_hit_ghost_miss: Counter,
    regret_ghost_hit_live_miss: Counter,
    victim_score_milli: Histogram,
}

impl GhostSeries {
    fn new(registry: &Registry, policy: PolicyName) -> Self {
        let labels = [("policy", policy.as_str())];
        Self {
            hit_objects: registry.counter_with("bad_cache_shadow_hit_objects_total", &labels),
            hit_bytes: registry.counter_with("bad_cache_shadow_hit_bytes_total", &labels),
            miss_objects: registry.counter_with("bad_cache_shadow_miss_objects_total", &labels),
            miss_bytes: registry.counter_with("bad_cache_shadow_miss_bytes_total", &labels),
            regret_live_hit_ghost_miss: registry
                .counter_with("bad_cache_shadow_regret_live_hit_ghost_miss_total", &labels),
            regret_ghost_hit_live_miss: registry
                .counter_with("bad_cache_shadow_regret_ghost_hit_live_miss_total", &labels),
            victim_score_milli: registry
                .histogram_with("bad_cache_shadow_victim_score_milli", &labels),
        }
    }
}

/// One miniature policy simulation.
#[derive(Debug)]
struct Ghost {
    policy: PolicyName,
    mgr: CacheManager,
    regret_live_hit_ghost_miss: u64,
    regret_ghost_hit_live_miss: u64,
    /// Per-stream hit credit: objects/bytes this ghost served from its
    /// cache that the live cache missed. The broker fetches those
    /// misses from the cluster and reports them via
    /// `record_miss_fetch`; the banked credit is consumed there so the
    /// counterfactual ghost is not charged for fetches it would have
    /// avoided.
    credit: BTreeMap<BackendSubId, (u64, u64)>,
    series: Option<GhostSeries>,
}

/// What one alternative policy would have evicted (see
/// [`AuditRecord::alternatives`]). Only eviction-kind policies appear;
/// TTL and NC never pick victims.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditChoice {
    /// The alternative policy.
    pub policy: PolicyName,
    /// The victim cache it would have picked (`None` when every cache
    /// was empty at decision time).
    pub victim: Option<BackendSubId>,
    /// Its φ/s score of that victim — the quantity it minimised.
    pub score: f64,
    /// Whether it agrees with the live policy's choice.
    pub agrees: bool,
}

/// One audited live eviction with every alternative's counterfactual
/// choice.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRecord {
    /// Virtual time of the eviction.
    pub at: Timestamp,
    /// The policy that made the call.
    pub live_policy: PolicyName,
    /// The cache the live policy evicted from.
    pub victim: BackendSubId,
    /// The evicted object.
    pub object: ObjectId,
    /// Its size.
    pub bytes: ByteSize,
    /// The live policy's φ/s score of the victim cache.
    pub score: f64,
    /// What each other eviction policy would have picked instead.
    pub alternatives: Vec<AuditChoice>,
}

/// Per-policy counterfactual counters, merged across shards at read
/// time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GhostCounters {
    /// Objects the ghost would have served from cache.
    pub hit_objects: u64,
    /// Bytes the ghost would have served from cache.
    pub hit_bytes: u64,
    /// Objects the ghost would have fetched from the cluster.
    pub miss_objects: u64,
    /// Bytes the ghost would have fetched from the cluster.
    pub miss_bytes: u64,
    /// Objects the live policy hit that this ghost missed.
    pub regret_live_hit_ghost_miss: u64,
    /// Objects this ghost hit that the live policy missed.
    pub regret_ghost_hit_live_miss: u64,
    /// Objects the ghost evicted.
    pub evicted_objects: u64,
    /// Objects the ghost expired.
    pub expired_objects: u64,
    /// The ghost's current occupancy.
    pub occupancy_bytes: u64,
}

impl GhostCounters {
    /// Counterfactual hit ratio in `[0, 1]`; `None` before any request.
    pub fn hit_ratio(&self) -> Option<f64> {
        let requested = self.hit_objects + self.miss_objects;
        if requested == 0 {
            None
        } else {
            Some(self.hit_objects as f64 / requested as f64)
        }
    }

    /// Adds another shard's counters into this one.
    pub fn merge(&mut self, other: &GhostCounters) {
        self.hit_objects += other.hit_objects;
        self.hit_bytes += other.hit_bytes;
        self.miss_objects += other.miss_objects;
        self.miss_bytes += other.miss_bytes;
        self.regret_live_hit_ghost_miss += other.regret_live_hit_ghost_miss;
        self.regret_ghost_hit_live_miss += other.regret_ghost_hit_live_miss;
        self.evicted_objects += other.evicted_objects;
        self.expired_objects += other.expired_objects;
        self.occupancy_bytes += other.occupancy_bytes;
    }

    /// The counters accrued since `base` was captured — the
    /// delta-encoding idiom the health timeseries uses, applied to
    /// ghosts so the autopilot judges the *current* window instead of
    /// the cumulative history. Monotone counters subtract
    /// (saturating, so a ghost reset never underflows); the occupancy
    /// gauge keeps its current value.
    pub fn delta_since(&self, base: &GhostCounters) -> GhostCounters {
        GhostCounters {
            hit_objects: self.hit_objects.saturating_sub(base.hit_objects),
            hit_bytes: self.hit_bytes.saturating_sub(base.hit_bytes),
            miss_objects: self.miss_objects.saturating_sub(base.miss_objects),
            miss_bytes: self.miss_bytes.saturating_sub(base.miss_bytes),
            regret_live_hit_ghost_miss: self
                .regret_live_hit_ghost_miss
                .saturating_sub(base.regret_live_hit_ghost_miss),
            regret_ghost_hit_live_miss: self
                .regret_ghost_hit_live_miss
                .saturating_sub(base.regret_ghost_hit_live_miss),
            evicted_objects: self.evicted_objects.saturating_sub(base.evicted_objects),
            expired_objects: self.expired_objects.saturating_sub(base.expired_objects),
            occupancy_bytes: self.occupancy_bytes,
        }
    }
}

/// One ghost's identity and counters in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct GhostReport {
    /// The ghost's policy.
    pub policy: PolicyName,
    /// Its counterfactual counters.
    pub counters: GhostCounters,
}

/// A point-in-time view of the whole evaluator (or, merged, of every
/// shard's evaluator).
#[derive(Clone, Debug, PartialEq)]
pub struct ShadowSnapshot {
    /// The policy the real cache runs.
    pub live_policy: PolicyName,
    /// The sampling rate in force (normalised: never 0).
    pub sample_every_n: u32,
    /// Accesses (retrieval plans + inserts) that updated the ghosts.
    pub sampled_accesses: u64,
    /// Accesses that skipped the ghosts entirely.
    pub skipped_accesses: u64,
    /// Per-policy reports, in catalog order.
    pub ghosts: Vec<GhostReport>,
    /// The audit ring's contents, oldest first (merged snapshots sort
    /// by eviction time).
    pub audit: Vec<AuditRecord>,
    /// Audit records overwritten because the ring was full.
    pub audit_dropped: u64,
}

impl ShadowSnapshot {
    /// Folds another shard's snapshot into this one.
    pub fn merge(&mut self, other: &ShadowSnapshot) {
        self.sampled_accesses += other.sampled_accesses;
        self.skipped_accesses += other.skipped_accesses;
        self.audit_dropped += other.audit_dropped;
        for report in &other.ghosts {
            match self.ghosts.iter_mut().find(|g| g.policy == report.policy) {
                Some(mine) => mine.counters.merge(&report.counters),
                None => self.ghosts.push(report.clone()),
            }
        }
        self.audit.extend(other.audit.iter().cloned());
        self.audit.sort_by_key(|r| r.at);
    }

    /// The report for one policy, if present.
    pub fn ghost(&self, policy: PolicyName) -> Option<&GhostReport> {
        self.ghosts.iter().find(|g| g.policy == policy)
    }

    /// The windowed view since `base`: every ghost's counters become
    /// [`GhostCounters::delta_since`] the matching ghost in `base`
    /// (ghosts absent from `base` keep their cumulative counters). The
    /// audit ring is not windowed — deltas carry no audit records.
    pub fn delta_since(&self, base: &ShadowSnapshot) -> ShadowSnapshot {
        ShadowSnapshot {
            live_policy: self.live_policy,
            sample_every_n: self.sample_every_n,
            sampled_accesses: self.sampled_accesses.saturating_sub(base.sampled_accesses),
            skipped_accesses: self.skipped_accesses.saturating_sub(base.skipped_accesses),
            ghosts: self
                .ghosts
                .iter()
                .map(|g| GhostReport {
                    policy: g.policy,
                    counters: match base.ghost(g.policy) {
                        Some(b) => g.counters.delta_since(&b.counters),
                        None => g.counters,
                    },
                })
                .collect(),
            audit: Vec::new(),
            audit_dropped: self.audit_dropped.saturating_sub(base.audit_dropped),
        }
    }

    /// The ghost with the highest counterfactual hit ratio (first in
    /// catalog order on ties); `None` before any request.
    pub fn best_policy(&self) -> Option<PolicyName> {
        let mut best: Option<(f64, PolicyName)> = None;
        for g in &self.ghosts {
            let Some(ratio) = g.counters.hit_ratio() else {
                continue;
            };
            let better = match best {
                Some((r, _)) => ratio > r,
                None => true,
            };
            if better {
                best = Some((ratio, g.policy));
            }
        }
        best.map(|(_, p)| p)
    }

    /// Renders the `/policies` JSON body: live vs. ghost hit ratios,
    /// cumulative regret, the current best policy and the most recent
    /// audited evictions.
    pub fn to_json(&self, live: &CacheMetrics) -> String {
        self.to_json_with(live, None)
    }

    /// [`ShadowSnapshot::to_json`] plus the autopilot controller's
    /// status (`"autopilot": null` when the autopilot is disabled).
    pub fn to_json_with(
        &self,
        live: &CacheMetrics,
        autopilot: Option<&crate::autopilot::AutopilotStatus>,
    ) -> String {
        let mut out = String::new();
        {
            let mut obj = ObjectWriter::new(&mut out);
            obj.field_str("live_policy", self.live_policy.as_str());
            obj.field_u64("sample_every_n", u64::from(self.sample_every_n));
            obj.field_u64("sampled_accesses", self.sampled_accesses);
            obj.field_u64("skipped_accesses", self.skipped_accesses);
            match self.best_policy() {
                Some(p) => obj.field_str("best_policy", p.as_str()),
                None => obj.field_raw("best_policy", "null"),
            }
            match autopilot {
                Some(a) => obj.field_raw("autopilot", &a.to_json()),
                None => obj.field_raw("autopilot", "null"),
            }
            let mut live_json = String::new();
            {
                let mut lw = ObjectWriter::new(&mut live_json);
                lw.field_u64("hit_objects", live.hit_objects);
                lw.field_u64("miss_objects", live.miss_objects);
                lw.field_u64("hit_bytes", live.hit_bytes.as_u64());
                lw.field_u64("miss_bytes", live.miss_bytes.as_u64());
                match live.hit_ratio() {
                    Some(r) => lw.field_f64("hit_ratio", r),
                    None => lw.field_raw("hit_ratio", "null"),
                }
            }
            obj.field_raw("live", &live_json);
            let ghost_rows: Vec<String> = self
                .ghosts
                .iter()
                .map(|g| {
                    let mut row = String::new();
                    {
                        let mut gw = ObjectWriter::new(&mut row);
                        gw.field_str("policy", g.policy.as_str());
                        gw.field_u64("hit_objects", g.counters.hit_objects);
                        gw.field_u64("miss_objects", g.counters.miss_objects);
                        gw.field_u64("hit_bytes", g.counters.hit_bytes);
                        gw.field_u64("miss_bytes", g.counters.miss_bytes);
                        match g.counters.hit_ratio() {
                            Some(r) => gw.field_f64("hit_ratio", r),
                            None => gw.field_raw("hit_ratio", "null"),
                        }
                        gw.field_u64(
                            "regret_live_hit_ghost_miss",
                            g.counters.regret_live_hit_ghost_miss,
                        );
                        gw.field_u64(
                            "regret_ghost_hit_live_miss",
                            g.counters.regret_ghost_hit_live_miss,
                        );
                        gw.field_u64("evicted_objects", g.counters.evicted_objects);
                        gw.field_u64("expired_objects", g.counters.expired_objects);
                        gw.field_u64("occupancy_bytes", g.counters.occupancy_bytes);
                    }
                    row
                })
                .collect();
            obj.field_raw("ghosts", &format!("[{}]", ghost_rows.join(",")));
            obj.field_u64("audit_dropped", self.audit_dropped);
            obj.field_u64("audit_len", self.audit.len() as u64);
            // The most recent audits only: the ring can hold hundreds.
            let audit_rows: Vec<String> = self
                .audit
                .iter()
                .rev()
                .take(16)
                .map(|r| {
                    let mut row = String::new();
                    {
                        let mut aw = ObjectWriter::new(&mut row);
                        aw.field_u64("at_us", r.at.as_micros());
                        aw.field_str("live_policy", r.live_policy.as_str());
                        aw.field_u64("victim_cache", r.victim.as_u64());
                        aw.field_u64("object", r.object.as_u64());
                        aw.field_u64("bytes", r.bytes.as_u64());
                        aw.field_f64("score", r.score);
                        let alts: Vec<String> = r
                            .alternatives
                            .iter()
                            .map(|alt| {
                                let mut a = String::new();
                                {
                                    let mut w = ObjectWriter::new(&mut a);
                                    w.field_str("policy", alt.policy.as_str());
                                    match alt.victim {
                                        Some(v) => w.field_u64("victim_cache", v.as_u64()),
                                        None => w.field_raw("victim_cache", "null"),
                                    }
                                    w.field_f64("score", alt.score);
                                    w.field_raw(
                                        "agrees",
                                        if alt.agrees { "true" } else { "false" },
                                    );
                                }
                                a
                            })
                            .collect();
                        aw.field_raw("alternatives", &format!("[{}]", alts.join(",")));
                    }
                    row
                })
                .collect();
            obj.field_raw("audit_recent", &format!("[{}]", audit_rows.join(",")));
        }
        out
    }
}

/// The metadata-only ghost-cache evaluator. Owned by a
/// [`CacheManager`]; every live mutation calls the matching `on_*`
/// hook (see the [module docs](self)).
#[derive(Debug)]
pub struct ShadowEvaluator {
    live_policy: PolicyName,
    config: ShadowConfig,
    ghosts: Vec<Ghost>,
    /// Stateless scorers for the eviction audit, one per non-live
    /// eviction-kind policy.
    scorers: Vec<(PolicyName, Box<dyn EvictionPolicy>)>,
    sampled_accesses: u64,
    skipped_accesses: u64,
    sampled_counter: Option<Counter>,
    skipped_counter: Option<Counter>,
    audit: VecDeque<AuditRecord>,
    audit_dropped: u64,
    evictions_seen: u64,
    pending_audit: Option<Vec<AuditChoice>>,
    /// Whether a ghost may be over its budget. Ghosts self-enforce on
    /// their own inserts, so this is only raised by a budget change —
    /// letting the per-insert [`ShadowEvaluator::on_enforce_budget`]
    /// call skip the whole ghost fleet on the hot path.
    budget_dirty: bool,
}

impl ShadowEvaluator {
    /// Creates an evaluator mirroring a live manager running
    /// `live_policy` under `live_config`. Each ghost gets the same
    /// configuration with a `B / n` budget (matching the sampled
    /// fraction of the load) and a clone of the live admission control.
    pub fn new(
        live_policy: PolicyName,
        live_config: CacheConfig,
        admission: &AdmissionControl,
        config: ShadowConfig,
    ) -> Self {
        let ghost_config = CacheConfig {
            budget: Self::ghost_budget(live_config.budget, config),
            ..live_config
        };
        let ghosts = policy_catalog()
            .into_iter()
            .map(|info| {
                let mut mgr = CacheManager::new(info.name, ghost_config);
                mgr.set_admission(admission.clone());
                Ghost {
                    policy: info.name,
                    mgr,
                    regret_live_hit_ghost_miss: 0,
                    regret_ghost_hit_live_miss: 0,
                    credit: BTreeMap::new(),
                    series: None,
                }
            })
            .collect();
        let scorers = PolicyName::ALL
            .iter()
            .filter(|&&p| p != live_policy)
            .map(|&p| (p, p.build()))
            .filter(|(_, policy)| policy.kind() == PolicyKind::Eviction)
            .collect();
        Self {
            live_policy,
            config,
            ghosts,
            scorers,
            sampled_accesses: 0,
            skipped_accesses: 0,
            sampled_counter: None,
            skipped_counter: None,
            audit: VecDeque::new(),
            audit_dropped: 0,
            evictions_seen: 0,
            pending_audit: None,
            budget_dirty: false,
        }
    }

    fn ghost_budget(live_budget: ByteSize, config: ShadowConfig) -> ByteSize {
        let n = u64::from(config.sample_every_n.max(1));
        ByteSize::new((live_budget.as_u64() / n).max(1))
    }

    /// The configuration in force.
    pub fn config(&self) -> ShadowConfig {
        self.config
    }

    /// The live policy the ghosts are compared against.
    pub fn live_policy(&self) -> PolicyName {
        self.live_policy
    }

    /// Re-points the evaluator at a new live policy after an autopilot
    /// promotion. The ghost fleet (which includes the new live policy's
    /// ghost) keeps running untouched — its counters stay comparable
    /// across the switch — but the eviction-audit scorers are rebuilt
    /// so the live policy doesn't audit itself, and subsequent regret
    /// attribution names the new policy.
    pub(crate) fn retarget_live(&mut self, new_live: PolicyName) {
        if new_live == self.live_policy {
            return;
        }
        self.live_policy = new_live;
        self.scorers = PolicyName::ALL
            .iter()
            .filter(|&&p| p != new_live)
            .map(|&p| (p, p.build()))
            .filter(|(_, policy)| policy.kind() == PolicyKind::Eviction)
            .collect();
        self.pending_audit = None;
    }

    /// Whether `bs` is in the sampled subset.
    pub fn sampled(&self, bs: BackendSubId) -> bool {
        let n = u64::from(self.config.sample_every_n.max(1));
        n == 1 || mix64(bs.as_u64() ^ SAMPLE_SALT).is_multiple_of(n)
    }

    /// Registers the `bad_cache_shadow_*` series on `registry`. Call
    /// before traffic: counters are not backfilled.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        for ghost in &mut self.ghosts {
            ghost.series = Some(GhostSeries::new(registry, ghost.policy));
        }
        self.sampled_counter = Some(registry.counter("bad_cache_shadow_sampled_accesses_total"));
        self.skipped_counter = Some(registry.counter("bad_cache_shadow_skipped_accesses_total"));
    }

    /// Seeds the ghosts with caches/subscribers that already existed
    /// when shadowing was enabled (their cached objects cannot be
    /// replayed; the ghosts start cold).
    pub(crate) fn seed(&mut self, caches: &BTreeMap<BackendSubId, ResultCache>, now: Timestamp) {
        for (&bs, cache) in caches {
            if !self.sampled(bs) {
                continue;
            }
            for ghost in &mut self.ghosts {
                ghost.mgr.create_cache(bs, now);
                for &sub in cache.subscribers() {
                    let _ = ghost.mgr.add_subscriber(bs, sub);
                }
            }
        }
    }

    fn note_access(&mut self, sampled: bool) {
        if sampled {
            self.sampled_accesses += 1;
            if let Some(c) = &self.sampled_counter {
                c.inc();
            }
        } else {
            self.skipped_accesses += 1;
            if let Some(c) = &self.skipped_counter {
                c.inc();
            }
        }
    }

    pub(crate) fn on_create_cache(&mut self, bs: BackendSubId, now: Timestamp) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            ghost.mgr.create_cache(bs, now);
        }
    }

    pub(crate) fn on_remove_cache(&mut self, bs: BackendSubId, now: Timestamp) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            let _ = ghost.mgr.remove_cache(bs, now);
            ghost.credit.remove(&bs);
        }
    }

    pub(crate) fn on_add_subscriber(&mut self, bs: BackendSubId, sub: SubscriberId) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            let _ = ghost.mgr.add_subscriber(bs, sub);
        }
    }

    pub(crate) fn on_remove_subscriber(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            let _ = ghost.mgr.remove_subscriber(bs, sub, now);
        }
    }

    pub(crate) fn on_insert(&mut self, bs: BackendSubId, desc: NewObject, now: Timestamp) {
        let sampled = self.sampled(bs);
        self.note_access(sampled);
        if !sampled {
            return;
        }
        for ghost in &mut self.ghosts {
            // Ghosts apply their own NC short-circuit and admission.
            let _ = ghost.mgr.insert(bs, desc, now);
        }
    }

    /// Replays a retrieval plan. The ghost's own `plan_get` records its
    /// counterfactual hits; diffing the plans yields the two regret
    /// directions and the ghost-side misses the live plan reveals.
    pub(crate) fn on_plan_get(
        &mut self,
        bs: BackendSubId,
        range: TimeRange,
        live_plan: &GetPlan,
        now: Timestamp,
    ) {
        let sampled = self.sampled(bs);
        self.note_access(sampled);
        if !sampled {
            return;
        }
        for ghost in &mut self.ghosts {
            let ghost_plan = ghost.mgr.plan_get(bs, range, now);
            if let Some(series) = &ghost.series {
                series.hit_objects.add(ghost_plan.cached.len() as u64);
                series.hit_bytes.add(ghost_plan.cached_bytes.as_u64());
            }
            let (live_only, ghost_only) = diff_plans(&live_plan.cached, &ghost_plan.cached);
            if live_only.0 > 0 || live_only.1 > 0 {
                // Live hits the ghost missed: the counterfactual broker
                // would have fetched these from the cluster right now.
                ghost
                    .mgr
                    .record_miss_fetch(bs, live_only.0, ByteSize::new(live_only.1), now);
                ghost.regret_live_hit_ghost_miss += live_only.0;
                if let Some(series) = &ghost.series {
                    series.miss_objects.add(live_only.0);
                    series.miss_bytes.add(live_only.1);
                    series.regret_live_hit_ghost_miss.add(live_only.0);
                }
            }
            if ghost_only.0 > 0 || ghost_only.1 > 0 {
                // Ghost hits the live cache missed: the real broker
                // will fetch them and call `record_miss_fetch`; bank a
                // credit so the ghost is not charged for that fetch.
                let entry = ghost.credit.entry(bs).or_insert((0, 0));
                entry.0 += ghost_only.0;
                entry.1 += ghost_only.1;
                ghost.regret_ghost_hit_live_miss += ghost_only.0;
                if let Some(series) = &ghost.series {
                    series.regret_ghost_hit_live_miss.add(ghost_only.0);
                }
            }
        }
    }

    pub(crate) fn on_record_miss_fetch(
        &mut self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    ) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            let (mut o, mut b) = (objects, bytes.as_u64());
            if let Some(credit) = ghost.credit.get_mut(&bs) {
                let co = credit.0.min(o);
                let cb = credit.1.min(b);
                credit.0 -= co;
                credit.1 -= cb;
                o -= co;
                b -= cb;
                if credit.0 == 0 && credit.1 == 0 {
                    ghost.credit.remove(&bs);
                }
            }
            if o > 0 || b > 0 {
                ghost.mgr.record_miss_fetch(bs, o, ByteSize::new(b), now);
                if let Some(series) = &ghost.series {
                    series.miss_objects.add(o);
                    series.miss_bytes.add(b);
                }
            }
        }
    }

    pub(crate) fn on_ack_consume(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) {
        if !self.sampled(bs) {
            return;
        }
        for ghost in &mut self.ghosts {
            let _ = ghost.mgr.ack_consume(bs, sub, up_to, now);
        }
    }

    pub(crate) fn on_set_admission(&mut self, admission: &AdmissionControl) {
        for ghost in &mut self.ghosts {
            ghost.mgr.set_admission(admission.clone());
        }
    }

    pub(crate) fn on_maintain(&mut self, now: Timestamp) {
        for ghost in &mut self.ghosts {
            ghost.mgr.maintain(now);
        }
    }

    pub(crate) fn on_set_budget(&mut self, budget: ByteSize) {
        let share = Self::ghost_budget(budget, self.config);
        for ghost in &mut self.ghosts {
            ghost.mgr.set_budget(share);
        }
        self.budget_dirty = true;
    }

    pub(crate) fn on_enforce_budget(&mut self, now: Timestamp) {
        // Fires on every live insert; the ghosts already settled under
        // their budgets during their own inserts, so there is nothing
        // to do unless a budget change left one over its share.
        if !self.budget_dirty {
            return;
        }
        self.budget_dirty = false;
        for ghost in &mut self.ghosts {
            ghost.mgr.enforce_budget(now);
        }
    }

    /// Called before the live policy drops its chosen victim: every
    /// sampled eviction rescans the live caches with each alternative
    /// scorer and stashes their choices for [`Self::record_audit`].
    pub(crate) fn pre_evict_audit(
        &mut self,
        caches: &BTreeMap<BackendSubId, ResultCache>,
        now: Timestamp,
    ) {
        self.evictions_seen += 1;
        let n = u64::from(self.config.sample_every_n.max(1));
        if !(self.evictions_seen - 1).is_multiple_of(n) {
            self.pending_audit = None;
            return;
        }
        let mut alternatives = Vec::with_capacity(self.scorers.len());
        for (policy, scorer) in &self.scorers {
            // Replicates `CacheManager::linear_victim`, tie-break
            // included, with the alternative policy's score.
            let choice = caches
                .values()
                .filter(|c| !c.is_empty())
                .map(|c| (scorer.score(c, now), c.id()))
                .min_by(|(a, ia), (b, ib)| a.total_cmp(b).then(ia.cmp(ib)));
            let (score, victim) = match choice {
                Some((s, v)) => (s, Some(v)),
                None => (0.0, None),
            };
            if victim.is_some() {
                if let Some(series) = self
                    .ghosts
                    .iter()
                    .find(|g| g.policy == *policy)
                    .and_then(|g| g.series.as_ref())
                {
                    series.victim_score_milli.record(score_milli(score));
                }
            }
            alternatives.push(AuditChoice {
                policy: *policy,
                victim,
                score,
                agrees: false,
            });
        }
        self.pending_audit = Some(alternatives);
    }

    /// Called after the live policy's drop succeeded; pushes the audit
    /// record assembled by [`Self::pre_evict_audit`] into the ring.
    pub(crate) fn record_audit(
        &mut self,
        victim: BackendSubId,
        object: &CachedObject,
        score: f64,
        at: Timestamp,
    ) {
        let Some(mut alternatives) = self.pending_audit.take() else {
            return;
        };
        for alt in &mut alternatives {
            alt.agrees = alt.victim == Some(victim);
        }
        if let Some(series) = self
            .ghosts
            .iter()
            .find(|g| g.policy == self.live_policy)
            .and_then(|g| g.series.as_ref())
        {
            series.victim_score_milli.record(score_milli(score));
        }
        if self.audit.len() >= self.config.audit_capacity.max(1) {
            self.audit.pop_front();
            self.audit_dropped += 1;
        }
        self.audit.push_back(AuditRecord {
            at,
            live_policy: self.live_policy,
            victim,
            object: object.id,
            bytes: object.size,
            score,
            alternatives,
        });
    }

    /// A point-in-time snapshot of every ghost, the access sampling
    /// counters and the audit ring.
    pub fn snapshot(&self) -> ShadowSnapshot {
        let ghosts = self
            .ghosts
            .iter()
            .map(|g| {
                let m = g.mgr.metrics();
                GhostReport {
                    policy: g.policy,
                    counters: GhostCounters {
                        hit_objects: m.hit_objects,
                        hit_bytes: m.hit_bytes.as_u64(),
                        miss_objects: m.miss_objects,
                        miss_bytes: m.miss_bytes.as_u64(),
                        regret_live_hit_ghost_miss: g.regret_live_hit_ghost_miss,
                        regret_ghost_hit_live_miss: g.regret_ghost_hit_live_miss,
                        evicted_objects: m.evicted_objects,
                        expired_objects: m.expired_objects,
                        occupancy_bytes: g.mgr.total_bytes().as_u64(),
                    },
                }
            })
            .collect();
        ShadowSnapshot {
            live_policy: self.live_policy,
            sample_every_n: self.config.sample_every_n.max(1),
            sampled_accesses: self.sampled_accesses,
            skipped_accesses: self.skipped_accesses,
            ghosts,
            audit: self.audit.iter().cloned().collect(),
            audit_dropped: self.audit_dropped,
        }
    }

    /// The ghost manager's metrics for one policy — exposed so parity
    /// tests can compare a ghost's full hit/miss accounting with the
    /// live manager's.
    pub fn ghost_metrics(&self, policy: PolicyName) -> Option<&CacheMetrics> {
        self.ghosts
            .iter()
            .find(|g| g.policy == policy)
            .map(|g| g.mgr.metrics())
    }
}

/// Clamped milli fixed-point conversion for the victim-score
/// histograms (`Histogram::record` takes integers).
fn score_milli(score: f64) -> u64 {
    if !score.is_finite() || score <= 0.0 {
        return 0;
    }
    let milli = score * 1000.0;
    if milli >= u64::MAX as f64 {
        u64::MAX
    } else {
        milli as u64
    }
}

/// Two-pointer diff of two retrieval plans over the same range, both
/// in `(ts, id)` order. Returns `((objects, bytes)` present only in
/// `live`, `(objects, bytes)` present only in `ghost)`.
fn diff_plans(
    live: &[(ObjectId, Timestamp, ByteSize)],
    ghost: &[(ObjectId, Timestamp, ByteSize)],
) -> ((u64, u64), (u64, u64)) {
    use std::cmp::Ordering;
    let (mut li, mut gi) = (0usize, 0usize);
    let mut live_only = (0u64, 0u64);
    let mut ghost_only = (0u64, 0u64);
    while li < live.len() && gi < ghost.len() {
        let lk = (live[li].1, live[li].0);
        let gk = (ghost[gi].1, ghost[gi].0);
        match lk.cmp(&gk) {
            Ordering::Equal => {
                li += 1;
                gi += 1;
            }
            Ordering::Less => {
                live_only.0 += 1;
                live_only.1 += live[li].2.as_u64();
                li += 1;
            }
            Ordering::Greater => {
                ghost_only.0 += 1;
                ghost_only.1 += ghost[gi].2.as_u64();
                gi += 1;
            }
        }
    }
    for &(_, _, size) in &live[li..] {
        live_only.0 += 1;
        live_only.1 += size.as_u64();
    }
    for &(_, _, size) in &ghost[gi..] {
        ghost_only.0 += 1;
        ghost_only.1 += size.as_u64();
    }
    (live_only, ghost_only)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, ts: u64, size: u64) -> (ObjectId, Timestamp, ByteSize) {
        (
            ObjectId::new(id),
            Timestamp::from_secs(ts),
            ByteSize::new(size),
        )
    }

    #[test]
    fn diff_counts_both_directions() {
        let live = [entry(1, 1, 10), entry(2, 2, 20), entry(4, 4, 40)];
        let ghost = [entry(2, 2, 20), entry(3, 3, 30), entry(4, 4, 40)];
        let (live_only, ghost_only) = diff_plans(&live, &ghost);
        assert_eq!(live_only, (1, 10));
        assert_eq!(ghost_only, (1, 30));
    }

    #[test]
    fn diff_of_identical_plans_is_empty() {
        let plan = [entry(1, 1, 10), entry(2, 2, 20)];
        assert_eq!(diff_plans(&plan, &plan), ((0, 0), (0, 0)));
    }

    #[test]
    fn diff_handles_disjoint_tails() {
        let live = [entry(1, 1, 10)];
        let ghost = [entry(2, 2, 20), entry(3, 3, 30)];
        let (live_only, ghost_only) = diff_plans(&live, &ghost);
        assert_eq!(live_only, (1, 10));
        assert_eq!(ghost_only, (2, 50));
    }

    #[test]
    fn sample_every_one_shadows_everything() {
        let sh = ShadowEvaluator::new(
            PolicyName::Lru,
            CacheConfig::default(),
            &AdmissionControl::admit_all(),
            ShadowConfig {
                sample_every_n: 1,
                audit_capacity: 4,
            },
        );
        for i in 0..256 {
            assert!(sh.sampled(BackendSubId::new(i)));
        }
    }

    #[test]
    fn sampling_is_a_rough_fraction_and_decorrelated_from_shards() {
        let sh = ShadowEvaluator::new(
            PolicyName::Lru,
            CacheConfig::default(),
            &AdmissionControl::admit_all(),
            ShadowConfig {
                sample_every_n: 8,
                audit_capacity: 4,
            },
        );
        let total = 4096u64;
        let sampled = (0..total)
            .filter(|&i| sh.sampled(BackendSubId::new(i)))
            .count();
        // Roughly 1/8 of streams, with generous slack.
        assert!((total as usize / 16..total as usize / 4).contains(&sampled));
        // Salted hash: sampled streams land on every shard of a
        // 4-shard tier, not just shard 0.
        let mut shards_hit = std::collections::BTreeSet::new();
        for i in 0..total {
            if sh.sampled(BackendSubId::new(i)) {
                shards_hit.insert(mix64(i) % 4);
            }
        }
        assert_eq!(shards_hit.len(), 4);
    }

    #[test]
    fn ghost_budget_scales_with_sampling() {
        let config = ShadowConfig {
            sample_every_n: 8,
            audit_capacity: 4,
        };
        assert_eq!(
            ShadowEvaluator::ghost_budget(ByteSize::new(800), config),
            ByteSize::new(100)
        );
        let full = ShadowConfig {
            sample_every_n: 1,
            audit_capacity: 4,
        };
        assert_eq!(
            ShadowEvaluator::ghost_budget(ByteSize::new(800), full),
            ByteSize::new(800)
        );
        // Never zero, so ghost eviction loops terminate.
        assert_eq!(
            ShadowEvaluator::ghost_budget(ByteSize::new(3), config),
            ByteSize::new(1)
        );
    }

    #[test]
    fn audit_ring_overwrites_oldest() {
        let mut sh = ShadowEvaluator::new(
            PolicyName::Lru,
            CacheConfig::default(),
            &AdmissionControl::admit_all(),
            ShadowConfig {
                sample_every_n: 1,
                audit_capacity: 2,
            },
        );
        let caches = BTreeMap::new();
        let object = CachedObject {
            id: ObjectId::new(7),
            ts: Timestamp::from_secs(1),
            size: ByteSize::new(10),
            fetch_latency: bad_types::SimDuration::from_millis(500),
            cached_at: Timestamp::from_secs(1),
            frozen_expiry: Timestamp::MAX,
            pending: Default::default(),
        };
        for i in 0..5u64 {
            sh.pre_evict_audit(&caches, Timestamp::from_secs(i));
            sh.record_audit(BackendSubId::new(1), &object, 1.0, Timestamp::from_secs(i));
        }
        let snap = sh.snapshot();
        assert_eq!(snap.audit.len(), 2);
        assert_eq!(snap.audit_dropped, 3);
        assert_eq!(snap.audit[0].at, Timestamp::from_secs(3));
        assert_eq!(snap.audit[1].at, Timestamp::from_secs(4));
    }

    #[test]
    fn snapshot_merge_sums_and_best_policy_prefers_higher_ratio() {
        let sh = ShadowEvaluator::new(
            PolicyName::Lru,
            CacheConfig::default(),
            &AdmissionControl::admit_all(),
            ShadowConfig::default(),
        );
        let mut a = sh.snapshot();
        let mut b = sh.snapshot();
        assert_eq!(a.best_policy(), None);
        // Fake counters: LSC hits 3/4 in shard A, 1/4 in shard B; LRU
        // hits 1/2 in shard A only.
        a.ghosts
            .iter_mut()
            .find(|g| g.policy == PolicyName::Lsc)
            .unwrap()
            .counters = GhostCounters {
            hit_objects: 3,
            miss_objects: 1,
            ..GhostCounters::default()
        };
        a.ghosts
            .iter_mut()
            .find(|g| g.policy == PolicyName::Lru)
            .unwrap()
            .counters = GhostCounters {
            hit_objects: 1,
            miss_objects: 1,
            ..GhostCounters::default()
        };
        b.ghosts
            .iter_mut()
            .find(|g| g.policy == PolicyName::Lsc)
            .unwrap()
            .counters = GhostCounters {
            hit_objects: 1,
            miss_objects: 3,
            ..GhostCounters::default()
        };
        a.sampled_accesses = 10;
        b.sampled_accesses = 4;
        b.skipped_accesses = 2;
        a.merge(&b);
        assert_eq!(a.sampled_accesses, 14);
        assert_eq!(a.skipped_accesses, 2);
        let lsc = a.ghost(PolicyName::Lsc).unwrap();
        assert_eq!(lsc.counters.hit_objects, 4);
        assert_eq!(lsc.counters.miss_objects, 4);
        // LSC merged ratio 1/2 ties LRU's 1/2; catalog order puts LSCz
        // first but it has no requests, and LSC precedes LRU.
        assert_eq!(a.best_policy(), Some(PolicyName::Lsc));
    }

    #[test]
    fn to_json_renders_all_sections() {
        let sh = ShadowEvaluator::new(
            PolicyName::Lru,
            CacheConfig::default(),
            &AdmissionControl::admit_all(),
            ShadowConfig::default(),
        );
        let live = CacheMetrics::new(Timestamp::ZERO);
        let json = sh.snapshot().to_json(&live);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"live_policy\":\"LRU\""));
        assert!(json.contains("\"best_policy\":null"));
        assert!(json.contains("\"ghosts\":["));
        assert!(json.contains("\"policy\":\"LSCz\""));
        assert!(json.contains("\"audit_recent\":[]"));
    }

    #[test]
    fn score_milli_clamps() {
        assert_eq!(score_milli(f64::INFINITY), 0);
        assert_eq!(score_milli(f64::NAN), 0);
        assert_eq!(score_milli(-3.0), 0);
        assert_eq!(score_milli(1.5), 1500);
        assert_eq!(score_milli(f64::MAX), u64::MAX);
    }
}
