//! Adaptive policy autopilot: closing the shadow-evaluation loop.
//!
//! PR 5's [`crate::shadow::ShadowEvaluator`] can already say *which*
//! eviction policy would have won online; this module acts on it. A
//! [`PolicyController`] consumes one [`ShadowSnapshot`] per maintenance
//! window, diffs it against the previous window's snapshot (the
//! cumulative-counter fix: long-dead regimes must not outvote the
//! current one), and promotes the persistently-best ghost to the live
//! policy behind a hysteresis state machine:
//!
//! ```text
//!            contender clears margin          streak == dwell
//!   Watching ───────────────────────▶ Dwell ─────────────────▶ SWITCH
//!      ▲  ▲                            │                         │
//!      │  │ contender changes/quiet    │                         │
//!      │  └────────────────────────────┘                         │
//!      │                 cooldown windows elapsed                │
//!      └──────────────────────── Cooldown ◀──────────────────────┘
//! ```
//!
//! - **Margin**: a ghost is a *contender* only if its windowed net
//!   regret (`ghost_hit_live_miss − live_hit_ghost_miss`) is at least
//!   [`AutopilotConfig::margin_milli`]/1000 of the window's requested
//!   objects. Net regret over a shared request set equals the hit-count
//!   advantage, so this is exactly a windowed hit-ratio margin.
//! - **Dwell**: the same contender must clear the margin for
//!   [`AutopilotConfig::min_dwell_windows`] consecutive windows; a
//!   changed contender or a quiet window resets the streak.
//! - **Cooldown**: after every switch, evaluation pauses for
//!   [`AutopilotConfig::cooldown_windows`] windows so the migrated
//!   cache can warm up before it is judged again.
//!
//! Promotion itself is [`crate::CacheManager::switch_policy`]: a safe
//! in-place migration (resident entries re-scored, no flush, budget
//! and metrics accounting untouched). The no-cache baseline is never
//! promoted — its ghost hits nothing, and demoting a populated cache
//! to NC would strand its resident bytes.
//!
//! The controller is deliberately split in two testable layers:
//! [`HysteresisState::step`] is the pure state machine (driven
//! exhaustively by the table test in `tests/autopilot.rs`, mirroring
//! the alert state machine's test), and [`evaluate_window`] is the pure
//! margin arithmetic over one windowed snapshot.

use std::collections::VecDeque;

use bad_telemetry::json::ObjectWriter;
use bad_telemetry::{Counter, Gauge, Registry};
use bad_types::Timestamp;

use crate::policy::{PolicyKind, PolicyName};
use crate::shadow::ShadowSnapshot;

/// Switch records kept per controller; older promotions fall off.
pub const SWITCH_HISTORY_CAPACITY: usize = 64;

/// Hysteresis knobs for the policy autopilot. `Copy` so it can ride in
/// `BrokerConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AutopilotConfig {
    /// Consecutive windows the same contender must clear the margin
    /// before promotion. `0` behaves like `1` (promote on the first
    /// clearing window).
    pub min_dwell_windows: u32,
    /// Windows to skip after a switch before evaluating again.
    pub cooldown_windows: u32,
    /// Required windowed net regret, as a fraction of the window's
    /// requested objects ×1000 (the telemetry fixed-point idiom):
    /// `20` means the contender must have hit at least 2% more of the
    /// window's requests than the live policy did.
    pub margin_milli: u32,
    /// Windows with fewer requested objects than this are *quiet*: they
    /// produce no contender (and therefore reset any dwell streak).
    pub min_window_requests: u64,
}

impl Default for AutopilotConfig {
    fn default() -> Self {
        Self {
            min_dwell_windows: 3,
            cooldown_windows: 4,
            margin_milli: 20,
            min_window_requests: 16,
        }
    }
}

/// One applied promotion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicySwitchRecord {
    /// When the switch was applied.
    pub at: Timestamp,
    /// The 1-based evaluation window that triggered it.
    pub window: u64,
    /// The outgoing live policy.
    pub from: PolicyName,
    /// The promoted policy.
    pub to: PolicyName,
    /// The deciding window's net regret (objects the incoming ghost hit
    /// beyond the live policy).
    pub net_regret: u64,
    /// The deciding window's requested objects (the margin denominator).
    pub requested: u64,
}

/// A ghost that cleared the regret margin in one window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contender {
    /// The clearing policy.
    pub policy: PolicyName,
    /// Its windowed net regret.
    pub net_regret: u64,
    /// Its windowed requested objects.
    pub requested: u64,
}

/// Scans one *windowed* snapshot (see [`ShadowSnapshot::delta_since`])
/// for the strongest promotion contender: the eligible ghost with the
/// highest windowed net regret, provided it clears the margin. Eligible
/// means not the live policy and not the no-cache baseline. Ties keep
/// the first ghost in catalog order, matching
/// [`ShadowSnapshot::best_policy`].
pub fn evaluate_window(
    window: &ShadowSnapshot,
    live: PolicyName,
    config: &AutopilotConfig,
) -> Option<Contender> {
    let mut best: Option<Contender> = None;
    for ghost in &window.ghosts {
        if ghost.policy == live || ghost.policy.build().kind() == PolicyKind::NoCache {
            continue;
        }
        let c = &ghost.counters;
        let requested = c.hit_objects + c.miss_objects;
        if requested < config.min_window_requests.max(1) {
            continue;
        }
        if c.regret_ghost_hit_live_miss <= c.regret_live_hit_ghost_miss {
            continue;
        }
        let net_regret = c.regret_ghost_hit_live_miss - c.regret_live_hit_ghost_miss;
        // net/requested >= margin_milli/1000, in integers.
        if u128::from(net_regret) * 1000 < u128::from(requested) * u128::from(config.margin_milli) {
            continue;
        }
        if best.is_none_or(|b| net_regret > b.net_regret) {
            best = Some(Contender {
                policy: ghost.policy,
                net_regret,
                requested,
            });
        }
    }
    best
}

/// The pure hysteresis core: dwell streaks and post-switch cooldown,
/// fed one margin verdict per window. All fields are public so the
/// exhaustive table test can place the machine in any state directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HysteresisState {
    /// Windows left in the post-switch cooldown (evaluation paused).
    pub cooldown_remaining: u32,
    /// The contender currently accumulating a dwell streak.
    pub candidate: Option<PolicyName>,
    /// Consecutive windows `candidate` has cleared the margin.
    pub streak: u32,
}

impl HysteresisState {
    /// Advances one window. `contender` is the policy that cleared the
    /// regret margin this window (`None` when nothing did, including
    /// quiet windows). Returns the policy to promote, if any; on
    /// promotion the machine enters cooldown.
    pub fn step(
        &mut self,
        config: &AutopilotConfig,
        contender: Option<PolicyName>,
    ) -> Option<PolicyName> {
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            self.candidate = None;
            self.streak = 0;
            return None;
        }
        let Some(policy) = contender else {
            self.candidate = None;
            self.streak = 0;
            return None;
        };
        if self.candidate == Some(policy) {
            self.streak += 1;
        } else {
            self.candidate = Some(policy);
            self.streak = 1;
        }
        if self.streak >= config.min_dwell_windows.max(1) {
            self.candidate = None;
            self.streak = 0;
            self.cooldown_remaining = config.cooldown_windows;
            Some(policy)
        } else {
            None
        }
    }
}

/// Registered `bad_cache_autopilot_*` series.
#[derive(Debug)]
struct ControllerSeries {
    windows: Counter,
    switches: Counter,
    streak: Gauge,
    cooldown: Gauge,
}

impl ControllerSeries {
    fn new(registry: &Registry) -> Self {
        Self {
            windows: registry.counter("bad_cache_autopilot_windows_total"),
            switches: registry.counter("bad_cache_autopilot_switches_total"),
            streak: registry.gauge("bad_cache_autopilot_candidate_streak"),
            cooldown: registry.gauge("bad_cache_autopilot_cooldown_remaining"),
        }
    }
}

/// The stateful controller one cache tier owns: windowed snapshot
/// deltas in, promotion decisions out, bounded switch history kept for
/// `/policies`. The caller applies the returned switch (the controller
/// never touches the cache itself), which is what lets the sharded
/// manager make one fleet-wide decision from the merged snapshot.
#[derive(Debug)]
pub struct PolicyController {
    config: AutopilotConfig,
    state: HysteresisState,
    windows: u64,
    /// Previous cumulative snapshot — the delta-encoding baseline.
    baseline: Option<ShadowSnapshot>,
    history: VecDeque<PolicySwitchRecord>,
    series: Option<ControllerSeries>,
}

impl PolicyController {
    /// A controller in its initial (watching, no baseline) state.
    pub fn new(config: AutopilotConfig) -> Self {
        Self {
            config,
            state: HysteresisState::default(),
            windows: 0,
            baseline: None,
            history: VecDeque::new(),
            series: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> AutopilotConfig {
        self.config
    }

    /// Registers the `bad_cache_autopilot_*` series on `registry`.
    pub fn set_telemetry(&mut self, registry: &Registry) {
        self.series = Some(ControllerSeries::new(registry));
    }

    /// Consumes one maintenance window's cumulative snapshot: diffs it
    /// against the previous window, runs the margin evaluation and the
    /// hysteresis step, and — on promotion — records and returns the
    /// switch. The *caller* must then apply it to the live cache(s).
    pub fn observe(
        &mut self,
        snapshot: &ShadowSnapshot,
        live: PolicyName,
        now: Timestamp,
    ) -> Option<PolicySwitchRecord> {
        self.windows += 1;
        // The first window has no baseline: counters since enablement
        // *are* that window's delta.
        let window = match &self.baseline {
            Some(base) => snapshot.delta_since(base),
            None => snapshot.clone(),
        };
        self.baseline = Some(snapshot.clone());
        let contender = evaluate_window(&window, live, &self.config);
        let promoted = self.state.step(&self.config, contender.map(|c| c.policy));
        if let Some(series) = &self.series {
            series.windows.inc();
            series.streak.set(u64::from(self.state.streak));
            series
                .cooldown
                .set(u64::from(self.state.cooldown_remaining));
        }
        let to = promoted?;
        let c = contender.expect("a promotion implies this window's contender");
        let record = PolicySwitchRecord {
            at: now,
            window: self.windows,
            from: live,
            to,
            net_regret: c.net_regret,
            requested: c.requested,
        };
        if self.history.len() == SWITCH_HISTORY_CAPACITY {
            self.history.pop_front();
        }
        self.history.push_back(record);
        if let Some(series) = &self.series {
            series.switches.inc();
        }
        Some(record)
    }

    /// Point-in-time status for `/policies` and `/healthz`. `active` is
    /// the live policy the owner currently runs (the controller itself
    /// only knows what it last promoted).
    pub fn status(&self, active: PolicyName) -> AutopilotStatus {
        AutopilotStatus {
            active,
            windows: self.windows,
            cooldown_remaining: self.state.cooldown_remaining,
            candidate: self.state.candidate,
            streak: self.state.streak,
            switches: self.history.iter().copied().collect(),
        }
    }
}

/// A snapshot of the controller for the scrape endpoints.
#[derive(Clone, Debug, PartialEq)]
pub struct AutopilotStatus {
    /// The live policy currently in force.
    pub active: PolicyName,
    /// Evaluation windows processed so far.
    pub windows: u64,
    /// Windows left in the current post-switch cooldown.
    pub cooldown_remaining: u32,
    /// The contender accumulating a dwell streak, if any.
    pub candidate: Option<PolicyName>,
    /// Its consecutive clearing windows so far.
    pub streak: u32,
    /// Applied switches, oldest first (bounded; see
    /// [`SWITCH_HISTORY_CAPACITY`]).
    pub switches: Vec<PolicySwitchRecord>,
}

impl AutopilotStatus {
    /// Renders the `autopilot` JSON object for `/policies`/`/healthz`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        {
            let mut obj = ObjectWriter::new(&mut out);
            obj.field_str("active_policy", self.active.as_str());
            obj.field_u64("windows", self.windows);
            obj.field_u64("cooldown_remaining", u64::from(self.cooldown_remaining));
            match self.candidate {
                Some(p) => obj.field_str("candidate", p.as_str()),
                None => obj.field_raw("candidate", "null"),
            }
            obj.field_u64("streak", u64::from(self.streak));
            obj.field_u64("switches_total", self.switches.len() as u64);
            let rows: Vec<String> = self
                .switches
                .iter()
                .map(|s| {
                    let mut row = String::new();
                    {
                        let mut sw = ObjectWriter::new(&mut row);
                        sw.field_u64("at_us", s.at.as_micros());
                        sw.field_u64("window", s.window);
                        sw.field_str("from", s.from.as_str());
                        sw.field_str("to", s.to.as_str());
                        sw.field_u64("net_regret", s.net_regret);
                        sw.field_u64("requested", s.requested);
                    }
                    row
                })
                .collect();
            obj.field_raw("switches", &format!("[{}]", rows.join(",")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::{GhostCounters, GhostReport};

    fn window(rows: &[(PolicyName, u64, u64, u64)]) -> ShadowSnapshot {
        ShadowSnapshot {
            live_policy: PolicyName::Lru,
            sample_every_n: 1,
            sampled_accesses: 0,
            skipped_accesses: 0,
            ghosts: rows
                .iter()
                .map(|&(policy, requested, gained, lost)| GhostReport {
                    policy,
                    counters: GhostCounters {
                        hit_objects: requested / 2,
                        miss_objects: requested - requested / 2,
                        regret_ghost_hit_live_miss: gained,
                        regret_live_hit_ghost_miss: lost,
                        ..GhostCounters::default()
                    },
                })
                .collect(),
            audit: Vec::new(),
            audit_dropped: 0,
        }
    }

    #[test]
    fn contender_requires_margin_and_positive_net_regret() {
        let config = AutopilotConfig {
            margin_milli: 50, // 5% of requested
            min_window_requests: 10,
            ..AutopilotConfig::default()
        };
        // 100 requested → needs net regret ≥ 5.
        let w = window(&[
            (PolicyName::Lsc, 100, 4, 0),  // below margin
            (PolicyName::Lsd, 100, 10, 8), // net 2: below margin
            (PolicyName::Exp, 100, 3, 9),  // negative net
        ]);
        assert_eq!(evaluate_window(&w, PolicyName::Lru, &config), None);
        let w = window(&[(PolicyName::Lsc, 100, 6, 1)]);
        assert_eq!(
            evaluate_window(&w, PolicyName::Lru, &config),
            Some(Contender {
                policy: PolicyName::Lsc,
                net_regret: 5,
                requested: 100,
            })
        );
    }

    #[test]
    fn contender_skips_live_nc_and_quiet_ghosts() {
        let config = AutopilotConfig {
            margin_milli: 0,
            min_window_requests: 50,
            ..AutopilotConfig::default()
        };
        let w = window(&[
            (PolicyName::Lru, 100, 90, 0), // live: ineligible
            (PolicyName::Nc, 100, 80, 0),  // no-cache: ineligible
            (PolicyName::Lsc, 10, 9, 0),   // quiet window for this ghost
        ]);
        assert_eq!(evaluate_window(&w, PolicyName::Lru, &config), None);
    }

    #[test]
    fn highest_net_regret_wins_ties_to_catalog_order() {
        let config = AutopilotConfig {
            margin_milli: 0,
            min_window_requests: 1,
            ..AutopilotConfig::default()
        };
        let w = window(&[
            (PolicyName::Lscz, 100, 7, 0),
            (PolicyName::Lsc, 100, 9, 0),
            (PolicyName::Lsd, 100, 9, 0), // same net as LSC, later in order
        ]);
        let c = evaluate_window(&w, PolicyName::Lru, &config).unwrap();
        assert_eq!(c.policy, PolicyName::Lsc);
    }

    #[test]
    fn controller_windows_are_deltas_not_cumulative() {
        let config = AutopilotConfig {
            min_dwell_windows: 1,
            cooldown_windows: 0,
            margin_milli: 100,
            min_window_requests: 1,
        };
        let mut ctl = PolicyController::new(config);
        // Cumulative counters grow, but the *delta* between consecutive
        // windows never clears the 10% margin (net +2 per 100 requests).
        let w1 = window(&[(PolicyName::Lsc, 100, 30, 0)]);
        assert!(ctl
            .observe(&w1, PolicyName::Lru, Timestamp::from_secs(1))
            .is_some());
        let w2 = window(&[(PolicyName::Lsc, 200, 32, 0)]);
        assert_eq!(
            ctl.observe(&w2, PolicyName::Lru, Timestamp::from_secs(2)),
            None,
            "a cumulative 16% advantage must not mask a 2% window"
        );
    }

    #[test]
    fn status_json_lists_switch_history() {
        let mut ctl = PolicyController::new(AutopilotConfig {
            min_dwell_windows: 1,
            cooldown_windows: 0,
            margin_milli: 0,
            min_window_requests: 1,
        });
        let w = window(&[(PolicyName::Lsc, 100, 9, 0)]);
        let rec = ctl
            .observe(&w, PolicyName::Lru, Timestamp::from_secs(5))
            .unwrap();
        assert_eq!((rec.from, rec.to), (PolicyName::Lru, PolicyName::Lsc));
        let json = ctl.status(PolicyName::Lsc).to_json();
        assert!(json.contains(r#""active_policy":"LSC""#));
        assert!(json.contains(r#""switches_total":1"#));
        assert!(json.contains(r#""from":"LRU","to":"LSC""#));
    }

    #[test]
    fn switch_history_is_bounded() {
        let mut ctl = PolicyController::new(AutopilotConfig {
            min_dwell_windows: 1,
            cooldown_windows: 0,
            margin_milli: 0,
            min_window_requests: 1,
        });
        // Alternate contenders so every window promotes; the baseline
        // must be reset each time so each window's delta stays fresh.
        for i in 0..(SWITCH_HISTORY_CAPACITY as u64 + 8) {
            let (live, other) = if i % 2 == 0 {
                (PolicyName::Lru, PolicyName::Lsc)
            } else {
                (PolicyName::Lsc, PolicyName::Lru)
            };
            let w = window(&[(other, (i + 1) * 100, (i + 1) * 10, 0)]);
            assert!(ctl.observe(&w, live, Timestamp::from_secs(i + 1)).is_some());
        }
        let status = ctl.status(PolicyName::Lru);
        assert_eq!(status.switches.len(), SWITCH_HISTORY_CAPACITY);
        assert_eq!(status.windows, SWITCH_HISTORY_CAPACITY as u64 + 8);
    }
}
