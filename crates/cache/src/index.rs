//! Ordered victim index.
//!
//! Section IV-A notes that because only per-cache *tails* are eviction
//! candidates, victim selection is linear in the number of caches, and
//! "by using appropriate data structure (e.g., heap), this can be
//! implemented in logarithmic order". [`VictimIndex`] is that structure:
//! an ordered set keyed by score with an exact-update map, so the
//! minimum-score cache is found in `O(log N)` and scores are updated in
//! `O(log N)` whenever a cache mutates.

use std::collections::{BTreeSet, HashMap};

use bad_types::BackendSubId;

/// Total-order wrapper over `f64` scores (NaN sorts last).
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrderedScore(f64);

impl Eq for OrderedScore {}

impl PartialOrd for OrderedScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// An updatable min-index over per-cache victim scores.
///
/// # Examples
///
/// ```
/// use bad_cache::VictimIndex;
/// use bad_types::BackendSubId;
///
/// let mut idx = VictimIndex::new();
/// idx.update(BackendSubId::new(1), 5.0);
/// idx.update(BackendSubId::new(2), 1.0);
/// assert_eq!(idx.min(), Some(BackendSubId::new(2)));
/// idx.update(BackendSubId::new(2), 9.0);
/// assert_eq!(idx.min(), Some(BackendSubId::new(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VictimIndex {
    ordered: BTreeSet<(OrderedScore, BackendSubId)>,
    current: HashMap<BackendSubId, f64>,
}

impl VictimIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed caches.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    /// Inserts or updates a cache's score.
    ///
    /// Caches whose score is `f64::INFINITY` (empty caches — no eviction
    /// candidate) are removed from the index instead, so [`VictimIndex::min`]
    /// only ever returns caches that actually hold an object.
    pub fn update(&mut self, id: BackendSubId, score: f64) {
        if let Some(old) = self.current.remove(&id) {
            self.ordered.remove(&(OrderedScore(old), id));
        }
        if score.is_finite() || score == f64::NEG_INFINITY {
            self.ordered.insert((OrderedScore(score), id));
            self.current.insert(id, score);
        }
    }

    /// Removes a cache from the index entirely.
    pub fn remove(&mut self, id: BackendSubId) {
        if let Some(old) = self.current.remove(&id) {
            self.ordered.remove(&(OrderedScore(old), id));
        }
    }

    /// The cache with the minimum score, if any.
    pub fn min(&self) -> Option<BackendSubId> {
        self.ordered.first().map(|&(_, id)| id)
    }

    /// The currently indexed score of a cache.
    pub fn score_of(&self, id: BackendSubId) -> Option<f64> {
        self.current.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bs(raw: u64) -> BackendSubId {
        BackendSubId::new(raw)
    }

    #[test]
    fn min_tracks_updates() {
        let mut idx = VictimIndex::new();
        idx.update(bs(1), 3.0);
        idx.update(bs(2), 2.0);
        idx.update(bs(3), 4.0);
        assert_eq!(idx.min(), Some(bs(2)));
        idx.update(bs(2), 10.0);
        assert_eq!(idx.min(), Some(bs(1)));
        idx.remove(bs(1));
        assert_eq!(idx.min(), Some(bs(3)));
    }

    #[test]
    fn infinite_scores_leave_the_index() {
        let mut idx = VictimIndex::new();
        idx.update(bs(1), 1.0);
        idx.update(bs(1), f64::INFINITY);
        assert!(idx.is_empty());
        assert_eq!(idx.min(), None);
        assert_eq!(idx.score_of(bs(1)), None);
    }

    #[test]
    fn equal_scores_are_kept_distinct() {
        let mut idx = VictimIndex::new();
        idx.update(bs(1), 1.0);
        idx.update(bs(2), 1.0);
        assert_eq!(idx.len(), 2);
        idx.remove(bs(1));
        assert_eq!(idx.min(), Some(bs(2)));
    }

    #[test]
    fn update_is_idempotent_on_same_score() {
        let mut idx = VictimIndex::new();
        idx.update(bs(1), 1.5);
        idx.update(bs(1), 1.5);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.score_of(bs(1)), Some(1.5));
    }

    #[test]
    fn nan_scores_are_non_candidates() {
        let mut idx = VictimIndex::new();
        idx.update(bs(1), f64::NAN);
        idx.update(bs(2), 100.0);
        // NaN is treated like infinity: not an eviction candidate.
        assert_eq!(idx.min(), Some(bs(2)));
        assert_eq!(idx.score_of(bs(1)), None);
    }
}
