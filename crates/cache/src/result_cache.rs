//! The per-backend-subscription result cache.
//!
//! "Each result cache is a sorted list of objects ordered in the
//! descending order of their timestamps as new objects are pushed at the
//! head and old objects are deleted from the tail when needed"
//! (Section III-C). Internally the deque keeps the oldest object (the
//! paper's *tail*) at index 0 and the newest (the *head*) at the back.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

use bad_types::{
    BackendSubId, ByteSize, ObjectId, SimDuration, SubscriberId, TimeRange, Timestamp,
};

use crate::object::{CachedObject, NewObject};
use crate::rate::RateEstimator;

/// The outcome of planning a range retrieval against one cache —
/// the `GET` routine of Algorithm 1.
///
/// `cached` lists the objects servable from the cache; `missed` lists
/// the sub-ranges the broker must fetch from the data cluster: at most
/// one leading range for everything before the coverage watermark, plus
/// one point range per admission-rejected object inside the covered
/// region. Missed objects are *not* re-cached ("they may not be
/// sharable by other subscribers any more").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GetPlan {
    /// `(id, ts, size)` of each object servable from the cache, in
    /// timestamp order.
    pub cached: Vec<(ObjectId, Timestamp, ByteSize)>,
    /// Total size of the cached part.
    pub cached_bytes: ByteSize,
    /// Ranges that must be fetched from the data cluster (disjoint,
    /// ascending; empty on a full hit).
    pub missed: Vec<TimeRange>,
}

impl GetPlan {
    /// A plan in which everything missed.
    pub(crate) fn all_missed(range: TimeRange) -> Self {
        Self {
            cached: Vec::new(),
            cached_bytes: ByteSize::ZERO,
            missed: vec![range],
        }
    }

    /// Whether the plan requires no cluster fetch.
    pub fn is_full_hit(&self) -> bool {
        self.missed.is_empty()
    }
}

/// One backend subscription's in-memory result cache.
#[derive(Clone, Debug)]
pub struct ResultCache {
    id: BackendSubId,
    /// Oldest (tail) at the front, newest (head) at the back.
    entries: VecDeque<CachedObject>,
    /// Subscribers currently attached to the cache (`S(i)`). Kept
    /// behind an `Arc` so each insert attaches the set by pointer copy
    /// (see [`CachedObject::pending`]); (un)subscribes copy-on-write.
    subs: Arc<BTreeSet<SubscriberId>>,
    total_bytes: ByteSize,
    /// Last time a subscriber retrieved from this cache (LRU key).
    last_access: Timestamp,
    /// Measured arrival rate `λ_i` (bytes/s).
    arrivals: RateEstimator,
    /// Measured consumption rate `η_i` (bytes/s) — bytes leaving because
    /// every attached subscriber retrieved them.
    consumption: RateEstimator,
    /// Current TTL `T_i` assigned by the TTL computer.
    ttl: SimDuration,
    created_at: Timestamp,
    /// The cache fully covers cluster results with `ts >= coverage_from`:
    /// every such result is either resident or was consumed by all its
    /// attached subscribers. Starts at creation time and advances past
    /// each evicted/expired tail, so only genuinely lost ranges miss.
    coverage_from: Timestamp,
    /// Timestamps of admission-rejected objects at or after
    /// `coverage_from`: holes in the covered region that must be
    /// cluster-fetched when requested.
    gaps: BTreeSet<Timestamp>,
}

impl ResultCache {
    /// Creates an empty cache for one backend subscription.
    pub fn new(id: BackendSubId, now: Timestamp, rate_window: SimDuration) -> Self {
        Self {
            id,
            entries: VecDeque::new(),
            subs: Arc::new(BTreeSet::new()),
            total_bytes: ByteSize::ZERO,
            last_access: now,
            arrivals: RateEstimator::new(rate_window),
            consumption: RateEstimator::new(rate_window),
            ttl: SimDuration::from_hours(24),
            created_at: now,
            coverage_from: now,
            gaps: BTreeSet::new(),
        }
    }

    /// The backend subscription this cache belongs to.
    pub fn id(&self) -> BackendSubId {
        self.id
    }

    /// Number of resident objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total size of resident objects.
    pub fn total_bytes(&self) -> ByteSize {
        self.total_bytes
    }

    /// Attached subscribers (`S(i)`).
    pub fn subscribers(&self) -> &BTreeSet<SubscriberId> {
        &self.subs
    }

    /// Number of attached subscribers (`n_i`).
    pub fn subscriber_count(&self) -> usize {
        self.subs.len()
    }

    /// Timestamp of the newest resident object (the paper's `head`).
    pub fn head_ts(&self) -> Option<Timestamp> {
        self.entries.back().map(|o| o.ts)
    }

    /// Timestamp of the oldest resident object (the paper's `tail`).
    pub fn tail_ts(&self) -> Option<Timestamp> {
        self.entries.front().map(|o| o.ts)
    }

    /// The oldest resident object — the only eviction candidate.
    pub fn tail(&self) -> Option<&CachedObject> {
        self.entries.front()
    }

    /// Last retrieval time (LRU key).
    pub fn last_access(&self) -> Timestamp {
        self.last_access
    }

    /// When the cache was created.
    pub fn created_at(&self) -> Timestamp {
        self.created_at
    }

    /// The coverage watermark: results with `ts >= coverage_from` are
    /// fully represented by this cache (resident or consumed).
    pub fn coverage_from(&self) -> Timestamp {
        self.coverage_from
    }

    /// Current TTL `T_i`.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Assigns a new TTL (from the periodic recomputation).
    pub fn set_ttl(&mut self, ttl: SimDuration) {
        self.ttl = ttl;
    }

    /// Measured arrival rate `λ_i` in bytes/s.
    pub fn arrival_rate(&self, now: Timestamp) -> f64 {
        self.arrivals.rate(now)
    }

    /// Measured consumption rate `η_i` in bytes/s.
    pub fn consumption_rate(&self, now: Timestamp) -> f64 {
        self.consumption.rate(now)
    }

    /// Net growth rate `ρ_i = (λ_i − η_i)⁺` in bytes/s (eq. 5).
    pub fn growth_rate(&self, now: Timestamp) -> f64 {
        (self.arrivals.rate(now) - self.consumption.rate(now)).max(0.0)
    }

    /// Measured arrival rate `λ_i` in objects/s — the event-count view
    /// the analytical hit-ratio model (eqs. 5–7) works in.
    pub fn arrival_event_rate(&self, now: Timestamp) -> f64 {
        self.arrivals.event_rate(now)
    }

    /// Measured consumption rate `η_i` in objects/s, aggregated over
    /// all attached subscribers.
    pub fn consumption_event_rate(&self, now: Timestamp) -> f64 {
        self.consumption.event_rate(now)
    }

    /// Attaches a subscriber to the cache. Only objects inserted from now
    /// on will list it as pending (Section IV-A: earlier objects "would
    /// not contain this particular subscriber in their subscriber list").
    pub fn add_subscriber(&mut self, sub: SubscriberId) {
        if !self.subs.contains(&sub) {
            Arc::make_mut(&mut self.subs).insert(sub);
        }
    }

    /// Detaches a subscriber, also removing it from every resident
    /// object's pending set (the `UNSUBSCRIBE` routine). Objects whose
    /// pending set empties as a result are dropped and returned.
    pub fn remove_subscriber(&mut self, sub: SubscriberId) -> Vec<CachedObject> {
        if self.subs.contains(&sub) {
            Arc::make_mut(&mut self.subs).remove(&sub);
        }
        let mut dropped = Vec::new();
        let mut idx = 0;
        while idx < self.entries.len() {
            let entry = &mut self.entries[idx];
            if entry.pending.contains(&sub) {
                Arc::make_mut(&mut entry.pending).remove(&sub);
            }
            if entry.pending.is_empty() {
                let object = self.entries.remove(idx).expect("index in bounds");
                self.total_bytes -= object.size;
                dropped.push(object);
            } else {
                idx += 1;
            }
        }
        dropped
    }

    /// Pushes a new result at the head of the cache, attaching the
    /// current subscriber set, and records the arrival for `λ_i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `desc.ts` is older than the current
    /// head — the cluster produces results in timestamp order per
    /// subscription.
    pub fn insert(&mut self, desc: NewObject, now: Timestamp) -> &CachedObject {
        debug_assert!(
            self.head_ts().is_none_or(|head| desc.ts >= head),
            "results must arrive in timestamp order"
        );
        self.arrivals.record(now, desc.size.as_u64());
        self.total_bytes += desc.size;
        // Note: insertion does NOT update `last_access` — the LRU policy
        // ranks caches by how recently a *subscriber* accessed them.
        let object = CachedObject::new(desc, now, self.ttl, Arc::clone(&self.subs));
        self.entries.push_back(object);
        self.entries.back().expect("just pushed")
    }

    /// Plans a range retrieval per Algorithm 1 and updates the LRU key.
    ///
    /// The request asks for objects with `ts ∈ range`. Returns which
    /// objects are servable from the cache and which sub-range (if any)
    /// must be fetched from the data cluster.
    pub fn plan_get(&mut self, range: TimeRange, now: Timestamp) -> GetPlan {
        self.last_access = now;
        if range.is_empty() {
            return GetPlan {
                cached: Vec::new(),
                cached_bytes: ByteSize::ZERO,
                missed: Vec::new(),
            };
        }
        let covered_from = self.coverage_from;
        if range.to < covered_from || (range.to == covered_from && !range.closed_right) {
            // Case 3: the whole request lies before the covered region.
            return GetPlan::all_missed(range);
        }

        // Case 1/2: the covered part of the range is served from the
        // cache; anything before the coverage watermark is missed, plus
        // one point range per admission gap inside the request.
        let mut missed = Vec::new();
        if range.from < covered_from {
            missed.push(TimeRange::half_open(range.from, covered_from));
        }
        for &gap in self.gaps.range(covered_from.max(range.from)..) {
            if !range.contains(gap) {
                break;
            }
            missed.push(TimeRange::closed(gap, gap));
        }
        let mut cached = Vec::new();
        let mut cached_bytes = ByteSize::ZERO;
        for object in &self.entries {
            if object.ts > range.to {
                break;
            }
            if range.contains(object.ts) {
                cached.push((object.id, object.ts, object.size));
                cached_bytes += object.size;
            }
        }
        GetPlan {
            cached,
            cached_bytes,
            missed,
        }
    }

    /// Marks every object with `ts ∈ (·, up_to]` as retrieved by `sub`,
    /// dropping objects whose pending set empties (full consumption) and
    /// recording their bytes for `η_i`. Returns the dropped objects.
    pub fn consume_up_to(
        &mut self,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Vec<CachedObject> {
        let mut dropped = Vec::new();
        let mut idx = 0;
        while idx < self.entries.len() {
            if self.entries[idx].ts > up_to {
                break;
            }
            let entry = &mut self.entries[idx];
            if entry.pending.contains(&sub) {
                Arc::make_mut(&mut entry.pending).remove(&sub);
            }
            if entry.pending.is_empty() {
                let object = self.entries.remove(idx).expect("index in bounds");
                self.total_bytes -= object.size;
                self.consumption.record(now, object.size.as_u64());
                dropped.push(object);
            } else {
                idx += 1;
            }
        }
        dropped
    }

    /// Marks objects up to `up_to` as retrieved by `sub` *without*
    /// dropping fully consumed objects (the consumption-drop ablation:
    /// objects then only leave via eviction or expiry).
    pub fn mark_retrieved_up_to(&mut self, sub: SubscriberId, up_to: Timestamp) {
        for entry in self.entries.iter_mut() {
            if entry.ts > up_to {
                break;
            }
            if entry.pending.contains(&sub) {
                Arc::make_mut(&mut entry.pending).remove(&sub);
            }
        }
    }

    /// Removes and returns the tail (oldest) object, if any — the only
    /// form of policy eviction.
    pub fn drop_tail(&mut self) -> Option<CachedObject> {
        let object = self.entries.pop_front()?;
        self.total_bytes -= object.size;
        self.advance_coverage_past(object.ts);
        Some(object)
    }

    /// Drops expired tail objects under the cache's current TTL,
    /// returning them. Objects are dropped strictly from the tail; an
    /// unexpired object stops the scan (older objects always expire
    /// first because insertion is timestamp-ordered).
    pub fn expire_tail(&mut self, now: Timestamp) -> Vec<CachedObject> {
        let mut dropped = Vec::new();
        while let Some(tail) = self.entries.front() {
            if tail.expires_at(self.ttl) <= now {
                let object = self.entries.pop_front().expect("non-empty");
                self.total_bytes -= object.size;
                self.advance_coverage_past(object.ts);
                dropped.push(object);
            } else {
                break;
            }
        }
        dropped
    }

    /// Iterates over resident objects from tail (oldest) to head (newest).
    pub fn iter(&self) -> impl Iterator<Item = &CachedObject> {
        self.entries.iter()
    }

    /// Records an admission-rejected object: a hole in the covered
    /// region that future retrievals must fetch from the cluster.
    pub fn record_gap(&mut self, ts: Timestamp) {
        if ts >= self.coverage_from {
            self.gaps.insert(ts);
        }
    }

    /// Number of live admission gaps (diagnostics).
    pub fn gap_count(&self) -> usize {
        self.gaps.len()
    }

    /// Live admission-gap timestamps in ascending order (snapshot
    /// capture for the lock-free read path).
    pub(crate) fn gaps(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.gaps.iter().copied()
    }

    /// Updates the LRU key exactly as [`Self::plan_get`] would — used
    /// when replaying a deferred optimistic read's bookkeeping.
    pub(crate) fn touch(&mut self, now: Timestamp) {
        self.last_access = now;
    }

    /// Advances the coverage watermark just past a dropped tail's
    /// timestamp, so the dropped object itself falls in the missed range
    /// of future retrievals.
    fn advance_coverage_past(&mut self, ts: Timestamp) {
        let past = ts + SimDuration::from_micros(1);
        self.coverage_from = self.coverage_from.max(past);
        // Gaps below the watermark are subsumed by the leading missed
        // range of any request that reaches them.
        let live = self.gaps.split_off(&self.coverage_from);
        self.gaps = live;
    }
}

impl fmt::Display for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {} ({} objects, {}, {} subscribers)",
            self.id,
            self.entries.len(),
            self.total_bytes,
            self.subs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn obj(id: u64, ts_secs: u64, size: u64) -> NewObject {
        NewObject {
            id: ObjectId::new(id),
            ts: t(ts_secs),
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(500),
        }
    }

    fn cache_with(subs: &[u64]) -> ResultCache {
        let mut c = ResultCache::new(
            BackendSubId::new(0),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        for &s in subs {
            c.add_subscriber(SubscriberId::new(s));
        }
        c
    }

    #[test]
    fn insert_orders_head_and_tail() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.insert(obj(1, 2, 10), t(2));
        c.insert(obj(2, 3, 10), t(3));
        assert_eq!(c.tail_ts(), Some(t(1)));
        assert_eq!(c.head_ts(), Some(t(3)));
        assert_eq!(c.total_bytes(), ByteSize::new(30));
    }

    #[test]
    fn plan_get_all_cached() {
        let mut c = cache_with(&[1]);
        for s in 1..=3 {
            c.insert(obj(s, s, 10), t(s));
        }
        let plan = c.plan_get(TimeRange::closed(t(1), t(3)), t(4));
        assert!(plan.is_full_hit());
        assert_eq!(plan.cached.len(), 3);
        assert_eq!(plan.cached_bytes, ByteSize::new(30));
    }

    #[test]
    fn plan_get_partial_miss_after_eviction() {
        let mut c = cache_with(&[1]);
        for s in 1..=5 {
            c.insert(obj(s, s, 10), t(s));
        }
        // Evict the two oldest objects (ts 1 and 2).
        c.drop_tail();
        c.drop_tail();
        // Request [1, 4]: the evicted region is missed, up to and
        // including the last evicted timestamp.
        let plan = c.plan_get(TimeRange::closed(t(1), t(4)), t(6));
        assert_eq!(plan.missed.len(), 1, "one leading missed range");
        let missed = plan.missed[0];
        assert_eq!(missed.from, t(1));
        assert!(missed.contains(t(2)), "evicted ts 2 must be refetchable");
        assert!(
            !missed.contains(t(3)),
            "resident ts 3 must not be refetched"
        );
        let cached_ts: Vec<Timestamp> = plan.cached.iter().map(|&(_, ts, _)| ts).collect();
        assert_eq!(cached_ts, vec![t(3), t(4)]);
    }

    #[test]
    fn plan_get_all_missed_before_coverage() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 2, 10), t(2));
        c.insert(obj(1, 10, 10), t(10));
        c.drop_tail(); // coverage now starts just past ts 2
        let range = TimeRange::closed(t(0), t(2));
        let plan = c.plan_get(range, t(11));
        assert_eq!(plan, GetPlan::all_missed(range));
    }

    #[test]
    fn plan_get_fresh_cache_covers_from_creation() {
        // A cache created at t=0 with its first object at t=5 fully
        // covers [0, 5]: nothing existed before the first result, so
        // nothing is missed.
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 5, 10), t(5));
        let plan = c.plan_get(TimeRange::closed(Timestamp::ZERO, t(5)), t(6));
        assert!(plan.is_full_hit());
        assert_eq!(plan.cached.len(), 1);
    }

    #[test]
    fn plan_get_empty_fresh_cache_is_empty_hit() {
        // A fresh cache covers everything since creation: an empty cache
        // that never dropped anything has simply seen no results yet.
        let mut c = cache_with(&[1]);
        let range = TimeRange::closed(t(1), t(5));
        let plan = c.plan_get(range, t(6));
        assert!(plan.is_full_hit());
        assert!(plan.cached.is_empty());
    }

    #[test]
    fn plan_get_emptied_cache_misses_dropped_range() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 3, 10), t(3));
        c.drop_tail(); // cache now empty, coverage starts past t=3
        let range = TimeRange::closed(t(1), t(3));
        assert_eq!(c.plan_get(range, t(4)), GetPlan::all_missed(range));
        // But the still-covered (empty) region ahead is a clean hit.
        let ahead = TimeRange::closed(t(4), t(5));
        assert!(c.plan_get(ahead, t(6)).is_full_hit());
    }

    #[test]
    fn plan_get_empty_range_is_noop_hit() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        let plan = c.plan_get(TimeRange::half_open(t(2), t(2)), t(3));
        assert!(plan.is_full_hit());
        assert!(plan.cached.is_empty());
    }

    #[test]
    fn plan_get_updates_lru_key() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.plan_get(TimeRange::closed(t(0), t(1)), t(9));
        assert_eq!(c.last_access(), t(9));
    }

    #[test]
    fn consumption_drops_fully_retrieved_objects() {
        let mut c = cache_with(&[1, 2]);
        c.insert(obj(0, 1, 10), t(1));
        c.insert(obj(1, 2, 10), t(2));
        // Subscriber 1 consumes both; objects stay (2 still pending).
        let dropped = c.consume_up_to(SubscriberId::new(1), t(2), t(3));
        assert!(dropped.is_empty());
        assert_eq!(c.len(), 2);
        // Subscriber 2 consumes only the first; it is now fully consumed.
        let dropped = c.consume_up_to(SubscriberId::new(2), t(1), t(4));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].ts, t(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.total_bytes(), ByteSize::new(10));
    }

    #[test]
    fn late_subscriber_not_attached_to_old_objects() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.add_subscriber(SubscriberId::new(2));
        c.insert(obj(1, 2, 10), t(2));
        assert_eq!(c.iter().next().unwrap().fanout(), 1);
        assert_eq!(c.iter().nth(1).unwrap().fanout(), 2);
        // Sub 1 consuming both leaves only the newer one (sub 2 pending).
        let dropped = c.consume_up_to(SubscriberId::new(1), t(2), t(3));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].ts, t(1));
    }

    #[test]
    fn remove_subscriber_strips_pending_sets() {
        let mut c = cache_with(&[1, 2]);
        c.insert(obj(0, 1, 10), t(1));
        let dropped = c.remove_subscriber(SubscriberId::new(1));
        assert!(dropped.is_empty());
        assert_eq!(c.subscriber_count(), 1);
        // Removing the last pending subscriber drops the object.
        let dropped = c.remove_subscriber(SubscriberId::new(2));
        assert_eq!(dropped.len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn drop_tail_removes_oldest() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.insert(obj(1, 2, 20), t(2));
        let victim = c.drop_tail().unwrap();
        assert_eq!(victim.ts, t(1));
        assert_eq!(c.total_bytes(), ByteSize::new(20));
        assert_eq!(c.tail_ts(), Some(t(2)));
    }

    #[test]
    fn expire_tail_respects_ttl() {
        let mut c = cache_with(&[1]);
        c.set_ttl(SimDuration::from_secs(5));
        c.insert(obj(0, 1, 10), t(1)); // expires at 6
        c.insert(obj(1, 4, 10), t(4)); // expires at 9
        let dropped = c.expire_tail(t(7));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].ts, t(1));
        assert_eq!(c.len(), 1);
        // Nothing more until t=9.
        assert!(c.expire_tail(t(8)).is_empty());
        assert_eq!(c.expire_tail(t(9)).len(), 1);
    }

    #[test]
    fn gaps_are_reported_as_point_misses() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.record_gap(t(2)); // admission-rejected object
        c.insert(obj(1, 3, 10), t(3));
        let plan = c.plan_get(TimeRange::closed(t(1), t(3)), t(4));
        assert_eq!(plan.cached.len(), 2);
        assert_eq!(plan.missed, vec![TimeRange::closed(t(2), t(2))]);
        // A request that excludes the gap sees a clean hit.
        let plan = c.plan_get(TimeRange::closed(t(3), t(3)), t(5));
        assert!(plan.is_full_hit());
    }

    #[test]
    fn gaps_below_coverage_are_pruned() {
        let mut c = cache_with(&[1]);
        c.insert(obj(0, 1, 10), t(1));
        c.record_gap(t(2));
        c.insert(obj(1, 3, 10), t(3));
        assert_eq!(c.gap_count(), 1);
        // Evicting past the gap folds it into the leading missed range.
        c.drop_tail(); // coverage -> just past t(1)
        c.drop_tail(); // coverage -> just past t(3), gap at t(2) pruned
        assert_eq!(c.gap_count(), 0);
        let plan = c.plan_get(TimeRange::closed(t(1), t(3)), t(4));
        assert_eq!(plan.missed.len(), 1);
        assert!(plan.missed[0].contains(t(2)));
    }

    #[test]
    fn rates_reflect_arrivals_and_consumption() {
        let mut c = cache_with(&[1]);
        for s in 0..10u64 {
            c.insert(obj(s, s, 1000), t(s));
        }
        let lambda = c.arrival_rate(t(10));
        assert!(
            lambda > 0.0,
            "arrival rate should be positive, got {lambda}"
        );
        // Consume everything: consumption rate becomes positive, growth
        // rate is clamped at >= 0.
        c.consume_up_to(SubscriberId::new(1), t(9), t(10));
        assert!(c.consumption_rate(t(10)) > 0.0);
        assert!(c.growth_rate(t(10)) >= 0.0);
    }

    #[test]
    fn growth_rate_is_lambda_minus_eta_clamped() {
        let mut c = cache_with(&[1]);
        for s in 0..5u64 {
            c.insert(obj(s, s, 100), t(s));
        }
        c.consume_up_to(SubscriberId::new(1), t(4), t(5));
        let now = t(5);
        let expected = (c.arrival_rate(now) - c.consumption_rate(now)).max(0.0);
        assert_eq!(c.growth_rate(now), expected);
    }
}
