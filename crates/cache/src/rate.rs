//! Sliding-window byte-rate estimation.
//!
//! The TTL computation of Section IV-B needs the broker to "keep track of
//! the incoming data rate and the consumption rate of each cache (by
//! calculating moving averages over time)". [`RateEstimator`] implements
//! that moving average over a fixed time window.

use std::collections::VecDeque;

use bad_types::{SimDuration, Timestamp};

/// A moving-average estimator of a byte rate over a sliding time window.
///
/// # Examples
///
/// ```
/// use bad_cache::RateEstimator;
/// use bad_types::{SimDuration, Timestamp};
///
/// let mut est = RateEstimator::new(SimDuration::from_secs(10));
/// est.record(Timestamp::from_secs(1), 1000);
/// est.record(Timestamp::from_secs(2), 1000);
/// // 2000 bytes over a 10 s window => 200 B/s.
/// assert_eq!(est.rate(Timestamp::from_secs(5)), 200.0);
/// ```
#[derive(Clone, Debug)]
pub struct RateEstimator {
    window: SimDuration,
    /// `(when, bytes)` events inside the window, oldest first.
    events: VecDeque<(Timestamp, u64)>,
    /// Running sum of `events` bytes.
    in_window: u64,
}

impl RateEstimator {
    /// Creates an estimator with the given averaging window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "rate window must be positive");
        Self {
            window,
            events: VecDeque::new(),
            in_window: 0,
        }
    }

    /// The averaging window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records `bytes` observed at time `now`.
    pub fn record(&mut self, now: Timestamp, bytes: u64) {
        self.prune(now);
        self.events.push_back((now, bytes));
        self.in_window += bytes;
    }

    /// The average rate in bytes/second over the window ending at `now`.
    pub fn rate(&self, now: Timestamp) -> f64 {
        let cutoff = now - self.window;
        let live: u64 = self
            .events
            .iter()
            .filter(|&&(ts, _)| ts > cutoff)
            .map(|&(_, b)| b)
            .sum();
        live as f64 / self.window.as_secs_f64()
    }

    /// Total bytes inside the window ending at `now`.
    ///
    /// Like [`rate`](Self::rate) this is a pure read: events older than the
    /// window are excluded by filtering rather than by pruning the buffer, so
    /// read paths never need a mutable borrow. Buffered events are still
    /// pruned incrementally on [`record`](Self::record).
    pub fn bytes_in_window(&self, now: Timestamp) -> u64 {
        let cutoff = now - self.window;
        self.events
            .iter()
            .filter(|&&(ts, _)| ts > cutoff)
            .map(|&(_, b)| b)
            .sum()
    }

    /// Number of recorded events inside the window ending at `now`,
    /// regardless of size. The analytical model of Section IV works in
    /// *object* arrival/consumption rates (λ, η as events/s), while the
    /// TTL computation works in bytes/s — this read serves the former
    /// from the same buffer.
    pub fn events_in_window(&self, now: Timestamp) -> u64 {
        let cutoff = now - self.window;
        self.events.iter().filter(|&&(ts, _)| ts > cutoff).count() as u64
    }

    /// Average event (object) rate in events/second over the window.
    pub fn event_rate(&self, now: Timestamp) -> f64 {
        self.events_in_window(now) as f64 / self.window.as_secs_f64()
    }

    fn prune(&mut self, now: Timestamp) {
        let cutoff = now - self.window;
        while let Some(&(ts, bytes)) = self.events.front() {
            if ts <= cutoff {
                self.events.pop_front();
                self.in_window -= bytes;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn rate_is_bytes_over_window() {
        let mut est = RateEstimator::new(SimDuration::from_secs(10));
        est.record(t(1), 500);
        est.record(t(3), 500);
        assert_eq!(est.rate(t(5)), 100.0);
    }

    #[test]
    fn old_events_age_out() {
        let mut est = RateEstimator::new(SimDuration::from_secs(10));
        est.record(t(1), 1000);
        assert!(est.rate(t(5)) > 0.0);
        // At t=20 the event at t=1 is outside the (10, 20] window.
        assert_eq!(est.rate(t(20)), 0.0);
        assert_eq!(est.bytes_in_window(t(20)), 0);
    }

    #[test]
    fn empty_estimator_has_zero_rate() {
        let est = RateEstimator::new(SimDuration::from_secs(10));
        assert_eq!(est.rate(t(100)), 0.0);
    }

    #[test]
    fn record_prunes_incrementally() {
        let mut est = RateEstimator::new(SimDuration::from_secs(2));
        for sec in 0..100u64 {
            est.record(t(sec), 10);
        }
        // Only the events within the last 2 s remain buffered.
        assert!(est.events.len() <= 3, "len = {}", est.events.len());
        assert_eq!(est.rate(t(99)), 10.0); // 20 bytes / 2 s
    }

    #[test]
    fn event_rate_counts_objects_not_bytes() {
        let mut est = RateEstimator::new(SimDuration::from_secs(10));
        est.record(t(1), 5000);
        est.record(t(2), 1);
        assert_eq!(est.events_in_window(t(5)), 2);
        assert_eq!(est.event_rate(t(5)), 0.2);
        // Both events age out together with the byte view.
        assert_eq!(est.events_in_window(t(20)), 0);
        assert_eq!(est.event_rate(t(20)), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate window must be positive")]
    fn zero_window_panics() {
        RateEstimator::new(SimDuration::ZERO);
    }

    #[test]
    fn window_edge_pruning_matches_rate() {
        let est = {
            let mut est = RateEstimator::new(SimDuration::from_secs(10));
            est.record(t(5), 100);
            est
        };
        // `bytes_in_window` is an immutable read and agrees with `rate` at
        // the window edge: an event exactly `window` old is excluded.
        assert_eq!(est.bytes_in_window(t(14)), 100);
        assert_eq!(est.rate(t(14)), 10.0);
        assert_eq!(est.bytes_in_window(t(15)), 0);
        assert_eq!(est.rate(t(15)), 0.0);
        // A later record prunes the buffer; both reads stay consistent.
        let mut est = est;
        est.record(t(16), 50);
        assert_eq!(est.bytes_in_window(t(16)), 50);
        assert_eq!(est.in_window, 50);
    }
}
