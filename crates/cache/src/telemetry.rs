//! Cache-side telemetry wiring: named counters/gauges/histograms plus
//! the structured per-decision event stream.
//!
//! A [`CacheTelemetry`] bundles the metric handles one broker's cache
//! manager touches with the [`SharedSink`] its events go to. The
//! default is fully detached (a private registry and the
//! allocation-free [`bad_telemetry::NullSink`]), so unconfigured
//! managers pay one atomic add per counter bump and a single virtual
//! `enabled()` call per event site.

use bad_telemetry::{
    Counter, Event, Gauge, Histogram, Profiler, Registry, SharedSink, SharedTracer, SpanKind,
    Tracer,
};
use bad_types::{BackendSubId, ByteSize, ObjectId, SimDuration, Timestamp};

use crate::autopilot::PolicySwitchRecord;
use crate::metrics::DropKind;
use crate::object::CachedObject;

/// Metric handles + event sink for one [`crate::CacheManager`].
#[derive(Clone, Debug)]
pub struct CacheTelemetry {
    sink: SharedSink,
    tracer: SharedTracer,
    profiler: Profiler,
    hit_objects: Counter,
    miss_objects: Counter,
    inserted_objects: Counter,
    consumed_objects: Counter,
    evicted_objects: Counter,
    expired_objects: Counter,
    unsubscribed_objects: Counter,
    ttl_retunes: Counter,
    occupancy_bytes: Gauge,
    object_bytes: Histogram,
    holding_us: Histogram,
}

impl Default for CacheTelemetry {
    fn default() -> Self {
        Self::detached()
    }
}

impl CacheTelemetry {
    /// Registers the cache metric family on `registry` and routes
    /// events to `sink`. Lifecycle tracing stays off; use
    /// [`CacheTelemetry::traced`] to thread a live tracer through.
    pub fn new(registry: &Registry, sink: SharedSink) -> Self {
        Self::traced(registry, sink, Tracer::disabled())
    }

    /// Like [`CacheTelemetry::new`], but also emits lifecycle spans
    /// (insert / drop / expire / fully-consumed) through `tracer`.
    pub fn traced(registry: &Registry, sink: SharedSink, tracer: SharedTracer) -> Self {
        Self {
            sink,
            tracer,
            profiler: Profiler::disabled(),
            hit_objects: registry.counter("bad_cache_hit_objects_total"),
            miss_objects: registry.counter("bad_cache_miss_objects_total"),
            inserted_objects: registry.counter("bad_cache_inserted_objects_total"),
            consumed_objects: registry.counter("bad_cache_consumed_objects_total"),
            evicted_objects: registry.counter("bad_cache_evicted_objects_total"),
            expired_objects: registry.counter("bad_cache_expired_objects_total"),
            unsubscribed_objects: registry.counter("bad_cache_unsubscribed_objects_total"),
            ttl_retunes: registry.counter("bad_cache_ttl_retunes_total"),
            occupancy_bytes: registry.gauge("bad_cache_occupancy_bytes"),
            object_bytes: registry.histogram("bad_cache_object_bytes"),
            holding_us: registry.histogram("bad_cache_holding_us"),
        }
    }

    /// A telemetry bundle wired to a throwaway registry and the null
    /// sink — the default for standalone managers and tests.
    pub fn detached() -> Self {
        Self::new(&Registry::new(), bad_telemetry::null_sink())
    }

    /// Attaches the continuous profiler
    /// ([`bad_telemetry::profile`]); the manager this bundle is
    /// installed on registers its per-shard lock sites through it and
    /// threads stage timers through the data paths. Profiling is
    /// metadata-only: a profiled manager makes byte-identical caching
    /// decisions.
    #[must_use]
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The profiler in force ([`Profiler::disabled`] by default).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The event sink in force.
    pub fn sink(&self) -> &SharedSink {
        &self.sink
    }

    /// The lifecycle tracer in force ([`Tracer::disabled`] unless
    /// constructed via [`CacheTelemetry::traced`]).
    pub fn tracer(&self) -> &SharedTracer {
        &self.tracer
    }

    /// Whether event construction is worth the trouble at all.
    pub fn tracing(&self) -> bool {
        self.sink.enabled()
    }

    /// `produced` is the object's result timestamp; the tracer turns
    /// the difference into the produce→insert stage lag.
    #[allow(clippy::too_many_arguments)] // mirrors the insert call's full context
    pub(crate) fn on_insert(
        &self,
        now: Timestamp,
        cache: BackendSubId,
        object: ObjectId,
        produced: Timestamp,
        bytes: ByteSize,
        total: ByteSize,
    ) {
        self.inserted_objects.inc();
        self.object_bytes.record(bytes.as_u64());
        self.occupancy_bytes.set(total.as_u64());
        if self.sink.enabled() {
            self.sink.record(&Event::CacheInsert {
                t_us: now.as_micros(),
                cache: cache.as_u64(),
                object: object.as_u64(),
                bytes: bytes.as_u64(),
                total_bytes: total.as_u64(),
            });
        }
        if self.tracer.enabled() {
            let lag_us = now.as_micros().saturating_sub(produced.as_micros());
            self.tracer.on_cache_insert(
                now.as_micros(),
                cache.as_u64(),
                object.as_u64(),
                bytes.as_u64(),
                lag_us,
            );
        }
    }

    pub(crate) fn on_hits(
        &self,
        now: Timestamp,
        cache: BackendSubId,
        objects: u64,
        bytes: ByteSize,
    ) {
        if objects == 0 {
            return;
        }
        self.hit_objects.add(objects);
        if self.sink.enabled() {
            self.sink.record(&Event::CacheHit {
                t_us: now.as_micros(),
                cache: cache.as_u64(),
                objects,
                bytes: bytes.as_u64(),
            });
        }
    }

    pub(crate) fn on_misses(
        &self,
        now: Timestamp,
        cache: BackendSubId,
        objects: u64,
        bytes: ByteSize,
    ) {
        if objects == 0 {
            return;
        }
        self.miss_objects.add(objects);
        if self.sink.enabled() {
            self.sink.record(&Event::CacheMiss {
                t_us: now.as_micros(),
                cache: cache.as_u64(),
                objects,
                bytes: bytes.as_u64(),
            });
        }
    }

    /// Records one dropped object: bumps the per-cause counter, the
    /// holding-time histogram and the occupancy gauge, then emits the
    /// event variant whose kind is `cache.<DropKind::label()>`.
    ///
    /// `score` is the victim's policy score φ/s (evictions only);
    /// `ttl` the TTL in force (expiries only).
    #[allow(clippy::too_many_arguments)] // single fan-in for all four drop causes
    pub(crate) fn on_drop(
        &self,
        now: Timestamp,
        cache: BackendSubId,
        kind: DropKind,
        object: &CachedObject,
        total: ByteSize,
        policy: &'static str,
        score: f64,
        ttl: SimDuration,
    ) {
        match kind {
            DropKind::Consumed => self.consumed_objects.inc(),
            DropKind::Evicted => self.evicted_objects.inc(),
            DropKind::Expired => self.expired_objects.inc(),
            DropKind::Unsubscribed => self.unsubscribed_objects.inc(),
        }
        let age_us = object.age(now).as_micros();
        self.holding_us.record(age_us);
        self.occupancy_bytes.set(total.as_u64());
        if self.tracer.enabled() {
            let (span_kind, drop_label) = match kind {
                DropKind::Consumed => (SpanKind::FullyConsumed, "consume"),
                DropKind::Evicted => (SpanKind::Drop, "evict"),
                DropKind::Expired => (SpanKind::Expire, "expire"),
                DropKind::Unsubscribed => (SpanKind::Drop, "unsubscribe"),
            };
            self.tracer.on_drop(
                now.as_micros(),
                cache.as_u64(),
                object.id.as_u64(),
                object.size.as_u64(),
                span_kind,
                drop_label,
                policy,
                score,
                age_us,
            );
        }
        if !self.sink.enabled() {
            return;
        }
        let t_us = now.as_micros();
        let cache = cache.as_u64();
        let bytes = object.size.as_u64();
        let event = match kind {
            DropKind::Consumed => Event::CacheConsume {
                t_us,
                cache,
                objects: 1,
                bytes,
            },
            DropKind::Evicted => Event::CacheEvict {
                t_us,
                cache,
                object: object.id.as_u64(),
                bytes,
                policy,
                score,
            },
            DropKind::Expired => Event::CacheExpire {
                t_us,
                cache,
                object: object.id.as_u64(),
                bytes,
                ttl_us: ttl.as_micros(),
            },
            DropKind::Unsubscribed => Event::CacheUnsubscribe {
                t_us,
                cache,
                objects: 1,
                bytes,
            },
        };
        self.sink.record(&event);
    }

    /// The autopilot promoted a shadow policy: emits the typed
    /// [`Event::PolicySwitch`] and notes the switch in the flight
    /// recorder's anomaly log so postmortems see regime changes next to
    /// burn-rate alerts.
    pub(crate) fn on_policy_switch(&self, record: &PolicySwitchRecord) {
        if self.sink.enabled() {
            self.sink.record(&Event::PolicySwitch {
                t_us: record.at.as_micros(),
                from: record.from.as_str(),
                to: record.to.as_str(),
                window: record.window,
                net_regret: record.net_regret,
                requested: record.requested,
            });
        }
        if self.tracer.enabled() {
            self.tracer.recorder().note_anomaly(
                &format!(
                    "policy_switch:{}->{}",
                    record.from.as_str(),
                    record.to.as_str()
                ),
                record.at.as_micros(),
            );
        }
    }

    /// One TTL recomputation pass completed (counter only; the
    /// per-cache [`Event::TtlRetune`] events go through
    /// [`CacheTelemetry::on_ttl_retune`] when tracing is enabled).
    pub(crate) fn on_ttl_recompute(&self) {
        self.ttl_retunes.inc();
    }

    pub(crate) fn on_ttl_retune(
        &self,
        now: Timestamp,
        cache: BackendSubId,
        lambda: f64,
        eta: f64,
        rho: f64,
        ttl: SimDuration,
    ) {
        if self.sink.enabled() {
            self.sink.record(&Event::TtlRetune {
                t_us: now.as_micros(),
                cache: cache.as_u64(),
                lambda,
                eta,
                rho,
                ttl_us: ttl.as_micros(),
            });
        }
    }
}
