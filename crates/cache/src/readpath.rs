//! Lock-free GET hot path: seqlock snapshots and the deferred
//! bookkeeping mailbox.
//!
//! The shard mutex serializes every cache operation, and PR 8's
//! profiler showed GETs — the paper's user-facing operation — queueing
//! behind writers on that mutex. This module lets a GET run without
//! the shard lock in the common read-mostly case:
//!
//! * Each cache publishes an immutable [`CacheSnapshot`] of exactly
//!   the state [`crate::ResultCache::plan_get`] reads (entry
//!   descriptors, coverage watermark, admission gaps) behind a
//!   seqlock-style generation counter ([`CacheSlot`]). Readers
//!   validate the generation before and after planning and fall back
//!   to the locked path on any conflict; writers (which always hold
//!   the shard mutex) bump the generation to odd on every
//!   plan-relevant mutation.
//! * A GET still owes bookkeeping (LRU touch, hit counters, telemetry,
//!   victim reindex) and the broker still owes a consume-ack. Both
//!   become [`ReadRecord`]s pushed into a bounded per-shard
//!   [`ReadMailbox`] that every subsequent shard-lock acquisition
//!   drains *first*, so any state observed under the lock — metrics,
//!   eviction decisions, TTL sweeps — is post-drain and byte-identical
//!   to the serial locked execution.
//!
//! Everything here is `std`-only: `AtomicU64` + `Arc` swaps, with
//! tiny mutexes whose critical sections are pointer copies.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use bad_types::{BackendSubId, ByteSize, ObjectId, SubscriberId, TimeRange, Timestamp};

use crate::result_cache::{GetPlan, ResultCache};
use crate::sharded::mix64;

/// Deferred bookkeeping for the mailbox: one optimistic GET's hit
/// accounting, or one consume-ack taken off the contended path.
#[derive(Clone, Debug)]
pub(crate) enum ReadRecord {
    /// An optimistic GET served `objects`/`bytes` from a snapshot of
    /// cache `bs` at time `now`; replay the LRU touch, hit counters,
    /// telemetry event and policy reindex the locked path would have
    /// done inline.
    Hits {
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    },
    /// A consume-ack deferred off a contended shard; replay the full
    /// `ack_consume` (drops land in the manager's deferred-drop stash).
    Ack {
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    },
}

/// Mailbox capacity; a full mailbox forces the GET/ack onto the locked
/// path, which drains it, so the bound is back-pressure, not loss.
pub(crate) const MAILBOX_CAP: usize = 1024;

/// Bounded swap-drain mailbox for [`ReadRecord`]s.
///
/// Pushes lock the inner `Vec` mutex only long enough for one `push`;
/// the drain takes the whole `Vec` in one `mem::take`. `len` is a
/// racy fast-path hint so uncontended lock acquisitions skip the
/// mutex entirely when nothing is pending.
#[derive(Debug, Default)]
pub(crate) struct ReadMailbox {
    records: Mutex<Vec<ReadRecord>>,
    len: AtomicUsize,
    /// 64-bit bloom filter over `mix64(bs)` of caches with a deferred
    /// ack in flight. An optimistic GET whose cache hits the filter
    /// must fall back to the locked path (which drains first), or it
    /// could serve pre-ack state the serial execution has already
    /// consumed. False positives only cost a fallback.
    ack_filter: AtomicU64,
}

fn ack_bit(bs: BackendSubId) -> u64 {
    1u64 << (mix64(bs.as_u64()) & 63)
}

impl ReadMailbox {
    /// Whether nothing is pending (racy hint; exact under the shard
    /// lock because all pushes for a drained shard happen-before the
    /// drain that observed them).
    pub(crate) fn is_empty(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }

    /// Whether cache `bs` may have a deferred ack pending.
    pub(crate) fn maybe_pending_ack(&self, bs: BackendSubId) -> bool {
        self.ack_filter.load(Ordering::Acquire) & ack_bit(bs) != 0
    }

    /// Enqueues one record; returns `false` (record not enqueued) when
    /// the mailbox is full.
    pub(crate) fn push(&self, record: ReadRecord) -> bool {
        let mut records = self.records.lock().expect("mailbox poisoned");
        if records.len() >= MAILBOX_CAP {
            return false;
        }
        if let ReadRecord::Ack { bs, .. } = record {
            self.ack_filter.fetch_or(ack_bit(bs), Ordering::AcqRel);
        }
        records.push(record);
        self.len.store(records.len(), Ordering::Release);
        true
    }

    /// Takes every pending record in FIFO order and clears the ack
    /// filter. Filter reset and take happen under the same mutex as
    /// pushes, so no concurrently pushed ack can lose its filter bit.
    pub(crate) fn drain(&self) -> Vec<ReadRecord> {
        let mut records = self.records.lock().expect("mailbox poisoned");
        let out = std::mem::take(&mut *records);
        self.ack_filter.store(0, Ordering::Release);
        self.len.store(0, Ordering::Release);
        out
    }
}

/// An immutable copy of exactly the state `ResultCache::plan_get`
/// reads. Published behind a [`CacheSlot`]; never mutated after
/// construction, so optimistic readers can never observe a torn plan —
/// the generation check only guards *freshness*.
#[derive(Clone, Debug)]
pub(crate) struct CacheSnapshot {
    /// The slot generation this snapshot was built at (always even).
    gen: u64,
    coverage_from: Timestamp,
    /// Admission-gap timestamps, ascending.
    gaps: Vec<Timestamp>,
    /// `(id, ts, size)` per resident object, timestamp-ascending
    /// (tail→head), mirroring the deque order the locked scan walks.
    entries: Vec<(ObjectId, Timestamp, ByteSize)>,
}

impl CacheSnapshot {
    fn empty() -> Self {
        Self {
            gen: 0,
            coverage_from: Timestamp::ZERO,
            gaps: Vec::new(),
            entries: Vec::new(),
        }
    }

    /// Captures the plan-relevant state of a live cache at generation
    /// `gen`. Caller must hold the shard lock.
    pub(crate) fn capture(cache: &ResultCache, gen: u64) -> Self {
        Self {
            gen,
            coverage_from: cache.coverage_from(),
            gaps: cache.gaps().collect(),
            entries: cache.iter().map(|o| (o.id, o.ts, o.size)).collect(),
        }
    }

    /// Plans a range retrieval against the snapshot — the exact
    /// algorithm of [`ResultCache::plan_get`] minus the `last_access`
    /// touch (replayed later via a [`ReadRecord::Hits`]).
    pub(crate) fn plan_get(&self, range: TimeRange) -> GetPlan {
        if range.is_empty() {
            return GetPlan {
                cached: Vec::new(),
                cached_bytes: ByteSize::ZERO,
                missed: Vec::new(),
            };
        }
        let covered_from = self.coverage_from;
        if range.to < covered_from || (range.to == covered_from && !range.closed_right) {
            return GetPlan::all_missed(range);
        }
        let mut missed = Vec::new();
        if range.from < covered_from {
            missed.push(TimeRange::half_open(range.from, covered_from));
        }
        let gap_start = covered_from.max(range.from);
        let first_gap = self.gaps.partition_point(|&g| g < gap_start);
        for &gap in &self.gaps[first_gap..] {
            if !range.contains(gap) {
                break;
            }
            missed.push(TimeRange::closed(gap, gap));
        }
        let mut cached = Vec::new();
        let mut cached_bytes = ByteSize::ZERO;
        // Entries are timestamp-ascending, so skip straight to the
        // first candidate instead of scanning from the tail.
        let first = self.entries.partition_point(|&(_, ts, _)| ts < range.from);
        for &(id, ts, size) in &self.entries[first..] {
            if ts > range.to {
                break;
            }
            if range.contains(ts) {
                cached.push((id, ts, size));
                cached_bytes += size;
            }
        }
        GetPlan {
            cached,
            cached_bytes,
            missed,
        }
    }
}

/// One cache's published snapshot plus its seqlock generation.
///
/// Protocol: `gen` even = `snap` is current; odd = stale (a writer
/// mutated plan-relevant state since the last rebuild). Writers always
/// hold the shard mutex, so they never race each other:
///
/// * invalidate (any plan-relevant mutation): even→odd (`gen + 1`).
/// * rebuild (locked GET fallback): store the new snapshot, then store
///   the even `gen + 1` with `Release`.
///
/// Readers load `gen` (`Acquire`, must be even), copy the `Arc` under
/// the micro-mutex, check the snapshot's embedded generation matches,
/// plan, then re-load `gen`; any mismatch falls back to the locked
/// path.
#[derive(Debug)]
pub(crate) struct CacheSlot {
    gen: AtomicU64,
    snap: Mutex<Arc<CacheSnapshot>>,
    /// Set by optimistic readers, cleared on republish: lets writers
    /// eagerly refresh only the slots that GETs actually touch, so the
    /// snapshot-capture cost lands on the (already locked) writer
    /// instead of the reader's fallback path.
    read_hint: AtomicBool,
}

impl CacheSlot {
    /// A new slot starts stale (odd generation) so the first GET takes
    /// the locked path and publishes a real snapshot.
    fn new() -> Self {
        Self {
            gen: AtomicU64::new(1),
            snap: Mutex::new(Arc::new(CacheSnapshot::empty())),
            read_hint: AtomicBool::new(false),
        }
    }

    /// Marks the published snapshot stale. Caller holds the shard lock.
    pub(crate) fn invalidate(&self) {
        let gen = self.gen.load(Ordering::Relaxed);
        if gen & 1 == 0 {
            self.gen.store(gen + 1, Ordering::Release);
        }
    }

    /// Rebuilds and republishes the snapshot from the live cache if it
    /// is stale. Caller holds the shard lock.
    pub(crate) fn refresh(&self, cache: &ResultCache) {
        let gen = self.gen.load(Ordering::Relaxed);
        if gen & 1 == 0 {
            return;
        }
        let next = gen + 1;
        *self.snap.lock().expect("snapshot poisoned") =
            Arc::new(CacheSnapshot::capture(cache, next));
        self.gen.store(next, Ordering::Release);
        self.read_hint.store(false, Ordering::Relaxed);
    }

    /// True if an optimistic GET touched this slot since the last
    /// republish. Caller holds the shard lock.
    pub(crate) fn read_since_refresh(&self) -> bool {
        self.read_hint.load(Ordering::Relaxed)
    }

    /// Returns a validated snapshot, or `None` if a writer is (or was)
    /// active since it was published.
    pub(crate) fn read(&self) -> Option<Arc<CacheSnapshot>> {
        // Load-first so the common case (hint already set) never dirties
        // the cache line under other readers.
        if !self.read_hint.load(Ordering::Relaxed) {
            self.read_hint.store(true, Ordering::Relaxed);
        }
        let gen = self.gen.load(Ordering::Acquire);
        if gen & 1 == 1 {
            return None;
        }
        let snap = Arc::clone(&self.snap.lock().expect("snapshot poisoned"));
        if snap.gen != gen {
            return None;
        }
        Some(snap)
    }

    /// Re-validates a snapshot after planning against it.
    pub(crate) fn still_valid(&self, snap: &CacheSnapshot) -> bool {
        self.gen.load(Ordering::Acquire) == snap.gen
    }
}

/// The published `bs → slot` map: copy-on-write `BTreeMap` behind an
/// `Arc`, swapped only on cache create/remove (rare), read by every
/// optimistic GET with one mutex-guarded pointer copy.
#[derive(Debug)]
struct SlotMap {
    map: Mutex<Arc<BTreeMap<BackendSubId, Arc<CacheSlot>>>>,
}

impl SlotMap {
    fn new() -> Self {
        Self {
            map: Mutex::new(Arc::new(BTreeMap::new())),
        }
    }

    fn load(&self) -> Arc<BTreeMap<BackendSubId, Arc<CacheSlot>>> {
        Arc::clone(&self.map.lock().expect("slot map poisoned"))
    }

    fn add(&self, bs: BackendSubId) {
        let mut map = self.map.lock().expect("slot map poisoned");
        if map.contains_key(&bs) {
            return;
        }
        let mut next = (**map).clone();
        next.insert(bs, Arc::new(CacheSlot::new()));
        *map = Arc::new(next);
    }

    fn remove(&self, bs: BackendSubId) {
        let mut map = self.map.lock().expect("slot map poisoned");
        if !map.contains_key(&bs) {
            return;
        }
        let mut next = (**map).clone();
        next.remove(&bs);
        *map = Arc::new(next);
    }
}

/// Per-shard lock-free read state: the snapshot slots, the deferred
/// bookkeeping mailbox, and the optimistic-reads master switch.
#[derive(Debug)]
pub(crate) struct ShardReadPath {
    slots: SlotMap,
    pub(crate) mailbox: ReadMailbox,
    /// Cleared when shadow evaluation attaches: ghost replay needs the
    /// plan synchronously under the shard lock, so every GET falls
    /// back to the locked path while a shadow is live.
    optimistic: AtomicBool,
}

impl ShardReadPath {
    pub(crate) fn new() -> Self {
        Self {
            slots: SlotMap::new(),
            mailbox: ReadMailbox::default(),
            optimistic: AtomicBool::new(true),
        }
    }

    /// Whether optimistic reads are currently allowed on this shard.
    pub(crate) fn optimistic(&self) -> bool {
        self.optimistic.load(Ordering::Acquire)
    }

    /// Disables (or re-enables) optimistic reads.
    pub(crate) fn set_optimistic(&self, on: bool) {
        self.optimistic.store(on, Ordering::Release);
    }

    /// The current published slot map.
    pub(crate) fn slots(&self) -> Arc<BTreeMap<BackendSubId, Arc<CacheSlot>>> {
        self.slots.load()
    }

    /// Registers a slot for a newly created cache (stale until the
    /// first locked GET publishes a snapshot).
    pub(crate) fn add_slot(&self, bs: BackendSubId) {
        self.slots.add(bs);
    }

    /// Unpublishes a removed cache's slot; optimistic readers then see
    /// the cache as missing, exactly like the locked path.
    pub(crate) fn remove_slot(&self, bs: BackendSubId) {
        self.slots.remove(bs);
    }

    /// Marks cache `bs`'s snapshot stale. Caller holds the shard lock.
    pub(crate) fn invalidate(&self, bs: BackendSubId) {
        if let Some(slot) = self.slots.load().get(&bs) {
            slot.invalidate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::NewObject;
    use bad_types::SimDuration;

    fn cache_with_entries(ts_list: &[u64]) -> ResultCache {
        let mut c = ResultCache::new(
            BackendSubId::new(7),
            Timestamp::ZERO,
            SimDuration::from_mins(5),
        );
        c.add_subscriber(SubscriberId::new(1));
        for (i, &ts) in ts_list.iter().enumerate() {
            c.insert(
                NewObject {
                    id: ObjectId::new(i as u64),
                    ts: Timestamp::from_secs(ts),
                    size: ByteSize::new(10),
                    fetch_latency: SimDuration::from_millis(500),
                },
                Timestamp::from_secs(ts),
            );
        }
        c
    }

    /// The snapshot planner must agree with the live planner on every
    /// range shape: empty, fully before coverage, straddling, gaps.
    #[test]
    fn snapshot_plan_matches_live_plan() {
        let mut cache = cache_with_entries(&[10, 20, 30, 40]);
        cache.record_gap(Timestamp::from_secs(25));
        let snap = CacheSnapshot::capture(&cache, 2);
        let ranges = [
            TimeRange::closed(Timestamp::from_secs(10), Timestamp::from_secs(40)),
            TimeRange::closed(Timestamp::from_secs(15), Timestamp::from_secs(35)),
            TimeRange::half_open(Timestamp::from_secs(10), Timestamp::from_secs(30)),
            TimeRange::closed(Timestamp::from_secs(50), Timestamp::from_secs(60)),
            TimeRange::half_open(Timestamp::from_secs(5), Timestamp::from_secs(5)),
            TimeRange::closed(Timestamp::from_secs(25), Timestamp::from_secs(25)),
        ];
        for range in ranges {
            let live = cache.plan_get(range, Timestamp::from_secs(100));
            let optimistic = snap.plan_get(range);
            assert_eq!(live, optimistic, "range {range:?}");
        }
    }

    #[test]
    fn slot_read_rejects_stale_generation() {
        let cache = cache_with_entries(&[10]);
        let slot = CacheSlot::new();
        assert!(slot.read().is_none(), "new slot starts stale");
        slot.refresh(&cache);
        let snap = slot.read().expect("fresh after refresh");
        assert!(slot.still_valid(&snap));
        slot.invalidate();
        assert!(!slot.still_valid(&snap));
        assert!(slot.read().is_none());
    }

    #[test]
    fn mailbox_bounds_and_ack_filter() {
        let mbox = ReadMailbox::default();
        assert!(mbox.is_empty());
        let bs = BackendSubId::new(3);
        assert!(mbox.push(ReadRecord::Ack {
            bs,
            sub: SubscriberId::new(1),
            up_to: Timestamp::from_secs(1),
            now: Timestamp::from_secs(1),
        }));
        assert!(mbox.maybe_pending_ack(bs));
        assert!(!mbox.is_empty());
        let drained = mbox.drain();
        assert_eq!(drained.len(), 1);
        assert!(mbox.is_empty());
        assert!(!mbox.maybe_pending_ack(bs));
        for i in 0..MAILBOX_CAP {
            assert!(mbox.push(ReadRecord::Hits {
                bs,
                objects: i as u64,
                bytes: ByteSize::ZERO,
                now: Timestamp::ZERO,
            }));
        }
        assert!(
            !mbox.push(ReadRecord::Hits {
                bs,
                objects: 0,
                bytes: ByteSize::ZERO,
                now: Timestamp::ZERO,
            }),
            "push past capacity must report back-pressure"
        );
    }
}
