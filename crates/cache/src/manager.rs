//! The broker's aggregate cache manager.
//!
//! One [`CacheManager`] owns every per-backend-subscription
//! [`ResultCache`] of a broker, enforces the shared budget `B` via the
//! configured policy, runs the periodic TTL recomputation, and feeds
//! [`CacheMetrics`].

use std::collections::BTreeMap;
use std::sync::Arc;

use bad_telemetry::{OpTimer, Profiler, SketchRecorder, StagePath};
use bad_types::{
    BackendSubId, BadError, ByteSize, Result, SimDuration, SubscriberId, TimeRange, Timestamp,
};

use crate::admission::AdmissionControl;
use crate::autopilot::{AutopilotConfig, AutopilotStatus, PolicyController, PolicySwitchRecord};
use crate::index::VictimIndex;
use crate::metrics::CacheMetrics;
pub use crate::metrics::DropKind as DropReason;
use crate::object::{CachedObject, NewObject};
use crate::policy::{EvictionPolicy, PolicyKind, PolicyName};
use crate::readpath::{ReadRecord, ShardReadPath};
use crate::result_cache::{GetPlan, ResultCache};
use crate::shadow::{ShadowConfig, ShadowEvaluator, ShadowSnapshot};
use crate::telemetry::CacheTelemetry;
use crate::ttl::TtlComputer;

/// Tuning knobs of the cache manager.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Aggregate budget `B` across all result caches.
    pub budget: ByteSize,
    /// Window of the λ/η moving-average rate estimators.
    pub rate_window: SimDuration,
    /// How often TTLs are recomputed (TTL/EXP policies).
    pub ttl_recompute_interval: SimDuration,
    /// TTL assigned when no cache is growing.
    pub idle_ttl: SimDuration,
    /// TTL a fresh cache starts with until the first recomputation.
    pub initial_ttl: SimDuration,
    /// Whether victim selection uses the ordered index (`O(log N)`)
    /// instead of a linear scan (`O(N)`); results are identical.
    pub use_victim_index: bool,
    /// Whether fully consumed objects are dropped immediately (the
    /// paper's behaviour). Disabling this is an ablation: objects then
    /// only leave via eviction or expiry.
    pub drop_on_full_consumption: bool,
    /// Whether [`crate::ShardedCacheManager`] serves GETs from seqlock
    /// snapshots without taking the shard mutex, deferring hit/ack
    /// bookkeeping through the read mailbox ([`crate::readpath`]).
    /// `false` restores the fully locked read path byte-for-byte.
    pub use_lockfree_reads: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            budget: ByteSize::from_mib(50),
            rate_window: SimDuration::from_mins(5),
            ttl_recompute_interval: SimDuration::from_mins(1),
            idle_ttl: SimDuration::from_hours(1),
            initial_ttl: SimDuration::from_secs(30),
            use_victim_index: true,
            drop_on_full_consumption: true,
            use_lockfree_reads: true,
        }
    }
}

/// An object that left the cache, with the cause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DroppedObject {
    /// The cache the object lived in.
    pub cache: BackendSubId,
    /// Why it was dropped.
    pub reason: DropReason,
    /// The object itself.
    pub object: CachedObject,
}

/// All result caches of one broker, under one budget and one policy.
///
/// See the [crate-level documentation](crate) for a usage example.
#[derive(Debug)]
pub struct CacheManager {
    policy: Box<dyn EvictionPolicy>,
    policy_name: PolicyName,
    config: CacheConfig,
    admission: AdmissionControl,
    /// Ordered so that every iteration (TTL recomputation, expiry, the
    /// linear victim scan) is deterministic — float accumulation order
    /// matters for bit-exact reproducibility.
    caches: BTreeMap<BackendSubId, ResultCache>,
    total_bytes: ByteSize,
    index: VictimIndex,
    ttl: TtlComputer,
    last_ttl_recompute: Timestamp,
    metrics: CacheMetrics,
    telemetry: CacheTelemetry,
    admission_rejections: u64,
    /// Ghost-cache evaluator ([`crate::shadow`]); `None` (the default)
    /// keeps every live path at one branch of overhead.
    shadow: Option<Box<ShadowEvaluator>>,
    /// Policy autopilot ([`crate::autopilot`]); only consulted from
    /// [`CacheManager::autopilot_tick`], never on the hot path.
    autopilot: Option<Box<PolicyController>>,
    /// Shared lock-free read state when this manager is a shard of a
    /// [`crate::ShardedCacheManager`] with `use_lockfree_reads` on;
    /// `None` (mono managers, flag off) keeps every path untouched.
    read_path: Option<Arc<ShardReadPath>>,
    /// Drops produced while replaying deferred mailbox acks. Surfaced
    /// (in FIFO order, ahead of the call's own drops) by the next
    /// drop-returning operation, so the cumulative drop stream matches
    /// the serial locked execution exactly.
    deferred_drops: Vec<DroppedObject>,
    /// Hot-key attribution sketches ([`bad_telemetry::sketch`]).
    /// Strictly metadata-only — never consulted by any caching
    /// decision, so enabling sketches cannot perturb oracle parity.
    /// Lives here (not inside [`CacheTelemetry`]) because
    /// [`CacheManager::set_telemetry`] replaces the telemetry bundle
    /// wholesale and must not silently drop the recorder.
    sketches: Option<Arc<SketchRecorder>>,
}

impl CacheManager {
    /// Creates a manager with the given policy and configuration.
    pub fn new(policy: PolicyName, config: CacheConfig) -> Self {
        let mut ttl = TtlComputer::new(config.budget);
        ttl.recompute_interval = config.ttl_recompute_interval;
        ttl.idle_ttl = config.idle_ttl;
        Self {
            policy: policy.build(),
            policy_name: policy,
            config,
            admission: AdmissionControl::admit_all(),
            caches: BTreeMap::new(),
            total_bytes: ByteSize::ZERO,
            index: VictimIndex::new(),
            ttl,
            last_ttl_recompute: Timestamp::ZERO,
            metrics: CacheMetrics::new(Timestamp::ZERO),
            telemetry: CacheTelemetry::detached(),
            admission_rejections: 0,
            shadow: None,
            autopilot: None,
            read_path: None,
            deferred_drops: Vec::new(),
            sketches: None,
        }
    }

    /// Attaches the shard's lock-free read state. Called once by
    /// [`crate::ShardedCacheManager`] at construction, before any
    /// caches exist.
    pub(crate) fn attach_read_path(&mut self, read_path: Arc<ShardReadPath>) {
        self.read_path = Some(read_path);
    }

    /// Applies every pending mailbox record in FIFO order. Invoked on
    /// *every* shard-lock acquisition before the caller's own
    /// operation, so all state observable under the lock (metrics,
    /// telemetry, occupancy, eviction decisions) is post-drain and
    /// byte-identical to the serial locked execution. Returns the
    /// number of records applied.
    pub(crate) fn drain_reads(&mut self) -> usize {
        let Some(read_path) = self.read_path.clone() else {
            return 0;
        };
        if read_path.mailbox.is_empty() {
            return 0;
        }
        let records = read_path.mailbox.drain();
        let drained = records.len();
        for record in records {
            match record {
                ReadRecord::Hits {
                    bs,
                    objects,
                    bytes,
                    now,
                } => {
                    // Replays exactly the bookkeeping `plan_get_live`
                    // would have done inline: LRU touch, hit counters,
                    // telemetry event, policy reindex.
                    if let Some(cache) = self.caches.get_mut(&bs) {
                        cache.touch(now);
                    }
                    self.metrics.record_hits(objects, bytes);
                    self.telemetry.on_hits(now, bs, objects, bytes);
                    // Optimistic (lock-free) hits are attributed here,
                    // post-drain — the sketches see exactly the same
                    // hit stream as the locked execution.
                    if let Some(sketches) = &self.sketches {
                        sketches.record_hit(bs.as_u64(), objects, bytes.as_u64());
                    }
                    self.reindex(bs, now);
                }
                ReadRecord::Ack {
                    bs,
                    sub,
                    up_to,
                    now,
                } => {
                    // Unknown caches (removed since the ack was
                    // enqueued) fail exactly as the inline call would;
                    // the error was already masked at enqueue time.
                    if let Ok(dropped) = self.ack_consume_inner(bs, sub, up_to, now) {
                        self.deferred_drops.extend(dropped);
                    }
                }
            }
        }
        drained
    }

    /// Takes the drops stashed by deferred-ack replays. Every
    /// drop-returning operation of the sharded manager prepends these
    /// to its own result.
    pub(crate) fn take_deferred_drops(&mut self) -> Vec<DroppedObject> {
        std::mem::take(&mut self.deferred_drops)
    }

    /// Republishes `bs`'s read snapshot from live state if it is
    /// stale. Called under the shard lock after a locked GET, so the
    /// next optimistic read succeeds.
    pub(crate) fn refresh_read_slot(&self, bs: BackendSubId) {
        let Some(read_path) = &self.read_path else {
            return;
        };
        let Some(cache) = self.caches.get(&bs) else {
            return;
        };
        if let Some(slot) = read_path.slots().get(&bs) {
            slot.refresh(cache);
        }
    }

    /// Like [`Self::refresh_read_slot`], but only when an optimistic
    /// GET touched the slot since the last republish. Writers call
    /// this after mutating `bs` so the capture cost of keeping a hot
    /// slot fresh lands on the already-locked writer, not the next
    /// reader's fallback.
    pub(crate) fn refresh_read_slot_if_read(&self, bs: BackendSubId) {
        let Some(read_path) = &self.read_path else {
            return;
        };
        let Some(cache) = self.caches.get(&bs) else {
            return;
        };
        if let Some(slot) = read_path.slots().get(&bs) {
            if slot.read_since_refresh() {
                slot.refresh(cache);
            }
        }
    }

    /// Marks `bs`'s published snapshot stale after a plan-relevant
    /// mutation (insert, any entry drop, admission gap).
    fn invalidate_read_slot(&self, bs: BackendSubId) {
        if let Some(read_path) = &self.read_path {
            read_path.invalidate(bs);
        }
    }

    /// Enables shadow-policy evaluation ([`crate::shadow`]): every
    /// catalog policy runs as a metadata-only ghost replaying this
    /// manager's access stream. Caches that already exist are seeded
    /// (empty) into the ghosts at `now`.
    pub fn enable_shadow(&mut self, config: ShadowConfig, now: Timestamp) {
        let mut shadow = Box::new(ShadowEvaluator::new(
            self.policy_name,
            self.config,
            &self.admission,
            config,
        ));
        shadow.seed(&self.caches, now);
        self.shadow = Some(shadow);
        // Ghost replay needs every plan synchronously under the shard
        // lock; optimistic reads stay off while a shadow is live.
        if let Some(read_path) = &self.read_path {
            read_path.set_optimistic(false);
        }
    }

    /// The shadow evaluator, when enabled.
    pub fn shadow(&self) -> Option<&ShadowEvaluator> {
        self.shadow.as_deref()
    }

    /// A snapshot of the shadow evaluator's counterfactual state, when
    /// enabled.
    pub fn shadow_snapshot(&self) -> Option<ShadowSnapshot> {
        self.shadow.as_ref().map(|s| s.snapshot())
    }

    /// Registers the `bad_cache_shadow_*` series on `registry` (no-op
    /// until [`CacheManager::enable_shadow`]). Call before traffic:
    /// counters are not backfilled.
    pub fn set_shadow_telemetry(&mut self, registry: &bad_telemetry::Registry) {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.set_telemetry(registry);
        }
    }

    /// Enables the policy autopilot ([`crate::autopilot`]). Requires a
    /// shadow evaluator to be useful — without one,
    /// [`CacheManager::autopilot_tick`] has no snapshot to judge and
    /// does nothing.
    pub fn enable_autopilot(&mut self, config: AutopilotConfig) {
        self.autopilot = Some(Box::new(PolicyController::new(config)));
    }

    /// Registers the `bad_cache_autopilot_*` series on `registry`
    /// (no-op until [`CacheManager::enable_autopilot`]).
    pub fn set_autopilot_telemetry(&mut self, registry: &bad_telemetry::Registry) {
        if let Some(autopilot) = self.autopilot.as_mut() {
            autopilot.set_telemetry(registry);
        }
    }

    /// The autopilot controller's status, when enabled.
    pub fn autopilot_status(&self) -> Option<AutopilotStatus> {
        self.autopilot.as_ref().map(|a| a.status(self.policy_name))
    }

    /// Feeds the autopilot one evaluation window: snapshots the shadow
    /// evaluator, lets the controller judge the windowed deltas, and —
    /// on promotion — applies [`CacheManager::switch_policy`] and emits
    /// the [`PolicySwitch`](bad_telemetry::Event::PolicySwitch) event.
    /// Call once per maintenance window, *not* per request. No-op
    /// unless both autopilot and shadow are enabled.
    pub fn autopilot_tick(&mut self, now: Timestamp) -> Option<PolicySwitchRecord> {
        self.autopilot.as_ref()?;
        let snapshot = self.shadow_snapshot()?;
        let live = self.policy_name;
        let record = self
            .autopilot
            .as_mut()
            .expect("checked above")
            .observe(&snapshot, live, now)?;
        self.switch_policy(record.to, now);
        self.telemetry.on_policy_switch(&record);
        Some(record)
    }

    /// Switches the live policy in place: resident entries stay cached
    /// and are re-scored under the incoming policy, the budget and
    /// [`CacheMetrics`] accounting carry over untouched, and the shadow
    /// evaluator (if any) re-targets its regret attribution. Returns
    /// `false` (and does nothing) when `new` is already live. Emits no
    /// event — callers that act on a promotion record it themselves, so
    /// a fleet-wide switch logs once rather than per shard.
    pub fn switch_policy(&mut self, new: PolicyName, now: Timestamp) -> bool {
        if new == self.policy_name {
            return false;
        }
        self.policy = new.build();
        self.policy_name = new;
        if self.config.use_victim_index {
            // Re-score every resident cache under the incoming policy;
            // non-eviction policies (TTL, NC) don't use the index.
            self.index = VictimIndex::new();
            if self.policy.kind() == PolicyKind::Eviction {
                for (&bs, cache) in self.caches.iter() {
                    if !cache.is_empty() {
                        self.index.update(bs, self.policy.score(cache, now));
                    }
                }
            }
        }
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.retarget_live(new);
        }
        true
    }

    /// Installs shared telemetry (registry-backed counters plus an
    /// event sink). The default is a detached bundle with the null
    /// sink, which keeps every instrumented path allocation-free.
    pub fn set_telemetry(&mut self, telemetry: CacheTelemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry bundle in force.
    pub fn telemetry(&self) -> &CacheTelemetry {
        &self.telemetry
    }

    /// Attaches a hot-key sketch recorder. The hooks it feeds
    /// (`plan_get` hits — including optimistic hits replayed through
    /// the deferred mailbox — `record_miss_fetch`, `ack_consume`) are
    /// pure observation: one sampling RMW per skipped op, and never an
    /// input to any caching decision.
    pub fn set_sketches(&mut self, recorder: Arc<SketchRecorder>) {
        self.sketches = Some(recorder);
    }

    /// The sketch recorder in force, if any.
    pub fn sketches(&self) -> Option<&Arc<SketchRecorder>> {
        self.sketches.as_ref()
    }

    /// The configured policy.
    pub fn policy_name(&self) -> PolicyName {
        self.policy_name
    }

    /// Installs admission control (default: admit everything). Rejected
    /// objects are not cached; subscribers fetch them from the durable
    /// result store on demand, like any other miss.
    pub fn set_admission(&mut self, admission: AdmissionControl) {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_set_admission(&admission);
        }
        self.admission = admission;
    }

    /// The admission control in force.
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// Objects rejected by admission control so far.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections
    }

    /// How the policy bounds the cache.
    pub fn kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Whether the broker should prefetch results into the cache on
    /// cluster notifications (everything except the NC baseline).
    pub fn caches_results(&self) -> bool {
        self.policy.kind() != PolicyKind::NoCache
    }

    /// The aggregate budget `B`.
    pub fn budget(&self) -> ByteSize {
        self.config.budget
    }

    /// The full configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Re-targets the budget `B` — the shard-rebalancing hook of
    /// [`crate::ShardedCacheManager`]. The TTL computer follows the new
    /// budget. Shrinking below the current occupancy does not evict
    /// eagerly; call [`CacheManager::enforce_budget`] (or let the next
    /// insert do it) to settle back under the new bound.
    pub fn set_budget(&mut self, budget: ByteSize) {
        self.config.budget = budget;
        self.ttl.budget = budget;
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_set_budget(budget);
        }
    }

    /// Current aggregate size across all caches.
    pub fn total_bytes(&self) -> ByteSize {
        self.total_bytes
    }

    /// Number of result caches.
    pub fn cache_count(&self) -> usize {
        self.caches.len()
    }

    /// Read access to the metrics.
    pub fn metrics(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// Records objects fetched from the cluster due to a cache miss
    /// (called by the broker after it completes the fetch).
    pub fn record_miss_fetch(
        &mut self,
        bs: BackendSubId,
        objects: u64,
        bytes: ByteSize,
        now: Timestamp,
    ) {
        self.metrics.record_misses(objects, bytes);
        self.telemetry.on_misses(now, bs, objects, bytes);
        if let Some(sketches) = &self.sketches {
            sketches.record_miss(bs.as_u64(), objects);
        }
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_record_miss_fetch(bs, objects, bytes, now);
        }
    }

    /// Records bytes pulled from the cluster to populate caches (`Vol`).
    pub fn record_populate(&mut self, bytes: ByteSize) {
        self.metrics.record_populate(bytes);
    }

    /// Looks up a cache.
    pub fn cache(&self, bs: BackendSubId) -> Option<&ResultCache> {
        self.caches.get(&bs)
    }

    /// Iterates over all caches.
    pub fn iter_caches(&self) -> impl Iterator<Item = &ResultCache> {
        self.caches.values()
    }

    /// Creates an empty cache for a new backend subscription.
    ///
    /// Creating a cache that already exists is a no-op.
    pub fn create_cache(&mut self, bs: BackendSubId, now: Timestamp) {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_create_cache(bs, now);
        }
        let config = &self.config;
        let mut created = false;
        self.caches.entry(bs).or_insert_with(|| {
            created = true;
            let mut cache = ResultCache::new(bs, now, config.rate_window);
            cache.set_ttl(config.initial_ttl);
            cache
        });
        if created {
            if let Some(read_path) = &self.read_path {
                read_path.add_slot(bs);
            }
        }
    }

    /// Tears down a backend subscription's cache, dropping its objects.
    pub fn remove_cache(&mut self, bs: BackendSubId, now: Timestamp) -> Vec<DroppedObject> {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_remove_cache(bs, now);
        }
        let Some(mut cache) = self.caches.remove(&bs) else {
            return Vec::new();
        };
        if let Some(read_path) = &self.read_path {
            read_path.remove_slot(bs);
        }
        self.index.remove(bs);
        let mut dropped = Vec::new();
        while let Some(object) = cache.drop_tail() {
            self.total_bytes -= object.size;
            self.metrics.record_drop(
                DropReason::Unsubscribed,
                object.age(now),
                self.total_bytes,
                now,
            );
            self.telemetry.on_drop(
                now,
                bs,
                DropReason::Unsubscribed,
                &object,
                self.total_bytes,
                self.policy_name.as_str(),
                0.0,
                SimDuration::ZERO,
            );
            dropped.push(DroppedObject {
                cache: bs,
                reason: DropReason::Unsubscribed,
                object,
            });
        }
        dropped
    }

    /// Attaches a subscriber to a cache.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::NotFound`] when no cache exists for `bs`.
    pub fn add_subscriber(&mut self, bs: BackendSubId, sub: SubscriberId) -> Result<()> {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_add_subscriber(bs, sub);
        }
        let cache = self.cache_mut(bs)?;
        cache.add_subscriber(sub);
        Ok(())
    }

    /// Detaches a subscriber from a cache, dropping objects that were
    /// only waiting on it.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::NotFound`] when no cache exists for `bs`.
    pub fn remove_subscriber(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_remove_subscriber(bs, sub, now);
        }
        let cache = self.cache_mut(bs)?;
        let removed = cache.remove_subscriber(sub);
        if !removed.is_empty() {
            self.invalidate_read_slot(bs);
        }
        let mut dropped = Vec::new();
        for object in removed {
            self.total_bytes -= object.size;
            self.metrics.record_drop(
                DropReason::Unsubscribed,
                object.age(now),
                self.total_bytes,
                now,
            );
            self.telemetry.on_drop(
                now,
                bs,
                DropReason::Unsubscribed,
                &object,
                self.total_bytes,
                self.policy_name.as_str(),
                0.0,
                SimDuration::ZERO,
            );
            dropped.push(DroppedObject {
                cache: bs,
                reason: DropReason::Unsubscribed,
                object,
            });
        }
        self.reindex(bs, now);
        Ok(dropped)
    }

    /// Inserts a freshly produced result into `bs`'s cache (the `PUT`
    /// routine of Algorithm 1), then evicts until the aggregate size is
    /// back within budget. Returns the evicted objects.
    ///
    /// Under the NC policy nothing is stored and nothing is evicted.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::NotFound`] when no cache exists for `bs`.
    pub fn insert(
        &mut self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        self.insert_staged(bs, desc, now, &Profiler::disabled(), &mut None)
    }

    /// [`CacheManager::insert`] with profiler stage boundaries —
    /// shadow-replay / apply / victim-scan attribution on the caller's
    /// [`OpTimer`]. The sharded manager threads its per-op timer
    /// through here so the insert envelope includes the lock wait.
    /// Stage calls are metadata-only; behaviour is identical to the
    /// plain `insert`.
    pub(crate) fn insert_staged(
        &mut self,
        bs: BackendSubId,
        desc: NewObject,
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Result<Vec<DroppedObject>> {
        // Exemplars use the same trace-id derivation as the flight
        // recorder, so a slow bucket links straight to its spans.
        let trace = match timer {
            Some(_) => bad_telemetry::TraceId::for_object(desc.id.as_u64()).as_u64(),
            None => 0,
        };
        // Before the live NC/admission short-circuits: ghosts apply
        // their own policy's logic to the raw insert stream.
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_insert(bs, desc, now);
            profiler.stage(timer, StagePath::InsertShadowReplay, trace);
        }
        if self.policy.kind() == PolicyKind::NoCache {
            // The baseline broker delivers straight through.
            self.cache_mut(bs)?; // still validate the subscription
            return Ok(Vec::new());
        }
        if !self.admission.is_transparent() {
            let budget = self.config.budget;
            let cache = self
                .caches
                .get(&bs)
                .ok_or_else(|| BadError::not_found("cache", bs.to_string()))?;
            if !self.admission.admits(cache, &desc, budget, now) {
                self.admission_rejections += 1;
                // The object is a hole in this cache's coverage: future
                // retrievals must fetch it from the cluster.
                self.cache_mut(bs)?.record_gap(desc.ts);
                self.invalidate_read_slot(bs);
                self.refresh_read_slot_if_read(bs);
                return Ok(Vec::new());
            }
        }
        let cache = self.cache_mut(bs)?;
        cache.insert(desc, now);
        self.invalidate_read_slot(bs);
        self.total_bytes += desc.size;
        self.metrics.record_insert(desc.size, self.total_bytes, now);
        self.telemetry
            .on_insert(now, bs, desc.id, desc.ts, desc.size, self.total_bytes);
        self.reindex(bs, now);
        profiler.stage(timer, StagePath::InsertApply, trace);

        let dropped = self.enforce_budget(now);
        if !dropped.is_empty() {
            profiler.stage(timer, StagePath::InsertVictimScan, trace);
        }
        self.metrics.observe_peak(self.total_bytes);
        // Keep slots that optimistic GETs actually touch fresh: the
        // capture runs here, under the lock this writer already holds,
        // instead of on the next reader's fallback path.
        self.refresh_read_slot_if_read(bs);
        Ok(dropped)
    }

    /// Evicts until the aggregate size is back within the budget (the
    /// tail of the `PUT` routine). A no-op for non-eviction policies or
    /// when already within budget; also invoked after a shard-budget
    /// rebalance shrinks this manager's share below its occupancy.
    pub fn enforce_budget(&mut self, now: Timestamp) -> Vec<DroppedObject> {
        let mut dropped = Vec::new();
        // Ghosts settle under their own (possibly rebalanced) budgets;
        // a cheap no-op when they are already within bounds.
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_enforce_budget(now);
        }
        if self.policy.kind() != PolicyKind::Eviction {
            return dropped;
        }
        while self.total_bytes > self.config.budget {
            let Some(victim) = self.choose_victim(now) else {
                break;
            };
            // Audit (sampled): what would the other policies have
            // picked, given the exact same caches?
            if let Some(shadow) = self.shadow.as_mut() {
                shadow.pre_evict_audit(&self.caches, now);
            }
            let cache = self.caches.get_mut(&victim).expect("victim exists");
            // The victim cache's φ/s score, captured before the drop
            // mutates it — this is the quantity the policy minimised.
            let score = self.policy.score(cache, now);
            let Some(object) = cache.drop_tail() else {
                // Stale index entry for an empty cache; fix and retry.
                self.index.remove(victim);
                continue;
            };
            self.invalidate_read_slot(victim);
            self.total_bytes -= object.size;
            self.metrics
                .record_drop(DropReason::Evicted, object.age(now), self.total_bytes, now);
            self.telemetry.on_drop(
                now,
                victim,
                DropReason::Evicted,
                &object,
                self.total_bytes,
                self.policy_name.as_str(),
                score,
                SimDuration::ZERO,
            );
            self.reindex(victim, now);
            if let Some(shadow) = self.shadow.as_mut() {
                shadow.record_audit(victim, &object, score, now);
            }
            dropped.push(DroppedObject {
                cache: victim,
                reason: DropReason::Evicted,
                object,
            });
        }
        dropped
    }

    /// Plans a range retrieval against `bs`'s cache (Algorithm 1 `GET`)
    /// and records the cache-served part in the metrics. The caller is
    /// responsible for fetching `plan.missed` from the cluster and then
    /// calling [`CacheManager::record_miss_fetch`].
    ///
    /// A missing cache (NC policy or unknown subscription) misses the
    /// whole range.
    pub fn plan_get(&mut self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan {
        self.plan_get_staged(bs, range, now, &Profiler::disabled(), &mut None)
    }

    /// [`CacheManager::plan_get`] with profiler stage boundaries
    /// (lookup / shadow-replay) on the caller's [`OpTimer`]. The
    /// *trailing* boundary is the caller's: release the shard through
    /// [`bad_telemetry::ProfiledGuard::unlock_staged`] with
    /// [`CacheManager::tail_get_stage`], so the hold-time read doubles
    /// as the final stage boundary.
    pub(crate) fn plan_get_staged(
        &mut self,
        bs: BackendSubId,
        range: TimeRange,
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> GetPlan {
        let plan = self.plan_get_live(bs, range, now);
        // Shadow replay runs after the live plan, so the ghosts diff
        // against exactly what the real cache served (all-missed
        // branches included); the lookup/replay split only needs its
        // own boundary when a replay actually follows.
        if let Some(shadow) = self.shadow.as_mut() {
            profiler.stage(timer, StagePath::GetLookup, 0);
            shadow.on_plan_get(bs, range, &plan, now);
        }
        plan
    }

    /// The stage the caller should attribute the under-lock tail of a
    /// GET plan to when releasing the shard: shadow replay when ghosts
    /// are live, the lookup itself otherwise.
    pub(crate) fn tail_get_stage(&self) -> StagePath {
        if self.shadow.is_some() {
            StagePath::GetShadowReplay
        } else {
            StagePath::GetLookup
        }
    }

    /// The live half of [`CacheManager::plan_get`], without the shadow
    /// replay.
    fn plan_get_live(&mut self, bs: BackendSubId, range: TimeRange, now: Timestamp) -> GetPlan {
        let all_missed = |range: TimeRange| GetPlan {
            cached: Vec::new(),
            cached_bytes: ByteSize::ZERO,
            missed: if range.is_empty() {
                Vec::new()
            } else {
                vec![range]
            },
        };
        if self.policy.kind() == PolicyKind::NoCache {
            return all_missed(range);
        }
        let Some(cache) = self.caches.get_mut(&bs) else {
            return all_missed(range);
        };
        let plan = cache.plan_get(range, now);
        self.metrics
            .record_hits(plan.cached.len() as u64, plan.cached_bytes);
        self.telemetry
            .on_hits(now, bs, plan.cached.len() as u64, plan.cached_bytes);
        if let Some(sketches) = &self.sketches {
            sketches.record_hit(
                bs.as_u64(),
                plan.cached.len() as u64,
                plan.cached_bytes.as_u64(),
            );
        }
        self.reindex(bs, now);
        plan
    }

    /// Marks everything up to `up_to` as retrieved by `sub` (the `ACK`
    /// routine), dropping fully consumed objects.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::NotFound`] when no cache exists for `bs`.
    pub fn ack_consume(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        // The whole body is one profiler stage (`…;ack_consume`); the
        // sharded caller attributes it when releasing the shard.
        self.ack_consume_inner(bs, sub, up_to, now)
    }

    fn ack_consume_inner(
        &mut self,
        bs: BackendSubId,
        sub: SubscriberId,
        up_to: Timestamp,
        now: Timestamp,
    ) -> Result<Vec<DroppedObject>> {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_ack_consume(bs, sub, up_to, now);
        }
        // Activity signal only (distinct-active estimator) — acks mark
        // a subscription live even when it never hits or misses.
        if let Some(sketches) = &self.sketches {
            sketches.record_ack(bs.as_u64());
        }
        let drop_consumed = self.config.drop_on_full_consumption;
        let cache = self.cache_mut(bs)?;
        let removed = if drop_consumed {
            cache.consume_up_to(sub, up_to, now)
        } else {
            // Pending-set changes never alter a plan, so the published
            // snapshot stays valid.
            cache.mark_retrieved_up_to(sub, up_to);
            Vec::new()
        };
        if !removed.is_empty() {
            self.invalidate_read_slot(bs);
        }
        let mut dropped = Vec::new();
        for object in removed {
            self.total_bytes -= object.size;
            self.metrics
                .record_drop(DropReason::Consumed, object.age(now), self.total_bytes, now);
            self.telemetry.on_drop(
                now,
                bs,
                DropReason::Consumed,
                &object,
                self.total_bytes,
                self.policy_name.as_str(),
                0.0,
                SimDuration::ZERO,
            );
            dropped.push(DroppedObject {
                cache: bs,
                reason: DropReason::Consumed,
                object,
            });
        }
        self.reindex(bs, now);
        self.refresh_read_slot_if_read(bs);
        Ok(dropped)
    }

    /// Plans a batch of range retrievals in request order — the
    /// monolithic counterpart of
    /// [`crate::ShardedCacheManager::plan_get_batch`], so the `shards =
    /// 1` oracle parity extends to the batched `GET` path. Each plan is
    /// exactly what [`CacheManager::plan_get`] would have returned for
    /// that request in sequence.
    pub fn plan_get_batch(
        &mut self,
        requests: &[(BackendSubId, TimeRange)],
        now: Timestamp,
    ) -> Vec<GetPlan> {
        self.plan_get_batch_staged(requests, now, &Profiler::disabled(), &mut None)
    }

    /// [`CacheManager::plan_get_batch`] with one stage boundary per
    /// batch phase (all lookups, then all shadow replays) on the
    /// caller's [`OpTimer`] — a whole batch costs at most one tick
    /// read here plus the caller's shared release read (see
    /// [`CacheManager::tail_get_stage`]), not two per request, so full
    /// profiling stays affordable on large pending sets. The plans
    /// (and the replay order the ghosts see) are identical to the
    /// per-request sequence.
    pub(crate) fn plan_get_batch_staged(
        &mut self,
        requests: &[(BackendSubId, TimeRange)],
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Vec<GetPlan> {
        let plans: Vec<GetPlan> = requests
            .iter()
            .map(|&(bs, range)| self.plan_get_live(bs, range, now))
            .collect();
        if let Some(shadow) = self.shadow.as_mut() {
            profiler.stage(timer, StagePath::GetLookup, 0);
            for (&(bs, range), plan) in requests.iter().zip(&plans) {
                shadow.on_plan_get(bs, range, plan, now);
            }
        }
        plans
    }

    /// Applies a batch of `ACK`s in request order, concatenating the
    /// consumption drops. Unknown caches are skipped (a concurrent
    /// unsubscribe may have removed them mid-batch) rather than failing
    /// the whole batch.
    pub fn ack_consume_batch(
        &mut self,
        requests: &[(BackendSubId, SubscriberId, Timestamp)],
        now: Timestamp,
    ) -> Vec<DroppedObject> {
        // Like `ack_consume`, the whole batch is one profiler stage,
        // attributed by the sharded caller at shard release.
        let mut dropped = Vec::new();
        for &(bs, sub, up_to) in requests {
            if let Ok(batch) = self.ack_consume_inner(bs, sub, up_to, now) {
                dropped.extend(batch);
            }
        }
        dropped
    }

    /// Periodic maintenance: recomputes TTLs on schedule (TTL and EXP
    /// policies) and expires tails under the TTL policy. The caller
    /// should invoke this on a regular tick; the work is proportional to
    /// the number of caches only when something is due.
    pub fn maintain(&mut self, now: Timestamp) -> Vec<DroppedObject> {
        self.maintain_staged(now, &Profiler::disabled(), &mut None)
    }

    /// [`CacheManager::maintain`] attributing the TTL recompute +
    /// expiry sweep to the `maintain;ttl_expiry` stage of the caller's
    /// [`OpTimer`].
    pub(crate) fn maintain_staged(
        &mut self,
        now: Timestamp,
        profiler: &Profiler,
        timer: &mut Option<OpTimer>,
    ) -> Vec<DroppedObject> {
        let dropped = self.maintain_inner(now);
        profiler.stage(timer, StagePath::MaintainTtlExpiry, 0);
        dropped
    }

    fn maintain_inner(&mut self, now: Timestamp) -> Vec<DroppedObject> {
        let mut dropped = Vec::new();
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_maintain(now);
        }
        if self.policy.uses_ttl()
            && now.since(self.last_ttl_recompute) >= self.ttl.recompute_interval
        {
            self.ttl.recompute(self.caches.values_mut(), now);
            self.last_ttl_recompute = now;
            self.telemetry.on_ttl_recompute();
            if self.telemetry.tracing() {
                for cache in self.caches.values() {
                    self.telemetry.on_ttl_retune(
                        now,
                        cache.id(),
                        cache.arrival_rate(now),
                        cache.consumption_rate(now),
                        cache.growth_rate(now),
                        cache.ttl(),
                    );
                }
            }
            if self.policy.kind() == PolicyKind::Eviction && self.config.use_victim_index {
                // EXP scores are expiry instants; refresh them all in
                // one pass over the map (inlined `reindex` — the id
                // list is never materialized).
                for (&bs, cache) in self.caches.iter() {
                    if cache.is_empty() {
                        self.index.remove(bs);
                    } else {
                        self.index.update(bs, self.policy.score(cache, now));
                    }
                }
            }
        }
        if self.policy.kind() == PolicyKind::TtlExpiry {
            let read_path = self.read_path.clone();
            for (&bs, cache) in self.caches.iter_mut() {
                let ttl = cache.ttl();
                let expired = cache.expire_tail(now);
                if !expired.is_empty() {
                    if let Some(read_path) = &read_path {
                        read_path.invalidate(bs);
                    }
                }
                for object in expired {
                    self.total_bytes -= object.size;
                    self.metrics.record_drop(
                        DropReason::Expired,
                        object.age(now),
                        self.total_bytes,
                        now,
                    );
                    self.telemetry.on_drop(
                        now,
                        bs,
                        DropReason::Expired,
                        &object,
                        self.total_bytes,
                        self.policy_name.as_str(),
                        0.0,
                        ttl,
                    );
                    dropped.push(DroppedObject {
                        cache: bs,
                        reason: DropReason::Expired,
                        object,
                    });
                }
            }
        }
        self.metrics.observe_peak(self.total_bytes);
        dropped
    }

    /// The expected aggregate size `Σ ρ_i · T_i` under current TTLs
    /// (Fig. 5a overlay).
    pub fn expected_ttl_size(&self, now: Timestamp) -> ByteSize {
        self.ttl.expected_total_size(self.caches.values(), now)
    }

    /// Per-subscription analytical-model inputs for the drift detector:
    /// measured `n_i`, λ̂ᵢ/η̂ᵢ in objects/s, ρ̂ᵢ in bytes/s and the TTL
    /// in force — everything eqs. 5–7 need to predict hit ratio,
    /// staleness and occupancy for the coming window.
    pub fn model_inputs(&self, now: Timestamp) -> Vec<bad_telemetry::SubscriptionModel> {
        self.caches
            .values()
            .map(|c| bad_telemetry::SubscriptionModel {
                subscribers: c.subscriber_count() as u64,
                lambda_events_per_s: c.arrival_event_rate(now),
                eta_events_per_s: c.consumption_event_rate(now),
                rho_bytes_per_s: c.growth_rate(now),
                ttl_s: c.ttl().as_secs_f64(),
            })
            .collect()
    }

    /// The victim the policy would evict from right now, if any —
    /// exposed for tests, benchmarks and the ablation comparing indexed
    /// vs linear selection.
    pub fn choose_victim(&self, now: Timestamp) -> Option<BackendSubId> {
        if self.config.use_victim_index {
            self.index.min()
        } else {
            self.linear_victim(now)
        }
    }

    /// Linear-scan victim selection over all non-empty caches.
    pub fn linear_victim(&self, now: Timestamp) -> Option<BackendSubId> {
        self.caches
            .values()
            .filter(|c| !c.is_empty())
            .map(|c| (self.policy.score(c, now), c.id()))
            .min_by(|(a, ia), (b, ib)| a.total_cmp(b).then(ia.cmp(ib)))
            .map(|(_, id)| id)
    }

    fn reindex(&mut self, bs: BackendSubId, now: Timestamp) {
        if !self.config.use_victim_index || self.policy.kind() != PolicyKind::Eviction {
            return;
        }
        match self.caches.get(&bs) {
            Some(cache) if !cache.is_empty() => {
                self.index.update(bs, self.policy.score(cache, now));
            }
            _ => self.index.remove(bs),
        }
    }

    fn cache_mut(&mut self, bs: BackendSubId) -> Result<&mut ResultCache> {
        self.caches
            .get_mut(&bs)
            .ok_or_else(|| BadError::not_found("cache", bs.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bad_types::ObjectId;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    fn obj(id: u64, ts_secs: u64, size: u64) -> NewObject {
        NewObject {
            id: ObjectId::new(id),
            ts: t(ts_secs),
            size: ByteSize::new(size),
            fetch_latency: SimDuration::from_millis(500),
        }
    }

    fn manager(policy: PolicyName, budget: u64) -> CacheManager {
        CacheManager::new(
            policy,
            CacheConfig {
                budget: ByteSize::new(budget),
                ..CacheConfig::default()
            },
        )
    }

    /// Creates `n` caches with one subscriber each.
    fn with_caches(mgr: &mut CacheManager, n: u64) {
        for i in 0..n {
            let bs = BackendSubId::new(i);
            mgr.create_cache(bs, Timestamp::ZERO);
            mgr.add_subscriber(bs, SubscriberId::new(i)).unwrap();
        }
    }

    #[test]
    fn eviction_keeps_total_within_budget() {
        let mut mgr = manager(PolicyName::Lsc, 100);
        with_caches(&mut mgr, 2);
        let mut next_id = 0;
        for sec in 1..=20u64 {
            for bs in 0..2u64 {
                mgr.insert(BackendSubId::new(bs), obj(next_id, sec, 30), t(sec))
                    .unwrap();
                next_id += 1;
                assert!(mgr.total_bytes() <= ByteSize::new(100));
            }
        }
        assert!(mgr.metrics().evicted_objects > 0);
    }

    #[test]
    fn lsc_evicts_fewest_subscriber_tail() {
        let mut mgr = manager(PolicyName::Lsc, 100);
        let lonely = BackendSubId::new(1);
        let popular = BackendSubId::new(2);
        mgr.create_cache(lonely, Timestamp::ZERO);
        mgr.create_cache(popular, Timestamp::ZERO);
        mgr.add_subscriber(lonely, SubscriberId::new(1)).unwrap();
        for s in 10..15 {
            mgr.add_subscriber(popular, SubscriberId::new(s)).unwrap();
        }
        mgr.insert(lonely, obj(1, 1, 60), t(1)).unwrap();
        mgr.insert(popular, obj(2, 2, 60), t(2)).unwrap(); // over budget
        let dropped: Vec<_> = mgr.insert(popular, obj(3, 3, 10), t(3)).unwrap();
        // The lonely cache's tail went first (fanout 1 < 5).
        let all: Vec<BackendSubId> = dropped.iter().map(|d| d.cache).collect();
        assert!(mgr.cache(lonely).unwrap().is_empty() || all.contains(&lonely));
        assert!(!mgr.cache(popular).unwrap().is_empty());
    }

    #[test]
    fn nc_policy_stores_nothing() {
        let mut mgr = manager(PolicyName::Nc, 1_000_000);
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        mgr.insert(bs, obj(1, 1, 100), t(1)).unwrap();
        assert_eq!(mgr.total_bytes(), ByteSize::ZERO);
        let plan = mgr.plan_get(bs, TimeRange::closed(t(0), t(1)), t(2));
        assert!(plan.cached.is_empty());
        assert_eq!(plan.missed, vec![TimeRange::closed(t(0), t(1))]);
        assert!(!mgr.caches_results());
    }

    #[test]
    fn ttl_policy_can_exceed_budget_until_expiry() {
        let mut mgr = CacheManager::new(
            PolicyName::Ttl,
            CacheConfig {
                budget: ByteSize::new(50),
                ttl_recompute_interval: SimDuration::from_secs(5),
                idle_ttl: SimDuration::from_secs(30),
                ..CacheConfig::default()
            },
        );
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        for sec in 1..=5u64 {
            mgr.insert(bs, obj(sec, sec, 30), t(sec)).unwrap();
        }
        // No eviction: TTL caches grow beyond the budget.
        assert!(mgr.total_bytes() > ByteSize::new(50));
        // After the idle TTL elapses, maintenance expires the tails.
        mgr.maintain(t(10)); // recompute TTLs
        let dropped = mgr.maintain(t(40));
        assert!(!dropped.is_empty());
        assert!(dropped.iter().all(|d| d.reason == DropReason::Expired));
    }

    #[test]
    fn consumption_drops_do_not_count_as_evictions() {
        let mut mgr = manager(PolicyName::Lsc, 1000);
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        mgr.insert(bs, obj(1, 1, 100), t(1)).unwrap();
        let dropped = mgr
            .ack_consume(bs, SubscriberId::new(0), t(1), t(2))
            .unwrap();
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].reason, DropReason::Consumed);
        assert_eq!(mgr.metrics().consumed_objects, 1);
        assert_eq!(mgr.metrics().evicted_objects, 0);
        assert_eq!(mgr.total_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn plan_get_records_hits() {
        let mut mgr = manager(PolicyName::Lru, 1000);
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        mgr.insert(bs, obj(1, 1, 100), t(1)).unwrap();
        let plan = mgr.plan_get(bs, TimeRange::closed(t(0), t(1)), t(2));
        assert_eq!(plan.cached.len(), 1);
        mgr.record_miss_fetch(bs, 2, ByteSize::new(50), t(2));
        let m = mgr.metrics();
        assert_eq!(m.requested_objects, 3);
        assert_eq!(m.hit_objects, 1);
        assert_eq!(m.miss_objects, 2);
        assert_eq!(m.hit_ratio(), Some(1.0 / 3.0));
    }

    #[test]
    fn indexed_and_linear_victims_agree() {
        let mut indexed = manager(PolicyName::Lscz, u64::MAX);
        let mut linear = CacheManager::new(
            PolicyName::Lscz,
            CacheConfig {
                budget: ByteSize::MAX,
                use_victim_index: false,
                ..CacheConfig::default()
            },
        );
        for mgr in [&mut indexed, &mut linear] {
            with_caches(mgr, 4);
            for i in 0..4u64 {
                let bs = BackendSubId::new(i);
                mgr.insert(bs, obj(i, 1, 10 + i * 37), t(1)).unwrap();
            }
        }
        assert_eq!(indexed.choose_victim(t(2)), linear.choose_victim(t(2)));
    }

    #[test]
    fn remove_cache_drops_everything() {
        let mut mgr = manager(PolicyName::Lsc, 1000);
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        mgr.insert(bs, obj(1, 1, 100), t(1)).unwrap();
        mgr.insert(bs, obj(2, 2, 100), t(2)).unwrap();
        let dropped = mgr.remove_cache(bs, t(3));
        assert_eq!(dropped.len(), 2);
        assert_eq!(mgr.total_bytes(), ByteSize::ZERO);
        assert_eq!(mgr.cache_count(), 0);
        // Unknown cache afterwards: operations error, reads are empty.
        assert!(mgr.insert(bs, obj(3, 3, 10), t(3)).is_err());
        assert!(mgr.remove_cache(bs, t(3)).is_empty());
    }

    #[test]
    fn unknown_cache_errors() {
        let mut mgr = manager(PolicyName::Lsc, 1000);
        let bs = BackendSubId::new(9);
        assert!(mgr.add_subscriber(bs, SubscriberId::new(1)).is_err());
        assert!(mgr
            .ack_consume(bs, SubscriberId::new(1), t(1), t(1))
            .is_err());
        assert!(mgr
            .remove_subscriber(bs, SubscriberId::new(1), t(1))
            .is_err());
    }

    #[test]
    fn oversized_object_evicts_itself_gracefully() {
        let mut mgr = manager(PolicyName::Lsc, 50);
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        // Object bigger than the whole budget: it is admitted then evicted
        // immediately; the budget invariant is restored.
        let dropped = mgr.insert(bs, obj(1, 1, 200), t(1)).unwrap();
        assert_eq!(dropped.len(), 1);
        assert_eq!(mgr.total_bytes(), ByteSize::ZERO);
    }

    #[test]
    fn exp_policy_recomputes_ttls_via_maintain() {
        let mut mgr = CacheManager::new(
            PolicyName::Exp,
            CacheConfig {
                budget: ByteSize::new(1000),
                ttl_recompute_interval: SimDuration::from_secs(1),
                ..CacheConfig::default()
            },
        );
        with_caches(&mut mgr, 1);
        let bs = BackendSubId::new(0);
        mgr.insert(bs, obj(1, 1, 100), t(1)).unwrap();
        let before = mgr.cache(bs).unwrap().ttl();
        mgr.maintain(t(10));
        let after = mgr.cache(bs).unwrap().ttl();
        // The recomputation replaced the construction default with a
        // rate-derived TTL bounded by the idle ceiling.
        assert_ne!(after, before);
        assert!(after <= mgr.ttl.idle_ttl);
        assert!(after >= mgr.ttl.min_ttl);
    }
}
