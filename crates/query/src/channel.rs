//! Parameterized channel specifications and parameter bindings.

use std::collections::BTreeMap;
use std::fmt;

use bad_types::{BadError, DataValue, Result, SimDuration};

use crate::ast::{Expr, ParamType};
use crate::eval::EvalContext;

/// A declared channel parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name (referenced as `$name` in the predicate).
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
}

/// How a channel executes in the data cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChannelMode {
    /// Matched against each publication as it arrives.
    Continuous,
    /// Executed periodically over the records accumulated since the last
    /// execution.
    Repetitive {
        /// Execution period.
        period: SimDuration,
    },
}

impl fmt::Display for ChannelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelMode::Continuous => write!(f, "continuous"),
            ChannelMode::Repetitive { period } => write!(f, "repetitive every {period}"),
        }
    }
}

/// What a matching channel emits per matched record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectClause {
    /// Emit the whole record (`select r`).
    All,
    /// Emit an object containing only the given field paths.
    Fields(Vec<Vec<String>>),
}

impl SelectClause {
    /// Applies the projection to a record.
    ///
    /// Missing fields project to `null`, consistent with open schemas.
    pub fn project(&self, record: &DataValue) -> DataValue {
        match self {
            SelectClause::All => record.clone(),
            SelectClause::Fields(fields) => DataValue::Object(
                fields
                    .iter()
                    .map(|path| {
                        let key = path.join(".");
                        let value = record.get_path(&key).cloned().unwrap_or(DataValue::Null);
                        (key, value)
                    })
                    .collect(),
            ),
        }
    }
}

/// A validated, parameterized channel declaration.
///
/// Instances are normally produced by [`ChannelSpec::parse`]; the typed
/// constructor [`ChannelSpec::new`] is available for programmatic
/// construction.
///
/// # Examples
///
/// ```
/// use bad_query::ChannelSpec;
///
/// let spec = ChannelSpec::parse(
///     "channel ShelterInfo(city: string) from Shelters s \
///      where s.city == $city select s.name, s.capacity every 1m",
/// )?;
/// assert_eq!(spec.name(), "ShelterInfo");
/// # Ok::<(), bad_types::BadError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelSpec {
    name: String,
    params: Vec<ParamDef>,
    dataset: String,
    var: String,
    predicate: Expr,
    select: SelectClause,
    mode: ChannelMode,
}

impl ChannelSpec {
    /// Builds and validates a channel from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::Parse`] when the predicate references a
    /// parameter that is not declared, or a parameter name is duplicated.
    pub fn new(
        name: impl Into<String>,
        params: Vec<ParamDef>,
        dataset: impl Into<String>,
        var: impl Into<String>,
        predicate: Expr,
        select: SelectClause,
        mode: ChannelMode,
    ) -> Result<Self> {
        let name = name.into();
        let spec = Self {
            name,
            params,
            dataset: dataset.into(),
            var: var.into(),
            predicate,
            select,
            mode,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a channel declaration from BQL source.
    ///
    /// # Errors
    ///
    /// See [`crate::parse_channel`].
    pub fn parse(src: &str) -> Result<Self> {
        crate::parser::parse_channel(src)
    }

    fn validate(&self) -> Result<()> {
        let mut seen: Vec<&str> = Vec::new();
        for p in &self.params {
            if seen.contains(&p.name.as_str()) {
                return Err(BadError::Parse(format!(
                    "bql: duplicate parameter `{}` in channel `{}`",
                    p.name, self.name
                )));
            }
            seen.push(&p.name);
        }
        for used in self.predicate.referenced_params() {
            if !seen.contains(&used) {
                return Err(BadError::Parse(format!(
                    "bql: predicate of channel `{}` references undeclared parameter `${used}`",
                    self.name
                )));
            }
        }
        Ok(())
    }

    /// The channel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared parameters, in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// The dataset the channel reads from.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The record variable name used in the declaration.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// The (validated) predicate expression.
    pub fn predicate(&self) -> &Expr {
        &self.predicate
    }

    /// The projection applied to matched records.
    pub fn select(&self) -> &SelectClause {
        &self.select
    }

    /// Continuous or repetitive execution.
    pub fn mode(&self) -> ChannelMode {
        self.mode
    }

    /// Checks a record against the predicate with the given bindings.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::Type`] when the predicate does not evaluate to
    /// a boolean (e.g. comparing a string to a number), or a binding for a
    /// declared parameter is missing or of the wrong type.
    pub fn matches(&self, record: &DataValue, params: &ParamBindings) -> Result<bool> {
        params.check_against(&self.params)?;
        let ctx = EvalContext::new(record, params);
        let value = ctx.eval(&self.predicate)?;
        value.as_bool().ok_or_else(|| {
            BadError::Type(format!(
                "predicate of channel `{}` evaluated to non-boolean {value}",
                self.name
            ))
        })
    }

    /// Checks a record and, on match, applies the select projection.
    ///
    /// Returns `Ok(None)` when the record does not match.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChannelSpec::matches`].
    pub fn evaluate(
        &self,
        record: &DataValue,
        params: &ParamBindings,
    ) -> Result<Option<DataValue>> {
        if self.matches(record, params)? {
            Ok(Some(self.select.project(record)))
        } else {
            Ok(None)
        }
    }

    /// Extracts `field == $param` equality constraints usable for
    /// subscription partitioning (see [`Expr::equality_param_fields`]).
    pub fn equality_param_fields(&self) -> Vec<(String, String)> {
        self.predicate.equality_param_fields()
    }
}

impl fmt::Display for ChannelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", p.name, p.ty)?;
        }
        write!(
            f,
            ") from {} r where {} select ",
            self.dataset, self.predicate
        )?;
        match &self.select {
            SelectClause::All => write!(f, "r")?,
            SelectClause::Fields(fields) => {
                for (i, path) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "r.{}", path.join("."))?;
                }
            }
        }
        if let ChannelMode::Repetitive { period } = self.mode {
            write!(f, " every {}s", period.as_secs_f64())?;
        }
        Ok(())
    }
}

/// A set of `name -> value` bindings supplied when subscribing to a
/// parameterized channel.
///
/// # Examples
///
/// ```
/// use bad_query::ParamBindings;
/// use bad_types::DataValue;
///
/// let mut p = ParamBindings::new();
/// p.bind("kind", DataValue::from("flood"));
/// p.bind("severity", DataValue::from(3i64));
/// // The canonical key is order independent.
/// let mut q = ParamBindings::new();
/// q.bind("severity", DataValue::from(3i64));
/// q.bind("kind", DataValue::from("flood"));
/// assert_eq!(p.canonical_key(), q.canonical_key());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamBindings {
    values: BTreeMap<String, DataValue>,
}

impl ParamBindings {
    /// Creates an empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates bindings from `(name, value)` pairs.
    pub fn from_pairs<K, I>(pairs: I) -> Self
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, DataValue)>,
    {
        Self {
            values: pairs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Binds (or rebinds) a parameter.
    pub fn bind(&mut self, name: impl Into<String>, value: DataValue) -> &mut Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Looks up a bound value.
    pub fn get(&self, name: &str) -> Option<&DataValue> {
        self.values.get(name)
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DataValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A deterministic, order-independent key identifying these bindings.
    ///
    /// The broker keys backend subscriptions by `(channel, canonical_key)`
    /// to merge identical frontend subscriptions, as described in
    /// Section III-C of the paper.
    pub fn canonical_key(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_json_string());
        }
        out
    }

    /// Verifies the bindings against a parameter declaration list.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::InvalidArgument`] when a declared parameter is
    /// unbound or extraneous, and [`BadError::Type`] when a bound value
    /// does not conform to its declared type.
    pub fn check_against(&self, defs: &[ParamDef]) -> Result<()> {
        for def in defs {
            let value = self.values.get(&def.name).ok_or_else(|| {
                BadError::InvalidArgument(format!("missing binding for `${}`", def.name))
            })?;
            let ok = match def.ty {
                ParamType::String => value.as_str().is_some(),
                ParamType::Int => value.as_i64().is_some(),
                ParamType::Float => value.as_f64().is_some(),
                ParamType::Bool => value.as_bool().is_some(),
                ParamType::Point => bad_types::GeoPoint::from_value(value).is_some(),
                ParamType::Region => bad_types::BoundingBox::from_value(value).is_some(),
            };
            if !ok {
                return Err(BadError::Type(format!(
                    "binding for `${}` is not a {}",
                    def.name, def.ty
                )));
            }
        }
        if self.values.len() > defs.len() {
            let declared: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
            let extra: Vec<&str> = self
                .values
                .keys()
                .map(String::as_str)
                .filter(|k| !declared.contains(k))
                .collect();
            return Err(BadError::InvalidArgument(format!(
                "extraneous parameter bindings: {}",
                extra.join(", ")
            )));
        }
        Ok(())
    }
}

impl<K: Into<String>> FromIterator<(K, DataValue)> for ParamBindings {
    fn from_iter<I: IntoIterator<Item = (K, DataValue)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bad_types::{BoundingBox, GeoPoint};

    fn spec() -> ChannelSpec {
        ChannelSpec::parse(
            "channel Near(etype: string, area: region) from Reports r \
             where r.kind == $etype and within(r.location, $area) select r",
        )
        .unwrap()
    }

    fn bindings() -> ParamBindings {
        let area = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0));
        ParamBindings::from_pairs([
            ("etype", DataValue::from("fire")),
            ("area", area.to_value()),
        ])
    }

    fn report(kind: &str, lat: f64, lon: f64) -> DataValue {
        DataValue::object([
            ("kind", DataValue::from(kind)),
            ("location", GeoPoint::new(lat, lon).to_value()),
        ])
    }

    #[test]
    fn matches_records() {
        let spec = spec();
        let params = bindings();
        assert!(spec.matches(&report("fire", 0.5, 0.5), &params).unwrap());
        assert!(!spec.matches(&report("flood", 0.5, 0.5), &params).unwrap());
        assert!(!spec.matches(&report("fire", 2.0, 0.5), &params).unwrap());
    }

    #[test]
    fn evaluate_projects() {
        let spec = ChannelSpec::parse(
            "channel C(k: string) from DS r where r.kind == $k select r.kind, r.sev",
        )
        .unwrap();
        let params = ParamBindings::from_pairs([("k", DataValue::from("x"))]);
        let rec = DataValue::object([
            ("kind", DataValue::from("x")),
            ("sev", DataValue::from(2i64)),
            ("noise", DataValue::from("dropped")),
        ]);
        let out = spec.evaluate(&rec, &params).unwrap().unwrap();
        assert_eq!(out.get("kind").and_then(DataValue::as_str), Some("x"));
        assert_eq!(out.get("sev").and_then(DataValue::as_i64), Some(2));
        assert!(out.get("noise").is_none());
    }

    #[test]
    fn select_projects_missing_as_null() {
        let clause = SelectClause::Fields(vec![vec!["absent".into()]]);
        let rec = DataValue::object([("present", DataValue::from(1i64))]);
        let out = clause.project(&rec);
        assert!(out.get("absent").unwrap().is_null());
    }

    #[test]
    fn binding_validation() {
        let spec = spec();
        // Missing area.
        let p = ParamBindings::from_pairs([("etype", DataValue::from("fire"))]);
        assert!(matches!(
            spec.matches(&report("fire", 0.5, 0.5), &p),
            Err(BadError::InvalidArgument(_))
        ));
        // Wrong type for area.
        let p = ParamBindings::from_pairs([
            ("etype", DataValue::from("fire")),
            ("area", DataValue::from(1i64)),
        ]);
        assert!(matches!(
            spec.matches(&report("fire", 0.5, 0.5), &p),
            Err(BadError::Type(_))
        ));
        // Extraneous binding.
        let mut p = bindings();
        p.bind("ghost", DataValue::from(1i64));
        assert!(matches!(
            spec.matches(&report("fire", 0.5, 0.5), &p),
            Err(BadError::InvalidArgument(_))
        ));
    }

    #[test]
    fn canonical_key_distinguishes_values() {
        let a = ParamBindings::from_pairs([("k", DataValue::from("x"))]);
        let b = ParamBindings::from_pairs([("k", DataValue::from("y"))]);
        assert_ne!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.canonical_key(), "k=\"x\"");
    }

    #[test]
    fn non_boolean_predicate_is_type_error() {
        let spec = ChannelSpec::parse("channel C() from DS r where r.count + 1 select r").unwrap();
        let rec = DataValue::object([("count", DataValue::from(1i64))]);
        assert!(matches!(
            spec.matches(&rec, &ParamBindings::new()),
            Err(BadError::Type(_))
        ));
    }

    #[test]
    fn display_roundtrips_through_parse() {
        let spec = spec();
        let reparsed = ChannelSpec::parse(&spec.to_string()).unwrap();
        assert_eq!(reparsed.name(), spec.name());
        assert_eq!(reparsed.predicate(), spec.predicate());
    }

    #[test]
    fn equality_fields_exposed() {
        let spec = spec();
        assert_eq!(
            spec.equality_param_fields(),
            vec![("kind".to_string(), "etype".to_string())]
        );
    }
}
