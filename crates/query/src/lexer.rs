//! Tokenizer for BQL.

use std::fmt;

use bad_types::{BadError, Result};

/// A lexical token together with its byte offset in the source.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

/// The kinds of BQL tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// A bare identifier or keyword (`channel`, `from`, field names, ...).
    Ident(String),
    /// A `$`-prefixed parameter reference (without the `$`).
    Param(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A double-quoted string literal (unescaped).
    Str(String),
    /// A duration literal such as `10s`, `5m`, `2h`, `150ms`.
    Duration(u64, DurationUnit),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// Units accepted in duration literals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurationUnit {
    /// Milliseconds (`ms`).
    Millis,
    /// Seconds (`s`).
    Secs,
    /// Minutes (`m`).
    Mins,
    /// Hours (`h`).
    Hours,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Param(s) => write!(f, "parameter `${s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Duration(n, u) => {
                let unit = match u {
                    DurationUnit::Millis => "ms",
                    DurationUnit::Secs => "s",
                    DurationUnit::Mins => "m",
                    DurationUnit::Hours => "h",
                };
                write!(f, "duration `{n}{unit}`")
            }
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenizes a BQL source string.
///
/// The returned stream always ends with a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns [`BadError::Parse`] on unterminated strings, malformed numbers
/// or unexpected characters. Comments run from `--` to end of line.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    let err = |pos: usize, msg: &str| -> BadError {
        BadError::Parse(format!("bql: {msg} at byte {pos}"))
    };

    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                pos += 1;
            }
            b'-' if bytes.get(pos + 1) == Some(&b'-') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: pos,
                });
                pos += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: pos,
                });
                pos += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: pos,
                });
                pos += 1;
            }
            b'.' => {
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    offset: pos,
                });
                pos += 1;
            }
            b':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    offset: pos,
                });
                pos += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: pos,
                });
                pos += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: pos,
                });
                pos += 1;
            }
            b'*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: pos,
                });
                pos += 1;
            }
            b'/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    offset: pos,
                });
                pos += 1;
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::EqEq,
                        offset: pos,
                    });
                    pos += 2;
                } else {
                    return Err(err(pos, "single `=` (use `==`)"));
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: pos,
                    });
                    pos += 2;
                } else {
                    return Err(err(pos, "single `!` (use `not` or `!=`)"));
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: pos,
                    });
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: pos,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: pos,
                    });
                    pos += 1;
                }
            }
            b'$' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(err(pos, "`$` must be followed by a parameter name"));
                }
                tokens.push(Token {
                    kind: TokenKind::Param(src[start..end].to_owned()),
                    offset: pos,
                });
                pos = end;
            }
            b'"' => {
                let start = pos;
                pos += 1;
                let mut out = String::new();
                loop {
                    match bytes.get(pos) {
                        None => return Err(err(start, "unterminated string literal")),
                        Some(b'"') => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(pos + 1) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                _ => return Err(err(pos, "invalid escape in string")),
                            }
                            pos += 2;
                        }
                        Some(_) => {
                            // Copy one whole UTF-8 scalar.
                            let rest = &src[pos..];
                            let c = rest.chars().next().expect("non-empty");
                            out.push(c);
                            pos += c.len_utf8();
                        }
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    offset: start,
                });
            }
            b'0'..=b'9' => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let mut is_float = false;
                if pos + 1 < bytes.len() && bytes[pos] == b'.' && bytes[pos + 1].is_ascii_digit() {
                    is_float = true;
                    pos += 1;
                    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                        pos += 1;
                    }
                }
                // Duration suffix? Only on integer literals.
                if !is_float {
                    let n: u64 = src[start..pos]
                        .parse()
                        .map_err(|_| err(start, "integer literal out of range"))?;
                    let unit = if src[pos..].starts_with("ms") {
                        Some((DurationUnit::Millis, 2))
                    } else if src[pos..].starts_with('s') {
                        Some((DurationUnit::Secs, 1))
                    } else if src[pos..].starts_with('m') {
                        Some((DurationUnit::Mins, 1))
                    } else if src[pos..].starts_with('h') {
                        Some((DurationUnit::Hours, 1))
                    } else {
                        None
                    };
                    if let Some((unit, len)) = unit {
                        // A suffix only counts when not followed by more identifier chars.
                        let after = pos + len;
                        let next_is_ident = bytes
                            .get(after)
                            .map(|b| b.is_ascii_alphanumeric() || *b == b'_')
                            .unwrap_or(false);
                        if !next_is_ident {
                            tokens.push(Token {
                                kind: TokenKind::Duration(n, unit),
                                offset: start,
                            });
                            pos = after;
                            continue;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Int(n as i64),
                        offset: start,
                    });
                } else {
                    let x: f64 = src[start..pos]
                        .parse()
                        .map_err(|_| err(start, "invalid float literal"))?;
                    tokens.push(Token {
                        kind: TokenKind::Float(x),
                        offset: start,
                    });
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..pos].to_owned()),
                    offset: start,
                });
            }
            _ => return Err(err(pos, "unexpected character")),
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            kinds("== != < <= > >= + - * / ( ) , . :"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Dot,
                TokenKind::Colon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_literals() {
        assert_eq!(
            kinds(r#"42 2.5 "hi\n" $p ident"#),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(2.5),
                TokenKind::Str("hi\n".into()),
                TokenKind::Param("p".into()),
                TokenKind::Ident("ident".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tokenizes_durations() {
        assert_eq!(
            kinds("10s 5m 2h 150ms"),
            vec![
                TokenKind::Duration(10, DurationUnit::Secs),
                TokenKind::Duration(5, DurationUnit::Mins),
                TokenKind::Duration(2, DurationUnit::Hours),
                TokenKind::Duration(150, DurationUnit::Millis),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn duration_suffix_requires_boundary() {
        // `10sec` is not a duration: `s` is followed by more identifier chars.
        assert_eq!(
            kinds("10sec"),
            vec![
                TokenKind::Int(10),
                TokenKind::Ident("sec".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment == junk\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("$ x").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn minus_is_a_token_when_not_comment() {
        assert_eq!(
            kinds("1 - 2"),
            vec![
                TokenKind::Int(1),
                TokenKind::Minus,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = tokenize("ab  == 7").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
        assert_eq!(toks[2].offset, 7);
    }
}
