//! BQL — the declarative subscription language of the BAD reproduction.
//!
//! The BAD platform lets subscribers express interests as *parameterized
//! channels*: named, reusable queries with typed parameters that run
//! perpetually inside the data cluster. The original system used
//! AsterixDB's AQL; this crate provides a compact stand-in with the same
//! role: a lexer, parser, static validator and evaluator for channel
//! declarations and their predicates.
//!
//! # Grammar sketch
//!
//! ```text
//! channel NearbyReports(etype: string, area: region)
//! from EmergencyReports r
//! where r.kind == $etype and within(r.location, $area)
//! select r
//! every 10s                      -- optional: repetitive channel
//! ```
//!
//! Omitting `every` yields a *continuous* channel (matched on every
//! publication as it arrives); `every <duration>` yields a *repetitive*
//! channel executed periodically over the records accumulated since the
//! last execution.
//!
//! # Examples
//!
//! ```
//! use bad_query::{ChannelSpec, ParamBindings};
//! use bad_types::DataValue;
//!
//! let spec = ChannelSpec::parse(
//!     "channel Hot(kind: string) from Reports r \
//!      where r.kind == $kind and r.severity >= 3 select r",
//! )?;
//! let mut params = ParamBindings::new();
//! params.bind("kind", DataValue::from("tornado"));
//!
//! let record = DataValue::parse_json(r#"{"kind":"tornado","severity":4}"#)?;
//! assert!(spec.matches(&record, &params)?);
//! # Ok::<(), bad_types::BadError>(())
//! ```

pub mod ast;
pub mod channel;
pub mod eval;
pub mod lexer;
pub mod parser;

pub use ast::{BinOp, Expr, Literal, ParamType, UnOp};
pub use channel::{ChannelMode, ChannelSpec, ParamBindings, ParamDef, SelectClause};
pub use eval::EvalContext;
pub use parser::{parse_channel, parse_expr};
