//! Abstract syntax for BQL expressions.

use std::fmt;

/// A literal constant in a predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => write!(f, "null"),
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Literal::Str(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// Binary operators, in increasing precedence groups: `or`, `and`,
/// comparisons, additive, multiplicative.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical disjunction.
    Or,
    /// Logical conjunction.
    And,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// Parser precedence; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div => 5,
        }
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Logical negation (`not e`).
    Not,
    /// Arithmetic negation (`-e`).
    Neg,
}

/// A BQL expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A constant.
    Literal(Literal),
    /// A dotted field path rooted at the channel's record variable, e.g.
    /// `r.location.lat` is `Field(["location", "lat"])`.
    Field(Vec<String>),
    /// A `$name` parameter reference.
    Param(String),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A builtin function call such as `within(r.location, $area)`.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a field path from segments.
    pub fn field<I, S>(segments: I) -> Expr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Expr::Field(segments.into_iter().map(Into::into).collect())
    }

    /// Collects the names of all `$params` referenced by the expression.
    pub fn referenced_params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Param(name) = e {
                if !out.contains(&name.as_str()) {
                    out.push(name.as_str());
                }
            }
        });
        out
    }

    /// Walks the expression tree depth-first, calling `f` on every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Literal(_) | Expr::Field(_) | Expr::Param(_) => {}
        }
    }

    /// Extracts `field == $param` equality constraints from the top-level
    /// conjunction of this predicate.
    ///
    /// The BAD cluster's matcher uses these to partition subscriptions by
    /// the bound parameter value, so a publication only needs to be checked
    /// against subscriptions whose equality key matches.
    pub fn equality_param_fields(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.collect_equalities(&mut out);
        out
    }

    fn collect_equalities(&self, out: &mut Vec<(String, String)>) {
        match self {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                lhs.collect_equalities(out);
                rhs.collect_equalities(out);
            }
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Field(path), Expr::Param(p)) | (Expr::Param(p), Expr::Field(path)) => {
                    out.push((path.join("."), p.clone()));
                }
                _ => {}
            },
            _ => {}
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        match self {
            Expr::Literal(lit) => write!(f, "{lit}"),
            Expr::Field(path) => write!(f, "r.{}", path.join(".")),
            Expr::Param(name) => write!(f, "${name}"),
            Expr::Binary { op, lhs, rhs } => {
                let prec = op.precedence();
                let needs = prec < parent_prec;
                if needs {
                    write!(f, "(")?;
                }
                lhs.fmt_with_parens(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand needs parens at equal precedence to keep
                // left associativity through a print/parse round trip.
                rhs.fmt_with_parens(f, prec + 1)?;
                if needs {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Unary { op, expr } => {
                match op {
                    UnOp::Not => write!(f, "not ")?,
                    UnOp::Neg => write!(f, "-")?,
                }
                expr.fmt_with_parens(f, 6)
            }
            Expr::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_with_parens(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

/// The declared type of a channel parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamType {
    /// UTF-8 string.
    String,
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// A `{lat, lon}` point record.
    Point,
    /// A `{min, max}` bounding-box record.
    Region,
}

impl ParamType {
    /// The BQL keyword for this type.
    pub fn keyword(self) -> &'static str {
        match self {
            ParamType::String => "string",
            ParamType::Int => "int",
            ParamType::Float => "float",
            ParamType::Bool => "bool",
            ParamType::Point => "point",
            ParamType::Region => "region",
        }
    }

    /// Parses a BQL type keyword.
    pub fn from_keyword(kw: &str) -> Option<ParamType> {
        Some(match kw {
            "string" => ParamType::String,
            "int" => ParamType::Int,
            "float" => ParamType::Float,
            "bool" => ParamType::Bool,
            "point" => ParamType::Point,
            "region" => ParamType::Region,
            _ => return None,
        })
    }
}

impl fmt::Display for ParamType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(path: &[&str]) -> Expr {
        Expr::field(path.iter().copied())
    }

    #[test]
    fn display_respects_precedence() {
        // (a or b) and c needs parens around the `or`.
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Or, field(&["a"]), field(&["b"])),
            field(&["c"]),
        );
        assert_eq!(e.to_string(), "(r.a or r.b) and r.c");
        // a or (b and c) needs none.
        let e2 = Expr::binary(
            BinOp::Or,
            field(&["a"]),
            Expr::binary(BinOp::And, field(&["b"]), field(&["c"])),
        );
        assert_eq!(e2.to_string(), "r.a or r.b and r.c");
    }

    #[test]
    fn display_left_associative_subtraction() {
        // (a - b) - c prints without parens; a - (b - c) keeps them.
        let left = Expr::binary(
            BinOp::Sub,
            Expr::binary(BinOp::Sub, field(&["a"]), field(&["b"])),
            field(&["c"]),
        );
        assert_eq!(left.to_string(), "r.a - r.b - r.c");
        let right = Expr::binary(
            BinOp::Sub,
            field(&["a"]),
            Expr::binary(BinOp::Sub, field(&["b"]), field(&["c"])),
        );
        assert_eq!(right.to_string(), "r.a - (r.b - r.c)");
    }

    #[test]
    fn referenced_params_deduplicates() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Eq, field(&["k"]), Expr::Param("p".into())),
            Expr::binary(BinOp::Ne, field(&["x"]), Expr::Param("p".into())),
        );
        assert_eq!(e.referenced_params(), vec!["p"]);
    }

    #[test]
    fn equality_extraction_finds_conjuncts() {
        // r.kind == $k and (r.sev >= $s and r.city == $c) and r.x < 3
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::Eq, field(&["kind"]), Expr::Param("k".into())),
                Expr::binary(
                    BinOp::And,
                    Expr::binary(BinOp::Ge, field(&["sev"]), Expr::Param("s".into())),
                    Expr::binary(BinOp::Eq, Expr::Param("c".into()), field(&["city"])),
                ),
            ),
            Expr::binary(BinOp::Lt, field(&["x"]), Expr::Literal(Literal::Int(3))),
        );
        assert_eq!(
            e.equality_param_fields(),
            vec![
                ("kind".to_string(), "k".to_string()),
                ("city".to_string(), "c".to_string())
            ]
        );
    }

    #[test]
    fn equality_extraction_ignores_disjunctions() {
        let e = Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Eq, field(&["kind"]), Expr::Param("k".into())),
            Expr::binary(BinOp::Eq, field(&["city"]), Expr::Param("c".into())),
        );
        assert!(e.equality_param_fields().is_empty());
    }

    #[test]
    fn param_type_keywords_roundtrip() {
        for ty in [
            ParamType::String,
            ParamType::Int,
            ParamType::Float,
            ParamType::Bool,
            ParamType::Point,
            ParamType::Region,
        ] {
            assert_eq!(ParamType::from_keyword(ty.keyword()), Some(ty));
        }
        assert_eq!(ParamType::from_keyword("blob"), None);
    }
}
