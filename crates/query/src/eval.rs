//! Evaluation of BQL expressions against a record and parameter bindings.

use bad_types::{BadError, BoundingBox, DataValue, GeoPoint, Result};

use crate::ast::{BinOp, Expr, Literal, UnOp};
use crate::channel::ParamBindings;

/// Evaluation context: one record plus the subscription's parameter
/// bindings.
///
/// # Examples
///
/// ```
/// use bad_query::{parse_expr, EvalContext, ParamBindings};
/// use bad_types::DataValue;
///
/// let record = DataValue::parse_json(r#"{"sev": 4}"#)?;
/// let params = ParamBindings::from_pairs([("min", DataValue::from(3i64))]);
/// let ctx = EvalContext::new(&record, &params);
/// let value = ctx.eval(&parse_expr("r.sev >= $min")?)?;
/// assert_eq!(value.as_bool(), Some(true));
/// # Ok::<(), bad_types::BadError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EvalContext<'a> {
    record: &'a DataValue,
    params: &'a ParamBindings,
}

impl<'a> EvalContext<'a> {
    /// Creates a context over one record and one binding set.
    pub fn new(record: &'a DataValue, params: &'a ParamBindings) -> Self {
        Self { record, params }
    }

    /// Evaluates an expression to a value.
    ///
    /// Missing record fields evaluate to [`DataValue::Null`] (open
    /// schema); comparisons involving `null` are `false` except `==`/`!=`,
    /// which test null-ness.
    ///
    /// # Errors
    ///
    /// Returns [`BadError::Type`] for operations on incompatible types
    /// (e.g. `"a" < 3`, `not 5`), unknown functions or wrong arities, and
    /// [`BadError::InvalidArgument`] for unbound parameters.
    pub fn eval(&self, expr: &Expr) -> Result<DataValue> {
        match expr {
            Expr::Literal(lit) => Ok(match lit {
                Literal::Null => DataValue::Null,
                Literal::Bool(b) => DataValue::Bool(*b),
                Literal::Int(i) => DataValue::Int(*i),
                Literal::Float(x) => DataValue::Float(*x),
                Literal::Str(s) => DataValue::Str(s.clone()),
            }),
            Expr::Field(path) => {
                let mut cur = self.record;
                for seg in path {
                    match cur.get(seg) {
                        Some(v) => cur = v,
                        None => return Ok(DataValue::Null),
                    }
                }
                Ok(cur.clone())
            }
            Expr::Param(name) => {
                self.params.get(name).cloned().ok_or_else(|| {
                    BadError::InvalidArgument(format!("unbound parameter `${name}`"))
                })
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                match op {
                    UnOp::Not => v
                        .as_bool()
                        .map(|b| DataValue::Bool(!b))
                        .ok_or_else(|| BadError::Type(format!("`not` applied to {v}"))),
                    UnOp::Neg => match v {
                        DataValue::Int(i) => Ok(DataValue::Int(-i)),
                        DataValue::Float(f) => Ok(DataValue::Float(-f)),
                        other => Err(BadError::Type(format!("`-` applied to {other}"))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs),
            Expr::Call { name, args } => self.eval_call(name, args),
        }
    }

    fn eval_binary(&self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<DataValue> {
        // Short-circuit logic first.
        match op {
            BinOp::And => {
                let l = self.eval_bool(lhs, "and")?;
                if !l {
                    return Ok(DataValue::Bool(false));
                }
                return Ok(DataValue::Bool(self.eval_bool(rhs, "and")?));
            }
            BinOp::Or => {
                let l = self.eval_bool(lhs, "or")?;
                if l {
                    return Ok(DataValue::Bool(true));
                }
                return Ok(DataValue::Bool(self.eval_bool(rhs, "or")?));
            }
            _ => {}
        }
        let l = self.eval(lhs)?;
        let r = self.eval(rhs)?;
        match op {
            BinOp::Eq => Ok(DataValue::Bool(values_equal(&l, &r))),
            BinOp::Ne => Ok(DataValue::Bool(!values_equal(&l, &r))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                // Null never satisfies an ordering comparison.
                if l.is_null() || r.is_null() {
                    return Ok(DataValue::Bool(false));
                }
                let ord = compare_values(&l, &r)?;
                let res = match op {
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                };
                Ok(DataValue::Bool(res))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arithmetic(op, &l, &r),
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_bool(&self, expr: &Expr, op: &str) -> Result<bool> {
        let v = self.eval(expr)?;
        v.as_bool()
            .ok_or_else(|| BadError::Type(format!("`{op}` operand is {v}, not boolean")))
    }

    fn eval_call(&self, name: &str, args: &[Expr]) -> Result<DataValue> {
        let values: Vec<DataValue> = args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
        let arity = |n: usize| -> Result<()> {
            if values.len() == n {
                Ok(())
            } else {
                Err(BadError::Type(format!(
                    "function `{name}` expects {n} argument(s), got {}",
                    values.len()
                )))
            }
        };
        match name {
            "within" => {
                arity(2)?;
                let point = GeoPoint::from_value(&values[0]);
                let region = BoundingBox::from_value(&values[1]);
                match (point, region) {
                    (Some(p), Some(r)) => Ok(DataValue::Bool(r.contains(p))),
                    // A malformed/missing point simply does not match.
                    (None, Some(_)) if values[0].is_null() => Ok(DataValue::Bool(false)),
                    _ => Err(BadError::Type(format!(
                        "within() needs a point and a region, got {} and {}",
                        values[0], values[1]
                    ))),
                }
            }
            "distance" => {
                arity(2)?;
                let a = GeoPoint::from_value(&values[0]);
                let b = GeoPoint::from_value(&values[1]);
                match (a, b) {
                    (Some(a), Some(b)) => Ok(DataValue::Float(a.distance_km(b))),
                    _ => Err(BadError::Type(format!(
                        "distance() needs two points, got {} and {}",
                        values[0], values[1]
                    ))),
                }
            }
            "contains" => {
                arity(2)?;
                match (values[0].as_str(), values[1].as_str()) {
                    (Some(hay), Some(needle)) => Ok(DataValue::Bool(hay.contains(needle))),
                    _ => Err(BadError::Type("contains() needs two strings".into())),
                }
            }
            "startswith" => {
                arity(2)?;
                match (values[0].as_str(), values[1].as_str()) {
                    (Some(hay), Some(prefix)) => Ok(DataValue::Bool(hay.starts_with(prefix))),
                    _ => Err(BadError::Type("startswith() needs two strings".into())),
                }
            }
            "lower" => {
                arity(1)?;
                values[0]
                    .as_str()
                    .map(|s| DataValue::Str(s.to_lowercase()))
                    .ok_or_else(|| BadError::Type("lower() needs a string".into()))
            }
            "abs" => {
                arity(1)?;
                match &values[0] {
                    DataValue::Int(i) => Ok(DataValue::Int(i.abs())),
                    DataValue::Float(f) => Ok(DataValue::Float(f.abs())),
                    other => Err(BadError::Type(format!("abs() applied to {other}"))),
                }
            }
            "len" => {
                arity(1)?;
                match &values[0] {
                    DataValue::Str(s) => Ok(DataValue::Int(s.chars().count() as i64)),
                    DataValue::Array(a) => Ok(DataValue::Int(a.len() as i64)),
                    other => Err(BadError::Type(format!("len() applied to {other}"))),
                }
            }
            "exists" => {
                arity(1)?;
                Ok(DataValue::Bool(!values[0].is_null()))
            }
            _ => Err(BadError::Type(format!("unknown function `{name}`"))),
        }
    }
}

/// Structural equality with int/float numeric coercion.
fn values_equal(l: &DataValue, r: &DataValue) -> bool {
    match (l, r) {
        (DataValue::Int(_) | DataValue::Float(_), DataValue::Int(_) | DataValue::Float(_)) => {
            // Safe: both sides are numeric.
            l.as_f64() == r.as_f64()
        }
        _ => l == r,
    }
}

/// Total order over comparable pairs (numbers with numbers, strings with
/// strings, bools with bools).
fn compare_values(l: &DataValue, r: &DataValue) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (DataValue::Int(a), DataValue::Int(b)) => Ok(a.cmp(b)),
        (DataValue::Int(_) | DataValue::Float(_), DataValue::Int(_) | DataValue::Float(_)) => {
            let a = l.as_f64().expect("numeric");
            let b = r.as_f64().expect("numeric");
            a.partial_cmp(&b)
                .ok_or_else(|| BadError::Type("comparison with NaN is undefined".into()))
        }
        (DataValue::Str(a), DataValue::Str(b)) => Ok(a.cmp(b)),
        (DataValue::Bool(a), DataValue::Bool(b)) => Ok(a.cmp(b)),
        _ => Err(BadError::Type(format!("cannot order {l} against {r}"))),
    }
}

fn arithmetic(op: BinOp, l: &DataValue, r: &DataValue) -> Result<DataValue> {
    // Integer arithmetic stays integral except for division.
    if let (DataValue::Int(a), DataValue::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => DataValue::Int(a.wrapping_add(*b)),
            BinOp::Sub => DataValue::Int(a.wrapping_sub(*b)),
            BinOp::Mul => DataValue::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    return Err(BadError::Type("division by zero".into()));
                }
                DataValue::Int(a / b)
            }
            _ => unreachable!(),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(BadError::Type(format!(
                "arithmetic `{}` applied to {l} and {r}",
                op.symbol()
            )))
        }
    };
    Ok(DataValue::Float(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Err(BadError::Type("division by zero".into()));
            }
            a / b
        }
        _ => unreachable!(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn eval_with(src: &str, record: &str, params: ParamBindings) -> Result<DataValue> {
        let expr = parse_expr(src).unwrap();
        let record = DataValue::parse_json(record).unwrap();
        EvalContext::new(&record, &params).eval(&expr)
    }

    fn eval(src: &str, record: &str) -> Result<DataValue> {
        eval_with(src, record, ParamBindings::new())
    }

    #[test]
    fn comparisons_and_coercion() {
        assert_eq!(
            eval("r.a == 2", r#"{"a":2}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.a == 2.0", r#"{"a":2}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.a < 2.5", r#"{"a":2}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.a >= 3", r#"{"a":2}"#).unwrap(),
            DataValue::Bool(false)
        );
        assert_eq!(
            eval("r.s == \"x\"", r#"{"s":"x"}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.s < \"b\"", r#"{"s":"a"}"#).unwrap(),
            DataValue::Bool(true)
        );
    }

    #[test]
    fn missing_fields_are_null() {
        assert_eq!(
            eval("r.ghost == null", "{}").unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.ghost != null", "{}").unwrap(),
            DataValue::Bool(false)
        );
        // Ordering against null is false, not an error.
        assert_eq!(eval("r.ghost < 3", "{}").unwrap(), DataValue::Bool(false));
        assert_eq!(
            eval("exists(r.ghost)", "{}").unwrap(),
            DataValue::Bool(false)
        );
        assert_eq!(
            eval("exists(r.a)", r#"{"a":1}"#).unwrap(),
            DataValue::Bool(true)
        );
    }

    #[test]
    fn logic_short_circuits() {
        // rhs would be a type error if evaluated.
        assert_eq!(
            eval("r.a == 1 or not r.a", r#"{"a":1}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.a == 2 and not r.a", r#"{"a":1}"#).unwrap(),
            DataValue::Bool(false)
        );
        // But a non-boolean operand that is evaluated is an error.
        assert!(eval("r.a and true", r#"{"a":1}"#).is_err());
    }

    #[test]
    fn arithmetic_semantics() {
        assert_eq!(eval("2 + 3 * 4", "{}").unwrap(), DataValue::Int(14));
        assert_eq!(eval("7 / 2", "{}").unwrap(), DataValue::Int(3));
        assert_eq!(eval("7.0 / 2", "{}").unwrap(), DataValue::Float(3.5));
        assert_eq!(eval("-r.a + 1", r#"{"a":5}"#).unwrap(), DataValue::Int(-4));
        assert!(eval("1 / 0", "{}").is_err());
        assert!(eval("1.0 / 0.0", "{}").is_err());
        assert!(eval("\"a\" + 1", "{}").is_err());
    }

    #[test]
    fn params_resolve() {
        let p = ParamBindings::from_pairs([("min", DataValue::from(3i64))]);
        assert_eq!(
            eval_with("r.a >= $min", r#"{"a":4}"#, p).unwrap(),
            DataValue::Bool(true)
        );
        assert!(matches!(
            eval("r.a >= $missing", r#"{"a":4}"#),
            Err(BadError::InvalidArgument(_))
        ));
    }

    #[test]
    fn geo_builtins() {
        let area = bad_types::BoundingBox::new(
            bad_types::GeoPoint::new(0.0, 0.0),
            bad_types::GeoPoint::new(1.0, 1.0),
        );
        let p = ParamBindings::from_pairs([("area", area.to_value())]);
        let inside = r#"{"location":{"lat":0.5,"lon":0.5}}"#;
        let outside = r#"{"location":{"lat":5.0,"lon":0.5}}"#;
        assert_eq!(
            eval_with("within(r.location, $area)", inside, p.clone()).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval_with("within(r.location, $area)", outside, p.clone()).unwrap(),
            DataValue::Bool(false)
        );
        // Record without a location does not match (no error).
        assert_eq!(
            eval_with("within(r.location, $area)", "{}", p).unwrap(),
            DataValue::Bool(false)
        );
    }

    #[test]
    fn distance_builtin() {
        let origin = bad_types::GeoPoint::new(0.0, 0.0);
        let p = ParamBindings::from_pairs([("o", origin.to_value())]);
        let v = eval_with(
            "distance(r.location, $o) < 200.0",
            r#"{"location":{"lat":1.0,"lon":0.0}}"#,
            p,
        )
        .unwrap();
        assert_eq!(v, DataValue::Bool(true)); // ~111 km
    }

    #[test]
    fn string_builtins() {
        assert_eq!(
            eval("contains(r.t, \"orna\")", r#"{"t":"tornado"}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("startswith(r.t, \"tor\")", r#"{"t":"tornado"}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("lower(r.t) == \"abc\"", r#"{"t":"AbC"}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("len(r.t)", r#"{"t":"abcd"}"#).unwrap(),
            DataValue::Int(4)
        );
    }

    #[test]
    fn unknown_function_and_arity_errors() {
        assert!(eval("mystery(r.a)", r#"{"a":1}"#).is_err());
        assert!(eval("abs(1, 2)", "{}").is_err());
        assert!(eval("within(r.a)", r#"{"a":1}"#).is_err());
    }

    #[test]
    fn nested_paths() {
        assert_eq!(
            eval("r.a.b.c == 5", r#"{"a":{"b":{"c":5}}}"#).unwrap(),
            DataValue::Bool(true)
        );
        assert_eq!(
            eval("r.a.b.c == 5", r#"{"a":{"b":1}}"#).unwrap(),
            DataValue::Bool(false)
        );
    }
}
