//! Recursive-descent parser for BQL expressions and channel declarations.

use bad_types::{BadError, Result, SimDuration};

use crate::ast::{BinOp, Expr, Literal, ParamType, UnOp};
use crate::channel::{ChannelMode, ChannelSpec, ParamDef, SelectClause};
use crate::lexer::{tokenize, DurationUnit, Token, TokenKind};

/// Parses a standalone BQL expression (a channel predicate body).
///
/// The record variable is implicit: field paths must be written against
/// the variable named `r` (e.g. `r.kind == $k`); the enclosing channel
/// declaration may rename it.
///
/// # Errors
///
/// Returns [`BadError::Parse`] on any syntax error.
///
/// # Examples
///
/// ```
/// use bad_query::parse_expr;
///
/// let e = parse_expr("r.severity >= 3 and contains(r.title, \"flood\")")?;
/// assert_eq!(e.to_string(), "r.severity >= 3 and contains(r.title, \"flood\")");
/// # Ok::<(), bad_types::BadError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens, "r".to_owned());
    let expr = p.parse_expr_bp(0)?;
    p.expect_eof()?;
    Ok(expr)
}

/// Parses a full `channel ... from ... where ... select ... [every ...]`
/// declaration.
///
/// # Errors
///
/// Returns [`BadError::Parse`] on syntax errors, duplicate parameter
/// names, or references to undeclared parameters.
pub fn parse_channel(src: &str) -> Result<ChannelSpec> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens, "r".to_owned());

    p.expect_keyword("channel")?;
    let name = p.expect_ident("channel name")?;

    // Parameter list.
    p.expect(&TokenKind::LParen)?;
    let mut params: Vec<ParamDef> = Vec::new();
    if !p.eat(&TokenKind::RParen) {
        loop {
            let pname = p.expect_ident("parameter name")?;
            p.expect(&TokenKind::Colon)?;
            let tyname = p.expect_ident("parameter type")?;
            let ty = ParamType::from_keyword(&tyname)
                .ok_or_else(|| p.error(format!("unknown parameter type `{tyname}`")))?;
            if params.iter().any(|d| d.name == pname) {
                return Err(p.error(format!("duplicate parameter `{pname}`")));
            }
            params.push(ParamDef { name: pname, ty });
            if p.eat(&TokenKind::Comma) {
                continue;
            }
            p.expect(&TokenKind::RParen)?;
            break;
        }
    }

    p.expect_keyword("from")?;
    let dataset = p.expect_ident("dataset name")?;
    let var = p.expect_ident("record variable")?;
    p.var = var.clone();

    p.expect_keyword("where")?;
    let predicate = p.parse_expr_bp(0)?;

    p.expect_keyword("select")?;
    let select = p.parse_select()?;

    let mode = if p.eat_keyword("every") {
        let period = p.expect_duration()?;
        ChannelMode::Repetitive { period }
    } else {
        ChannelMode::Continuous
    };
    p.expect_eof()?;

    let spec = ChannelSpec::new(name, params, dataset, var, predicate, select, mode)?;
    Ok(spec)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Name of the record variable field paths must start with.
    var: String,
}

impl Parser {
    fn new(tokens: Vec<Token>, var: String) -> Self {
        Self {
            tokens,
            pos: 0,
            var,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn error(&self, msg: String) -> BadError {
        BadError::Parse(format!(
            "bql: {msg} at byte {}",
            self.tokens[self.pos.min(self.tokens.len() - 1)].offset
        ))
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == kw) && {
            self.bump();
            true
        }
    }

    fn expect_duration(&mut self) -> Result<SimDuration> {
        match self.peek().clone() {
            TokenKind::Duration(n, unit) => {
                self.bump();
                Ok(match unit {
                    DurationUnit::Millis => SimDuration::from_millis(n),
                    DurationUnit::Secs => SimDuration::from_secs(n),
                    DurationUnit::Mins => SimDuration::from_mins(n),
                    DurationUnit::Hours => SimDuration::from_hours(n),
                })
            }
            other => Err(self.error(format!("expected duration literal, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error(format!("unexpected {}", self.peek())))
        }
    }

    fn parse_select(&mut self) -> Result<SelectClause> {
        // Either the record variable itself (`select r`) or a field list
        // (`select r.a, r.b.c`).
        let first = self.expect_ident("record variable in select")?;
        if first != self.var {
            return Err(self.error(format!(
                "select must reference record variable `{}`",
                self.var
            )));
        }
        if self.peek() != &TokenKind::Dot {
            return Ok(SelectClause::All);
        }
        let mut fields = Vec::new();
        fields.push(self.parse_path_after_var()?);
        while self.eat(&TokenKind::Comma) {
            let var = self.expect_ident("record variable in select")?;
            if var != self.var {
                return Err(self.error(format!(
                    "select must reference record variable `{}`",
                    self.var
                )));
            }
            fields.push(self.parse_path_after_var()?);
        }
        Ok(SelectClause::Fields(fields))
    }

    fn parse_path_after_var(&mut self) -> Result<Vec<String>> {
        let mut path = Vec::new();
        while self.eat(&TokenKind::Dot) {
            path.push(self.expect_ident("field name")?);
        }
        if path.is_empty() {
            return Err(self.error("expected `.field` after record variable".into()));
        }
        Ok(path)
    }

    /// Pratt parser over binary-operator binding power.
    fn parse_expr_bp(&mut self, min_bp: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Ident(s) if s == "or" => BinOp::Or,
                TokenKind::Ident(s) if s == "and" => BinOp::And,
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            let bp = op.precedence();
            if bp < min_bp {
                break;
            }
            self.bump();
            // Left associative: the right side must bind strictly tighter.
            let rhs = self.parse_expr_bp(bp + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            let expr = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(expr),
            });
        }
        if self.eat(&TokenKind::Minus) {
            let expr = self.parse_unary()?;
            // Fold negated numeric literals so `-1` round-trips as a literal.
            return Ok(match expr {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(x)) => Expr::Literal(Literal::Float(-x)),
                expr => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(expr),
                },
            });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            TokenKind::Int(i) => Ok(Expr::Literal(Literal::Int(i))),
            TokenKind::Float(x) => Ok(Expr::Literal(Literal::Float(x))),
            TokenKind::Str(s) => Ok(Expr::Literal(Literal::Str(s))),
            TokenKind::Param(name) => Ok(Expr::Param(name)),
            TokenKind::LParen => {
                let e = self.parse_expr_bp(0)?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(s) if s == "true" => Ok(Expr::Literal(Literal::Bool(true))),
            TokenKind::Ident(s) if s == "false" => Ok(Expr::Literal(Literal::Bool(false))),
            TokenKind::Ident(s) if s == "null" => Ok(Expr::Literal(Literal::Null)),
            TokenKind::Ident(s) if s == self.var => {
                // Field path `var.a.b`.
                let path = self.parse_path_after_var()?;
                Ok(Expr::Field(path))
            }
            TokenKind::Ident(name) => {
                // Function call.
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expr_bp(0)?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(&TokenKind::RParen)?;
                            break;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Err(self.error(format!(
                        "unexpected identifier `{name}` (record variable is `{}`)",
                        self.var
                    )))
                }
            }
            other => Err(self.error(format!("unexpected {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, Literal};

    #[test]
    fn parses_precedence() {
        let e = parse_expr("r.a == 1 or r.b == 2 and r.c == 3").unwrap();
        // `and` binds tighter than `or`.
        match e {
            Expr::Binary {
                op: BinOp::Or, rhs, ..
            } => match *rhs {
                Expr::Binary { op: BinOp::And, .. } => {}
                other => panic!("expected and on rhs, got {other:?}"),
            },
            other => panic!("expected or at top, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let e = parse_expr("r.a + 2 * 3 < 10").unwrap();
        assert_eq!(e.to_string(), "r.a + 2 * 3 < 10");
        let e2 = parse_expr("(r.a + 2) * 3 < 10").unwrap();
        assert_eq!(e2.to_string(), "(r.a + 2) * 3 < 10");
    }

    #[test]
    fn parses_unary() {
        let e = parse_expr("not r.active and -r.x < 5").unwrap();
        assert_eq!(e.to_string(), "not r.active and -r.x < 5");
    }

    #[test]
    fn parses_calls_and_paths() {
        let e = parse_expr("within(r.location, $area) and r.meta.depth > 2").unwrap();
        assert_eq!(
            e.to_string(),
            "within(r.location, $area) and r.meta.depth > 2"
        );
    }

    #[test]
    fn parses_literals() {
        let e = parse_expr("r.a == null or r.b == true or r.c == 2.5").unwrap();
        assert_eq!(e.to_string(), "r.a == null or r.b == true or r.c == 2.5");
        assert_eq!(
            parse_expr("\"x\"").unwrap(),
            Expr::Literal(Literal::Str("x".into()))
        );
    }

    #[test]
    fn rejects_syntax_errors() {
        for bad in [
            "r.",
            "r.a ==",
            "(r.a",
            "r.a == 1 extra",
            "unknownvar.a == 1",
            "and r.a",
            "f(",
        ] {
            assert!(parse_expr(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn parses_minimal_channel() {
        let spec = parse_channel("channel C() from DS r where r.x > 0 select r").unwrap();
        assert_eq!(spec.name(), "C");
        assert_eq!(spec.dataset(), "DS");
        assert!(spec.params().is_empty());
        assert_eq!(spec.mode(), ChannelMode::Continuous);
        assert_eq!(spec.select(), &SelectClause::All);
    }

    #[test]
    fn parses_full_channel() {
        let spec = parse_channel(
            "channel Near(etype: string, area: region) \
             from Reports rec \
             where rec.kind == $etype and within(rec.location, $area) \
             select rec.kind, rec.location \
             every 10s",
        )
        .unwrap();
        assert_eq!(spec.params().len(), 2);
        assert_eq!(spec.params()[1].ty, ParamType::Region);
        assert_eq!(
            spec.mode(),
            ChannelMode::Repetitive {
                period: SimDuration::from_secs(10)
            }
        );
        match spec.select() {
            SelectClause::Fields(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0], vec!["kind".to_string()]);
            }
            other => panic!("expected field list, got {other:?}"),
        }
    }

    #[test]
    fn channel_variable_renaming_applies_to_predicate() {
        let spec = parse_channel("channel C() from DS item where item.x > 0 select item").unwrap();
        assert_eq!(spec.predicate().to_string(), "r.x > 0");
        // The default variable `r` is not in scope once renamed.
        assert!(parse_channel("channel C() from DS item where r.x > 0 select item").is_err());
    }

    #[test]
    fn channel_rejects_semantic_errors() {
        // Duplicate parameter.
        assert!(
            parse_channel("channel C(a: int, a: int) from DS r where r.x == $a select r").is_err()
        );
        // Unknown type.
        assert!(parse_channel("channel C(a: blob) from DS r where r.x == $a select r").is_err());
        // Undeclared parameter reference (validated in ChannelSpec::new).
        assert!(parse_channel("channel C() from DS r where r.x == $ghost select r").is_err());
        // Select of foreign variable.
        assert!(parse_channel("channel C() from DS r where r.x > 0 select q").is_err());
    }

    #[test]
    fn channel_duration_units() {
        for (src, expected) in [
            ("500ms", SimDuration::from_millis(500)),
            ("10s", SimDuration::from_secs(10)),
            ("5m", SimDuration::from_mins(5)),
            ("1h", SimDuration::from_hours(1)),
        ] {
            let spec = parse_channel(&format!(
                "channel C() from DS r where r.x > 0 select r every {src}"
            ))
            .unwrap();
            assert_eq!(spec.mode(), ChannelMode::Repetitive { period: expected });
        }
    }
}
