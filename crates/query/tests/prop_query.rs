//! Property-based tests for the BQL language: the pretty-printer and
//! parser are exact inverses, and evaluation is total over boolean
//! predicates built from comparable atoms.

use bad_query::{parse_expr, BinOp, EvalContext, Expr, Literal, ParamBindings};
use bad_types::DataValue;
use proptest::prelude::*;

/// Strategy for comparison atoms `r.<field> <cmp> <int>`, which are
/// always well-typed against integer records.
fn arb_atom() -> impl Strategy<Value = Expr> {
    (
        prop::sample::select(vec!["a", "b", "c", "d"]),
        prop::sample::select(vec![
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ]),
        -50i64..50,
    )
        .prop_map(|(field, op, k)| {
            Expr::binary(op, Expr::field([field]), Expr::Literal(Literal::Int(k)))
        })
}

/// Strategy for boolean predicate trees over the atoms.
fn arb_predicate() -> impl Strategy<Value = Expr> {
    arb_atom().prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinOp::And, l, r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::binary(BinOp::Or, l, r)),
            inner.prop_map(|e| Expr::Unary {
                op: bad_query::UnOp::Not,
                expr: Box::new(e)
            }),
        ]
    })
}

/// Strategy for integer records with the fields the atoms reference.
fn arb_record() -> impl Strategy<Value = DataValue> {
    (-50i64..50, -50i64..50, -50i64..50, -50i64..50).prop_map(|(a, b, c, d)| {
        DataValue::object([
            ("a", DataValue::Int(a)),
            ("b", DataValue::Int(b)),
            ("c", DataValue::Int(c)),
            ("d", DataValue::Int(d)),
        ])
    })
}

proptest! {
    /// Pretty-printing an expression and re-parsing it yields the same AST.
    #[test]
    fn print_parse_roundtrip(expr in arb_predicate()) {
        let printed = expr.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(reparsed, expr);
    }

    /// Every generated predicate evaluates to a boolean on every record —
    /// evaluation is total, no panics, no type errors.
    #[test]
    fn evaluation_is_total(expr in arb_predicate(), record in arb_record()) {
        let params = ParamBindings::new();
        let ctx = EvalContext::new(&record, &params);
        let value = ctx.eval(&expr).unwrap();
        prop_assert!(value.as_bool().is_some());
    }

    /// De Morgan: `not (p and q)` equals `not p or not q` on every record.
    #[test]
    fn de_morgan_holds(p in arb_atom(), q in arb_atom(), record in arb_record()) {
        let params = ParamBindings::new();
        let ctx = EvalContext::new(&record, &params);
        let not = |e: Expr| Expr::Unary { op: bad_query::UnOp::Not, expr: Box::new(e) };
        let lhs = not(Expr::binary(BinOp::And, p.clone(), q.clone()));
        let rhs = Expr::binary(BinOp::Or, not(p), not(q));
        prop_assert_eq!(ctx.eval(&lhs).unwrap(), ctx.eval(&rhs).unwrap());
    }

    /// Equality extraction only reports constraints that really are
    /// top-level conjuncts: substituting the bound value makes the
    /// predicate require that field value.
    #[test]
    fn equality_extraction_sound(
        field in prop::sample::select(vec!["a", "b"]),
        k in -5i64..5,
        other in arb_atom(),
    ) {
        let eq = Expr::binary(
            BinOp::Eq,
            Expr::field([field]),
            Expr::Param("p".into()),
        );
        let expr = Expr::binary(BinOp::And, eq, other);
        let found = expr.equality_param_fields();
        prop_assert!(found.contains(&(field.to_string(), "p".to_string())));

        // A record whose `field` differs from the binding can never match.
        let params = ParamBindings::from_pairs([("p", DataValue::Int(k))]);
        let record = DataValue::object([
            ("a", DataValue::Int(k + 1)),
            ("b", DataValue::Int(k + 1)),
            ("c", DataValue::Int(0)),
            ("d", DataValue::Int(0)),
        ]);
        let ctx = EvalContext::new(&record, &params);
        prop_assert_eq!(ctx.eval(&expr).unwrap(), DataValue::Bool(false));
    }
}
