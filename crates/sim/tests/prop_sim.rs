//! Property tests of the simulator: conservation laws and ordering
//! invariants that must hold for every configuration and seed.

use bad_cache::PolicyName;
use bad_sim::{SimConfig, Simulation};
use bad_types::{ByteSize, SimDuration};
use proptest::prelude::*;

fn tiny_config(budget_kib: u64, streams: usize, subscribers: u64) -> SimConfig {
    let mut config = SimConfig::smoke();
    config.cache_budget = ByteSize::from_kib(budget_kib);
    config.unique_subscriptions = streams;
    config.subscribers = subscribers;
    config.subscriptions_per_subscriber = 3.min(streams);
    config.duration = SimDuration::from_mins(6);
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: fetched = Vol + misses for caching policies, and
    /// hit/miss bytes never exceed what was produced... (misses can be
    /// re-fetched at most once per pending subscriber, so miss bytes are
    /// bounded by deliveries, not production).
    #[test]
    fn conservation_laws(
        budget_kib in 16u64..2048,
        streams in 3usize..12,
        subscribers in 10u64..60,
        seed in 0u64..1000,
        policy in prop::sample::select(vec![
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
            PolicyName::Exp,
            PolicyName::Ttl,
        ]),
    ) {
        let config = tiny_config(budget_kib, streams, subscribers);
        let report = Simulation::new(policy, config, seed).unwrap().run();

        // Caching policies populate caches with exactly Vol bytes.
        prop_assert_eq!(
            report.fetched_bytes,
            report.vol_bytes + report.miss_bytes,
            "fetch decomposition"
        );
        prop_assert!((0.0..=1.0).contains(&report.hit_ratio));
        // Hit bytes can exceed Vol (shared caches serve many subscribers),
        // but not deliveries times max fanout — sanity: delivered objects
        // bound requested objects.
        prop_assert!(report.delivered_objects >= report.deliveries || report.deliveries == 0);
    }

    /// NC fetches everything it delivers from the cluster and never
    /// caches a byte.
    #[test]
    fn nc_baseline_invariants(
        seed in 0u64..1000,
        subscribers in 10u64..40,
    ) {
        let config = tiny_config(256, 6, subscribers);
        let report = Simulation::new(PolicyName::Nc, config, seed).unwrap().run();
        prop_assert_eq!(report.hit_ratio, 0.0);
        prop_assert_eq!(report.max_cache_bytes, ByteSize::ZERO);
        prop_assert_eq!(report.hit_bytes, ByteSize::ZERO);
        // NC never populates caches, so everything fetched is a miss.
        prop_assert_eq!(report.fetched_bytes, report.miss_bytes);
        prop_assert!(report.miss_bytes > ByteSize::ZERO);
    }

    /// Eviction policies never exceed their budget, under any
    /// configuration or seed.
    #[test]
    fn budget_invariant_holds_everywhere(
        budget_kib in 8u64..512,
        seed in 0u64..1000,
        policy in prop::sample::select(vec![
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
            PolicyName::Exp,
        ]),
    ) {
        let config = tiny_config(budget_kib, 6, 30);
        let report = Simulation::new(policy, config, seed).unwrap().run();
        prop_assert!(
            report.max_cache_bytes <= ByteSize::from_kib(budget_kib),
            "{policy}: {} > {}",
            report.max_cache_bytes,
            ByteSize::from_kib(budget_kib)
        );
    }

    /// Determinism across repeated construction (not just a fixed pair).
    #[test]
    fn determinism(seed in 0u64..500) {
        let config = tiny_config(128, 5, 20);
        let a = Simulation::new(PolicyName::Ttl, config.clone(), seed).unwrap().run();
        let b = Simulation::new(PolicyName::Ttl, config, seed).unwrap().run();
        prop_assert_eq!(a, b);
    }
}
