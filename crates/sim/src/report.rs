//! Per-run measurement reports and figure-series helpers.

use bad_cache::PolicyName;
use bad_telemetry::json::ObjectWriter;
use bad_telemetry::Sample;
use bad_types::{ByteSize, SimDuration};

/// Everything one simulation run measures — the union of the quantities
/// plotted in Figs. 3, 4 and 5.
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// The caching policy.
    pub policy: PolicyName,
    /// The configured budget `B`.
    pub cache_budget: ByteSize,
    /// Seed of the run.
    pub seed: u64,
    /// Fraction of requested objects served from the cache (Fig. 3a).
    pub hit_ratio: f64,
    /// Bytes served from the cache (Fig. 3b).
    pub hit_bytes: ByteSize,
    /// Bytes fetched from the cluster due to misses (Fig. 3c).
    pub miss_bytes: ByteSize,
    /// Total bytes pulled from the cluster: population + misses (Fig. 4a).
    pub fetched_bytes: ByteSize,
    /// Total bytes of results the cluster produced — the `Vol` line of
    /// Fig. 4(a).
    pub vol_bytes: ByteSize,
    /// Mean subscriber latency over non-empty retrievals (Fig. 4b).
    pub mean_latency: SimDuration,
    /// Mean time objects stayed cached before being dropped (Fig. 4c).
    pub mean_holding: SimDuration,
    /// Time-averaged aggregate cache size (Fig. 5a).
    pub avg_cache_bytes: ByteSize,
    /// Maximum aggregate cache size ever reached (Fig. 5a).
    pub max_cache_bytes: ByteSize,
    /// Time-averaged `Σ ρ_i·T_i` (Fig. 5a overlay; TTL/EXP only).
    pub expected_ttl_bytes: ByteSize,
    /// Mean TTL assigned across caches at the end of the run (Fig. 5b).
    pub mean_ttl: SimDuration,
    /// Retrievals served.
    pub deliveries: u64,
    /// Objects delivered.
    pub delivered_objects: u64,
    /// Objects produced by the backend.
    pub produced_objects: u64,
    /// Per-epoch sampler series (occupancy, hit ratio, `Σ ρ_i·T_i`) —
    /// the raw data behind the scalar summaries above.
    pub samples: Vec<Sample>,
    /// Pre-rendered hot-key summary (top-5 subscriptions by requests,
    /// distinct-active estimate, skew) when the run had sketches
    /// enabled (`SimConfig::sketch_sample_every_n > 0`); `None`
    /// otherwise. Deterministic per `(policy, config, seed)` like every
    /// other field.
    pub hot: Option<String>,
}

impl SimReport {
    /// The CSV header matching [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "policy,cache_mb,seed,hit_ratio,hit_mb,miss_mb,fetched_mb,vol_mb,\
         latency_ms,holding_s,avg_cache_mb,max_cache_mb,expected_ttl_mb,\
         mean_ttl_s,deliveries,delivered_objects,produced_objects"
    }

    /// One CSV row of the run's measurements.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{:.2},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.1},{:.1},{:.2},{:.2},{:.2},{:.1},{},{},{}",
            self.policy,
            self.cache_budget.as_mib_f64(),
            self.seed,
            self.hit_ratio,
            self.hit_bytes.as_mib_f64(),
            self.miss_bytes.as_mib_f64(),
            self.fetched_bytes.as_mib_f64(),
            self.vol_bytes.as_mib_f64(),
            self.mean_latency.as_millis_f64(),
            self.mean_holding.as_secs_f64(),
            self.avg_cache_bytes.as_mib_f64(),
            self.max_cache_bytes.as_mib_f64(),
            self.expected_ttl_bytes.as_mib_f64(),
            self.mean_ttl.as_secs_f64(),
            self.deliveries,
            self.delivered_objects,
            self.produced_objects,
        )
    }

    /// Renders the full report — scalars plus the per-epoch sampler
    /// series — as one JSON object.
    pub fn to_json(&self) -> String {
        let mut samples = String::with_capacity(2 + 80 * self.samples.len());
        samples.push('[');
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                samples.push(',');
            }
            let mut obj = ObjectWriter::new(&mut samples);
            obj.field_u64("t_us", s.t_us);
            obj.field_u64("occupancy_bytes", s.occupancy_bytes);
            obj.field_f64("hit_ratio", s.hit_ratio);
            obj.field_f64("expected_ttl_bytes", s.expected_ttl_bytes);
        }
        samples.push(']');

        let mut out = String::with_capacity(512 + samples.len());
        {
            let mut obj = ObjectWriter::new(&mut out);
            obj.field_str("policy", self.policy.as_str());
            obj.field_u64("cache_budget_bytes", self.cache_budget.as_u64());
            obj.field_u64("seed", self.seed);
            obj.field_f64("hit_ratio", self.hit_ratio);
            obj.field_u64("hit_bytes", self.hit_bytes.as_u64());
            obj.field_u64("miss_bytes", self.miss_bytes.as_u64());
            obj.field_u64("fetched_bytes", self.fetched_bytes.as_u64());
            obj.field_u64("vol_bytes", self.vol_bytes.as_u64());
            obj.field_f64("mean_latency_ms", self.mean_latency.as_millis_f64());
            obj.field_f64("mean_holding_s", self.mean_holding.as_secs_f64());
            obj.field_u64("avg_cache_bytes", self.avg_cache_bytes.as_u64());
            obj.field_u64("max_cache_bytes", self.max_cache_bytes.as_u64());
            obj.field_u64("expected_ttl_bytes", self.expected_ttl_bytes.as_u64());
            obj.field_f64("mean_ttl_s", self.mean_ttl.as_secs_f64());
            obj.field_u64("deliveries", self.deliveries);
            obj.field_u64("delivered_objects", self.delivered_objects);
            obj.field_u64("produced_objects", self.produced_objects);
            obj.field_raw("samples", &samples);
            match &self.hot {
                Some(summary) => obj.field_raw("hot", summary),
                None => obj.field_raw("hot", "null"),
            }
        }
        out
    }
}

/// The average of several same-configuration runs (the paper averages
/// ten independent runs per point).
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The policy.
    pub policy: PolicyName,
    /// The budget.
    pub cache_budget: ByteSize,
    /// Per-seed reports.
    pub runs: Vec<SimReport>,
}

impl SweepPoint {
    /// Mean of a metric across runs.
    pub fn mean<F: Fn(&SimReport) -> f64>(&self, f: F) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(&f).sum::<f64>() / self.runs.len() as f64
    }

    /// Mean hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.mean(|r| r.hit_ratio)
    }

    /// Mean subscriber latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.mean(|r| r.mean_latency.as_millis_f64())
    }

    /// Mean of any byte-valued field, in MiB.
    pub fn mib<F: Fn(&SimReport) -> ByteSize>(&self, f: F) -> f64 {
        self.mean(|r| f(r).as_mib_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bad_types::Timestamp;

    fn report(policy: PolicyName, hit: f64) -> SimReport {
        SimReport {
            policy,
            cache_budget: ByteSize::from_mib(50),
            seed: 1,
            hit_ratio: hit,
            hit_bytes: ByteSize::from_mib(10),
            miss_bytes: ByteSize::from_mib(2),
            fetched_bytes: ByteSize::from_mib(12),
            vol_bytes: ByteSize::from_mib(10),
            mean_latency: bad_types::SimDuration::from_millis(400),
            mean_holding: bad_types::SimDuration::from_secs(30),
            avg_cache_bytes: ByteSize::from_mib(45),
            max_cache_bytes: ByteSize::from_mib(50),
            expected_ttl_bytes: ByteSize::ZERO,
            mean_ttl: bad_types::SimDuration::ZERO,
            deliveries: 100,
            delivered_objects: 200,
            produced_objects: 50,
            samples: vec![Sample {
                t_us: 60_000_000,
                occupancy_bytes: 4096,
                hit_ratio: hit,
                expected_ttl_bytes: 0.0,
            }],
            hot: None,
        }
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = report(PolicyName::Lsc, 0.5);
        let header_cols = SimReport::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        let _ = Timestamp::ZERO;
    }

    #[test]
    fn to_json_includes_scalars_and_series() {
        let r = report(PolicyName::Lsc, 0.5);
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""policy":"LSC""#));
        assert!(json.contains(r#""hit_ratio":0.5"#));
        assert!(json.contains(r#""samples":[{"t_us":60000000,"occupancy_bytes":4096"#));
        assert!(json.contains(r#""hot":null"#));
        // No stray NaN/Infinity tokens — everything stays parseable.
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn sweep_point_averages() {
        let point = SweepPoint {
            policy: PolicyName::Ttl,
            cache_budget: ByteSize::from_mib(50),
            runs: vec![report(PolicyName::Ttl, 0.4), report(PolicyName::Ttl, 0.6)],
        };
        assert!((point.hit_ratio() - 0.5).abs() < 1e-12);
        assert!((point.latency_ms() - 400.0).abs() < 1e-9);
        assert!((point.mib(|r| r.hit_bytes) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_sweep_point_is_zero() {
        let point = SweepPoint {
            policy: PolicyName::Lru,
            cache_budget: ByteSize::ZERO,
            runs: Vec::new(),
        };
        assert_eq!(point.hit_ratio(), 0.0);
    }
}
