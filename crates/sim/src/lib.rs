//! Discrete-event simulation of the BAD broker tier (Section V).
//!
//! The paper evaluates its caching policies with "a discrete event
//! simulator ... that mimics the behavior of the broker (manages
//! subscriptions and deliver channel results) as well as the backend
//! data cluster (generates results at different rates for different
//! channels)". This crate is that simulator, with one deliberate
//! difference: rather than *mimicking* the broker, it drives the **real**
//! broker/cache implementation ([`bad_broker`], [`bad_cache`]) under a
//! virtual clock, so the simulated numbers measure the actual code.
//!
//! * [`engine`] — a minimal deterministic event queue,
//! * [`backend`] — a synthetic data cluster producing Poisson result
//!   streams with Table II object sizes, backed by a persistent
//!   [`bad_storage::ResultStore`],
//! * [`config`] — the Table II parameter set,
//! * [`runner`] — the event loop tying subscribers, churn, arrivals and
//!   the broker together, emitting a [`report::SimReport`] per run,
//! * [`report`] — per-run metrics and CSV helpers for the figures.
//!
//! # Examples
//!
//! ```
//! use bad_cache::PolicyName;
//! use bad_sim::{SimConfig, Simulation};
//!
//! // A deliberately tiny run (the full Table II setup takes minutes).
//! let config = SimConfig::smoke();
//! let report = Simulation::new(PolicyName::Lsc, config, 42)?.run();
//! assert!(report.hit_ratio >= 0.0 && report.hit_ratio <= 1.0);
//! # Ok::<(), bad_types::BadError>(())
//! ```

pub mod backend;
pub mod config;
pub mod engine;
pub mod report;
pub mod runner;

pub use backend::SimBackend;
pub use config::SimConfig;
pub use engine::EventQueue;
pub use report::{SimReport, SweepPoint};
pub use runner::Simulation;
