//! A minimal deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bad_types::Timestamp;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in scheduling order, which
/// keeps runs deterministic for a fixed seed.
///
/// # Examples
///
/// ```
/// use bad_sim::EventQueue;
/// use bad_types::Timestamp;
///
/// let mut q = EventQueue::new();
/// q.push(Timestamp::from_secs(5), "later");
/// q.push(Timestamp::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "sooner")));
/// assert_eq!(q.now(), Timestamp::from_secs(1));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Timestamp,
}

#[derive(Debug)]
struct Entry<E> {
    at: Timestamp,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Timestamp::ZERO,
        }
    }

    /// The current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at `at`. Events scheduled in the past are
    /// clamped to the current time (they fire next).
    pub fn push(&mut self, at: Timestamp, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3), 'c');
        q.push(t(1), 'a');
        q.push(t(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(t(7), ());
        assert_eq!(q.now(), Timestamp::ZERO);
        q.pop();
        assert_eq!(q.now(), t(7));
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut q = EventQueue::new();
        q.push(t(10), "first");
        q.pop();
        q.push(t(3), "late"); // would be in the past
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(10));
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(1), ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
