//! Simulation settings (the paper's Table II).

use bad_cache::CacheConfig;
use bad_net::NetworkModel;
use bad_types::{ByteSize, SimDuration};
use bad_workload::LognormalSpec;

/// The full parameter set of a simulation run.
///
/// [`SimConfig::table_ii`] reproduces the paper's settings; most
/// experiments use a uniformly scaled-down variant so a sweep over six
/// policies × several cache sizes × multiple seeds stays tractable —
/// exactly as the authors "scaled everything down ... so that the
/// experiments can be conducted within a bounded time".
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of subscribers (Table II: 10 000).
    pub subscribers: u64,
    /// Subscriptions per subscriber (Table II: 10).
    pub subscriptions_per_subscriber: usize,
    /// Number of unique (backend) subscriptions / result streams
    /// (Table II: 1000).
    pub unique_subscriptions: usize,
    /// Zipf exponent of subscription popularity.
    pub zipf_exponent: f64,
    /// Result object size range, sampled uniformly
    /// (Table II: 1 KB – 500 KB).
    pub object_size: (ByteSize, ByteSize),
    /// Allowed aggregate cache size `B` (Table II: 50 – 500 MB swept).
    pub cache_budget: ByteSize,
    /// Per-stream mean inter-arrival time range; each stream draws its
    /// Poisson rate uniformly from this range
    /// (Table II: one object per 10 – 60 s).
    pub arrival_interval_secs: (f64, f64),
    /// ON (session) duration distribution (mean 20 min).
    pub on_duration: LognormalSpec,
    /// OFF (absence) duration distribution (mean 30 min).
    pub off_duration: LognormalSpec,
    /// Subscribers join uniformly over this initial window.
    pub join_window: SimDuration,
    /// Simulated run length (Table II: 6 h).
    pub duration: SimDuration,
    /// Cache maintenance (TTL expiry check) tick.
    pub maintain_interval: SimDuration,
    /// How often `Σ ρ_i·T_i` is sampled for Fig. 5(a).
    pub sample_interval: SimDuration,
    /// The network constants (Table II RTTs and bandwidths).
    pub net: NetworkModel,
    /// Cache-manager knobs other than the budget.
    pub cache: CacheConfig,
    /// Optional size-based admission control: objects larger than
    /// `num/den` of the budget are not cached (extension experiment;
    /// `None` reproduces the paper).
    pub admission_max_budget_fraction: Option<(u64, u64)>,
    /// Optional subscription churn (Table II's "Subscription duration"):
    /// each frontend subscription lives this long, then moves to a fresh
    /// Zipf-sampled stream. `None` keeps subscriptions for the whole run.
    pub subscription_lifetime: Option<LognormalSpec>,
    /// Number of lock-striped cache shards in each broker. The
    /// deterministic engine is single-threaded, so `1` (exact paper
    /// reproduction — the sharded manager is then byte-for-byte
    /// identical to the monolith) is the only setting that makes sense
    /// here; the knob exists so sweep configs can be shared with the
    /// threaded prototype.
    pub shards: usize,
    /// Shadow-policy ghost caches (`bad_cache::shadow`): evaluate every
    /// catalog policy counterfactually on each `n`-th sampled access.
    /// `0` (the default) disables shadow evaluation; `1` shadows every
    /// access (full parity with the live cache's counters).
    pub shadow_sample_every_n: u32,
    /// Adaptive policy autopilot (`bad_cache::autopilot`): when `true`,
    /// each maintenance tick is one controller evaluation window and
    /// the starting policy is only the *initial* one — the broker may
    /// promote whichever ghost persistently wins. Implies shadow
    /// evaluation (a default `ShadowConfig` when
    /// `shadow_sample_every_n` is `0`). `false` (the default) keeps
    /// the configured policy fixed, as the paper does.
    pub autopilot: bool,
    /// Continuous hot-path profiler (`bad_telemetry::profile`): `0`
    /// (the default) disables profiling, `n` samples every `n`-th
    /// operation's stage breakdown (`1` = every op; lock sites are
    /// registered either way when non-zero). Profiling is
    /// metadata-only — the simulated caching decisions and the report
    /// are byte-identical with it on or off.
    pub profile: u32,
    /// Hot-key attribution sketches (`bad_telemetry::sketch`): `0` (the
    /// default) disables them, `n` samples every `n`-th cache operation
    /// into the per-shard Space-Saving / distinct-count / lag-quantile
    /// sketches (`1` = every op). Like profiling, sketches are
    /// metadata-only: the simulated caching decisions and every other
    /// report field are byte-identical with them on or off; the report
    /// gains a `hot` top-K summary when enabled.
    pub sketch_sample_every_n: u32,
}

impl SimConfig {
    /// The verbatim Table II configuration (10 000 subscribers, 1000
    /// unique subscriptions, 6 h). A single run at this scale processes
    /// tens of millions of events — use `--release`.
    pub fn table_ii() -> Self {
        Self {
            subscribers: 10_000,
            subscriptions_per_subscriber: 10,
            unique_subscriptions: 1000,
            zipf_exponent: 1.0,
            object_size: (ByteSize::from_kib(1), ByteSize::from_kib(500)),
            cache_budget: ByteSize::from_mib(100),
            arrival_interval_secs: (10.0, 60.0),
            on_duration: LognormalSpec::new(20.0 * 60.0, 10.0 * 60.0),
            off_duration: LognormalSpec::new(30.0 * 60.0, 15.0 * 60.0),
            join_window: SimDuration::from_mins(30),
            duration: SimDuration::from_hours(6),
            maintain_interval: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_secs(60),
            net: NetworkModel::paper_defaults(),
            cache: CacheConfig::default(),
            admission_max_budget_fraction: None,
            subscription_lifetime: None,
            shards: 1,
            shadow_sample_every_n: 0,
            autopilot: false,
            profile: 0,
            sketch_sample_every_n: 0,
        }
    }

    /// A proportionally scaled-down Table II: `1/scale` of the
    /// subscribers, streams and duration, with the cache budget scaled
    /// the same way so hit-ratio behaviour is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn table_ii_scaled(scale: u64) -> Self {
        assert!(scale > 0, "scale must be positive");
        let base = Self::table_ii();
        Self {
            subscribers: (base.subscribers / scale).max(10),
            unique_subscriptions: ((base.unique_subscriptions as u64 / scale) as usize).max(5),
            cache_budget: ByteSize::new(base.cache_budget.as_u64() / scale),
            duration: base.duration / scale.min(6),
            join_window: base.join_window / scale.min(6),
            ..base
        }
    }

    /// A tiny configuration for unit tests and doc examples (runs in
    /// milliseconds).
    pub fn smoke() -> Self {
        Self {
            subscribers: 30,
            subscriptions_per_subscriber: 3,
            unique_subscriptions: 10,
            zipf_exponent: 1.0,
            object_size: (ByteSize::from_kib(1), ByteSize::from_kib(50)),
            cache_budget: ByteSize::from_kib(200),
            arrival_interval_secs: (5.0, 20.0),
            on_duration: LognormalSpec::new(120.0, 60.0),
            off_duration: LognormalSpec::new(180.0, 90.0),
            join_window: SimDuration::from_secs(30),
            duration: SimDuration::from_mins(10),
            maintain_interval: SimDuration::from_secs(1),
            sample_interval: SimDuration::from_secs(10),
            net: NetworkModel::paper_defaults(),
            cache: CacheConfig::default(),
            admission_max_budget_fraction: None,
            subscription_lifetime: None,
            shards: 1,
            shadow_sample_every_n: 0,
            autopilot: false,
            profile: 0,
            sketch_sample_every_n: 0,
        }
    }

    /// Returns a copy with a different cache budget (sweep helper).
    pub fn with_budget(&self, budget: ByteSize) -> Self {
        Self {
            cache_budget: budget,
            ..self.clone()
        }
    }

    /// The rows of Table II as `(setting, value)` strings, for the
    /// `table2` experiment binary.
    pub fn describe(&self) -> Vec<(String, String)> {
        vec![
            ("No of subscribers".into(), self.subscribers.to_string()),
            (
                "Subscription per subscriber".into(),
                self.subscriptions_per_subscriber.to_string(),
            ),
            (
                "No of unique subscriptions".into(),
                self.unique_subscriptions.to_string(),
            ),
            (
                "Result object size".into(),
                format!("Uniform({}, {})", self.object_size.0, self.object_size.1),
            ),
            ("Allowed cache size".into(), self.cache_budget.to_string()),
            (
                "Result object arrival".into(),
                format!(
                    "Poisson, rate 1 per {:.0}-{:.0}s",
                    self.arrival_interval_secs.0, self.arrival_interval_secs.1
                ),
            ),
            (
                "Subscriber ON duration".into(),
                format!(
                    "Lognormal(mean {:.0}s, std {:.0}s)",
                    self.on_duration.mean_secs, self.on_duration.std_secs
                ),
            ),
            (
                "Subscriber OFF duration".into(),
                format!(
                    "Lognormal(mean {:.0}s, std {:.0}s)",
                    self.off_duration.mean_secs, self.off_duration.std_secs
                ),
            ),
            (
                "Broker to data cluster bandwidth".into(),
                format!("{}", self.net.cluster.bandwidth),
            ),
            (
                "Broker to subscriber bandwidth".into(),
                format!("{}", self.net.subscriber.bandwidth),
            ),
            (
                "RTT (broker to data cluster)".into(),
                format!("{}", self.net.cluster.rtt),
            ),
            (
                "RTT (broker to subscribers)".into(),
                format!("{}", self.net.subscriber.rtt),
            ),
            ("Run length".into(), format!("{}", self.duration)),
        ]
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        // A balanced default: Table II scaled down 10x.
        Self::table_ii_scaled(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_matches_paper() {
        let c = SimConfig::table_ii();
        assert_eq!(c.subscribers, 10_000);
        assert_eq!(c.subscriptions_per_subscriber, 10);
        assert_eq!(c.unique_subscriptions, 1000);
        assert_eq!(c.object_size.1, ByteSize::from_kib(500));
        assert_eq!(c.duration, SimDuration::from_hours(6));
        assert_eq!(c.net.cluster.rtt, SimDuration::from_millis(500));
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = SimConfig::table_ii_scaled(10);
        assert_eq!(c.subscribers, 1000);
        assert_eq!(c.unique_subscriptions, 100);
        // Per-subscriber structure unchanged.
        assert_eq!(c.subscriptions_per_subscriber, 10);
    }

    #[test]
    fn describe_covers_table_rows() {
        let rows = SimConfig::table_ii().describe();
        assert!(rows.len() >= 12);
        assert!(rows
            .iter()
            .any(|(k, v)| k.contains("subscribers") && v == "10000"));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        SimConfig::table_ii_scaled(0);
    }
}
