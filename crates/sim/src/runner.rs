//! The simulation event loop.
//!
//! One [`Simulation`] wires the real [`Broker`] to the synthetic
//! [`SimBackend`] and drives them with the Table II workload: Zipf
//! subscription popularity, lognormal ON/OFF churn and Poisson result
//! arrivals. Every run is fully determined by `(policy, config, seed)`.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp};

use bad_broker::{Broker, BrokerConfig};
use bad_cache::{PolicyKind, PolicyName};
use bad_query::ParamBindings;
use bad_telemetry::{Registry, Sample, Sampler, SharedSink};
use bad_types::{
    BackendSubId, ByteSize, FrontendSubId, Result, SimDuration, SubscriberId, Timestamp,
};
use bad_workload::{OnOffProcess, ZipfPopularity};

use crate::backend::SimBackend;
use crate::config::SimConfig;
use crate::engine::EventQueue;
use crate::report::SimReport;

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Subscriber joins the system (logs in for the first time and
    /// makes its subscriptions).
    Join(u32),
    /// Subscriber comes back online.
    ToggleOn(u32),
    /// Subscriber goes offline.
    ToggleOff(u32),
    /// A result stream produces its next object.
    Arrival(u32),
    /// A notified subscriber retrieves from one subscription.
    Retrieve { sub: u32, fs: FrontendSubId },
    /// Periodic cache maintenance (TTL recompute + expiry).
    Maintain,
    /// Periodic `Σ ρ_i·T_i` sampling for Fig. 5(a).
    Sample,
    /// A frontend subscription's lifetime ended: move it to a fresh
    /// Zipf-sampled stream (subscription churn).
    Resubscribe { sub: u32, fs: FrontendSubId },
}

struct SubscriberState {
    online: bool,
    joined: bool,
    churn: OnOffProcess,
    streams: Vec<usize>,
}

struct StreamState {
    /// Poisson inter-arrival sampler (fixed per-stream rate).
    interarrival: Exp<f64>,
    /// Whether the arrival process has been started.
    active: bool,
}

/// One configured simulation run. See the [crate-level example](crate).
pub struct Simulation {
    policy: PolicyName,
    config: SimConfig,
    seed: u64,
    broker: Broker,
    backend: SimBackend,
    queue: EventQueue<Event>,
    rng: StdRng,
    subscribers: Vec<SubscriberState>,
    streams: Vec<StreamState>,
    /// `(subscriber, backend sub) -> frontend sub` for notification fan-out.
    frontends: HashMap<(u32, BackendSubId), FrontendSubId>,
    /// Periodic occupancy / hit-ratio / `Σ ρ_i·T_i` snapshots.
    sampler: Sampler,
    /// Event sink for epoch samples (null unless telemetry is attached).
    sink: SharedSink,
    /// Popularity sampler, retained for subscription churn.
    popularity: ZipfPopularity,
    /// Subscription lifetime sampler (churn), when enabled.
    subscription_lifetime: Option<rand_distr::LogNormal<f64>>,
    /// Continuous health engine (timeseries ring, burn-rate alerts,
    /// model-drift scoring), when attached. Ticked on sampler epochs.
    health: Option<std::sync::Arc<bad_telemetry::HealthEngine>>,
}

impl Simulation {
    /// Builds a simulation from a policy, a configuration and a seed.
    ///
    /// # Errors
    ///
    /// Propagates invalid workload parameters (Zipf exponent, lognormal
    /// specs, arrival intervals).
    pub fn new(policy: PolicyName, config: SimConfig, seed: u64) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut popularity = ZipfPopularity::new(
            config.unique_subscriptions,
            config.zipf_exponent,
            seed ^ 0x21f,
        )?;

        let mut subscribers = Vec::with_capacity(config.subscribers as usize);
        for k in 0..config.subscribers {
            let streams = popularity.sample_distinct(
                config
                    .subscriptions_per_subscriber
                    .min(config.unique_subscriptions),
            );
            subscribers.push(SubscriberState {
                online: false,
                joined: false,
                churn: OnOffProcess::new(config.on_duration, config.off_duration, seed ^ (k + 1))?,
                streams,
            });
        }

        let mut streams = Vec::with_capacity(config.unique_subscriptions);
        for _ in 0..config.unique_subscriptions {
            let mean =
                rng.random_range(config.arrival_interval_secs.0..=config.arrival_interval_secs.1);
            let interarrival = Exp::new(1.0 / mean)
                .map_err(|e| bad_types::BadError::InvalidArgument(format!("exp: {e}")))?;
            streams.push(StreamState {
                interarrival,
                active: false,
            });
        }

        let mut cache = config.cache;
        cache.budget = config.cache_budget;
        let shadow = match config.shadow_sample_every_n {
            0 => None,
            n => Some(bad_cache::ShadowConfig {
                sample_every_n: n,
                ..bad_cache::ShadowConfig::default()
            }),
        };
        let autopilot = config.autopilot.then(bad_cache::AutopilotConfig::default);
        let sketches = match config.sketch_sample_every_n {
            0 => None,
            n => Some(bad_telemetry::SketchConfig {
                sample_every_n: n,
                ..bad_telemetry::SketchConfig::default()
            }),
        };
        let mut broker = Broker::new(
            policy,
            BrokerConfig {
                cache,
                net: config.net,
                shards: config.shards,
                shadow,
                autopilot,
                sketches,
                ..BrokerConfig::default()
            },
        );
        if let Some((num, den)) = config.admission_max_budget_fraction {
            broker.set_admission(bad_cache::AdmissionControl::all_of([
                bad_cache::AdmissionRule::MaxBudgetFraction { num, den },
            ]));
        }

        let subscription_lifetime = match &config.subscription_lifetime {
            Some(spec) => Some(spec.build()?),
            None => None,
        };
        let sampler = Sampler::new(config.sample_interval.as_micros());
        Ok(Self {
            policy,
            config,
            seed,
            broker,
            backend: SimBackend::new(),
            queue: EventQueue::new(),
            rng,
            subscribers,
            streams,
            frontends: HashMap::new(),
            sampler,
            sink: bad_telemetry::null_sink(),
            popularity,
            subscription_lifetime,
            health: None,
        })
    }

    /// A shared handle to the broker's cache tier. Lets callers read
    /// shadow-policy snapshots ([`bad_cache::ShadowSnapshot`]) after
    /// [`Simulation::run`] consumed the simulation itself.
    pub fn cache_handle(&self) -> std::sync::Arc<bad_cache::ShardedCacheManager> {
        self.broker.cache_handle()
    }

    /// Routes the run's telemetry — cache and broker metric families on
    /// `registry`, plus the full event stream (including per-epoch
    /// `sim.epoch_sample` snapshots) into `sink`.
    pub fn attach_telemetry(&mut self, registry: &Registry, sink: SharedSink) {
        self.attach_telemetry_traced(registry, sink, bad_telemetry::Tracer::disabled());
    }

    /// Like [`SimRunner::attach_telemetry`], but also threads a
    /// lifecycle tracer through the synthetic backend (virtual-time
    /// `result_produced` root spans), the broker and the cache tier,
    /// so a run's notification lifecycles are reconstructable by
    /// `TraceId`.
    pub fn attach_telemetry_traced(
        &mut self,
        registry: &Registry,
        sink: SharedSink,
        tracer: bad_telemetry::SharedTracer,
    ) {
        self.backend.set_tracer(std::sync::Arc::clone(&tracer));
        // The profiler knob rides the telemetry attachment: stage
        // samples and lock-site series land on the same registry as
        // the metric families (`bad_profile_*`).
        let profiler = match self.config.profile {
            0 => bad_telemetry::Profiler::disabled(),
            n => bad_telemetry::Profiler::new(
                registry,
                bad_telemetry::ProfileConfig { sample_every_n: n },
            ),
        };
        self.broker
            .attach_telemetry_profiled(registry, sink.clone(), tracer, profiler);
        self.sink = sink;
    }

    /// Attaches a continuous health engine: on each sampler epoch where
    /// the engine's window has closed, the run snapshots the registry
    /// into the time-series ring, evaluates burn-rate alerts, and
    /// scores the eq. 5–7 prediction (built from live per-subscription
    /// λ̂/η̂/ρ̂/TTL measurements) against the observed hit ratio and
    /// occupancy. Build the engine over the same [`Registry`] passed to
    /// [`Simulation::attach_telemetry`].
    pub fn attach_health(&mut self, health: std::sync::Arc<bad_telemetry::HealthEngine>) {
        self.health = Some(health);
    }

    /// Runs the simulation to completion and reports the measurements.
    pub fn run(mut self) -> SimReport {
        let end = Timestamp::ZERO + self.config.duration;

        // Initial events: staggered joins, maintenance and sampling.
        for k in 0..self.subscribers.len() as u32 {
            let join_at = Timestamp::ZERO
                + SimDuration::from_secs_f64(
                    self.rng
                        .random_range(0.0..=self.config.join_window.as_secs_f64().max(1.0)),
                );
            self.queue.push(join_at, Event::Join(k));
        }
        self.queue.push(
            Timestamp::ZERO + self.config.maintain_interval,
            Event::Maintain,
        );
        self.queue
            .push(Timestamp::ZERO + self.config.sample_interval, Event::Sample);

        while let Some((now, event)) = self.queue.pop() {
            if now >= end {
                break;
            }
            self.handle(event, now);
        }
        self.finish(end)
    }

    fn handle(&mut self, event: Event, now: Timestamp) {
        match event {
            Event::Join(k) => self.on_join(k, now),
            Event::ToggleOn(k) => self.on_toggle_on(k, now),
            Event::ToggleOff(k) => self.on_toggle_off(k, now),
            Event::Arrival(s) => self.on_arrival(s, now),
            Event::Retrieve { sub, fs } => self.on_retrieve(sub, fs, now),
            Event::Maintain => {
                self.broker.maintain(now);
                self.queue
                    .push(now + self.config.maintain_interval, Event::Maintain);
            }
            Event::Sample => {
                self.on_sample(now);
                self.queue
                    .push(now + self.config.sample_interval, Event::Sample);
            }
            Event::Resubscribe { sub, fs } => self.on_resubscribe(sub, fs, now),
        }
    }

    fn on_join(&mut self, k: u32, now: Timestamp) {
        // Index loop instead of cloning the stream list:
        // subscribe_to_stream needs `&mut self`, so a borrow of the
        // list can't be held across the calls.
        for i in 0..self.subscribers[k as usize].streams.len() {
            let s = self.subscribers[k as usize].streams[i];
            self.subscribe_to_stream(k, s, now);
        }
        let state = &mut self.subscribers[k as usize];
        state.joined = true;
        state.online = true;
        let on = state.churn.next_on_duration();
        self.queue.push(now + on, Event::ToggleOff(k));
    }

    /// Subscribes `k` to stream `s`, activating the stream's arrival
    /// process if needed and scheduling subscription churn when enabled.
    fn subscribe_to_stream(&mut self, k: u32, s: usize, now: Timestamp) {
        let channel = SimBackend::stream_channel(s);
        let fs = self
            .broker
            .subscribe(
                &mut self.backend,
                SubscriberId::new(k as u64),
                &channel,
                ParamBindings::new(),
                now,
            )
            .expect("synthetic subscribe cannot fail");
        let bs = self.backend.subscription_of(s).expect("just subscribed");
        self.frontends.insert((k, bs), fs);
        if !self.streams[s].active {
            self.streams[s].active = true;
            let delay = self.next_interarrival(s);
            self.queue.push(now + delay, Event::Arrival(s as u32));
        }
        if let Some(lifetime) = &self.subscription_lifetime {
            let secs = lifetime.sample(&mut self.rng).max(1.0);
            self.queue.push(
                now + SimDuration::from_secs_f64(secs),
                Event::Resubscribe { sub: k, fs },
            );
        }
    }

    /// Subscription churn: drop `fs` and subscribe to a fresh
    /// Zipf-sampled stream.
    fn on_resubscribe(&mut self, k: u32, fs: FrontendSubId, now: Timestamp) {
        let Some(frontend) = self.broker.subscriptions().frontend(fs) else {
            return; // already gone
        };
        let bs = frontend.backend;
        let subscriber = SubscriberId::new(k as u64);
        if self
            .broker
            .unsubscribe(&mut self.backend, subscriber, fs, now)
            .is_err()
        {
            return;
        }
        self.frontends.remove(&(k, bs));
        let new_stream = self.popularity.sample();
        // Track it so ToggleOn catch-ups keep working.
        self.subscribers[k as usize].streams.push(new_stream);
        self.subscribe_to_stream(k, new_stream, now);
    }

    fn on_toggle_on(&mut self, k: u32, now: Timestamp) {
        let state = &mut self.subscribers[k as usize];
        state.online = true;
        let on = state.churn.next_on_duration();
        self.queue.push(now + on, Event::ToggleOff(k));
        // Catch up on everything missed while offline.
        let _ = self
            .broker
            .get_all_pending(&mut self.backend, SubscriberId::new(k as u64), now);
    }

    fn on_toggle_off(&mut self, k: u32, now: Timestamp) {
        let state = &mut self.subscribers[k as usize];
        state.online = false;
        let off = state.churn.next_off_duration();
        self.queue.push(now + off, Event::ToggleOn(k));
    }

    fn on_arrival(&mut self, s: u32, now: Timestamp) {
        let stream = s as usize;
        let Some(bs) = self.backend.subscription_of(stream) else {
            self.streams[stream].active = false;
            return;
        };
        let size =
            ByteSize::new(self.rng.random_range(
                self.config.object_size.0.as_u64()..=self.config.object_size.1.as_u64(),
            ));
        let notification = self.backend.produce(bs, now, size);
        let outcome = self
            .broker
            .on_notification(&mut self.backend, notification, now);
        let notify_at = now + self.config.net.notify_latency();
        for subscriber in outcome.notify {
            let k = subscriber.as_u64() as u32;
            if self.subscribers[k as usize].online {
                if let Some(&fs) = self.frontends.get(&(k, bs)) {
                    self.queue.push(notify_at, Event::Retrieve { sub: k, fs });
                }
            }
        }
        let delay = self.next_interarrival(stream);
        self.queue.push(now + delay, Event::Arrival(s));
    }

    fn on_retrieve(&mut self, sub: u32, fs: FrontendSubId, now: Timestamp) {
        if !self.subscribers[sub as usize].online {
            return;
        }
        if !self.broker.has_pending(fs) {
            return; // already served by a batched earlier retrieval
        }
        let _ = self
            .broker
            .get_results(&mut self.backend, SubscriberId::new(sub as u64), fs, now);
    }

    /// One sampler epoch: snapshot occupancy, the cumulative hit ratio
    /// and (for policies that measure it) `Σ ρ_i·T_i`.
    fn on_sample(&mut self, now: Timestamp) {
        let cache = self.broker.cache();
        let expected_ttl_bytes =
            if matches!(cache.kind(), PolicyKind::TtlExpiry | PolicyKind::Eviction) {
                cache.expected_ttl_size(now).as_u64() as f64
            } else {
                0.0
            };
        let sample = Sample {
            t_us: now.as_micros(),
            occupancy_bytes: cache.total_bytes().as_u64(),
            hit_ratio: cache.metrics().hit_ratio().unwrap_or(0.0),
            expected_ttl_bytes,
        };
        if self.sink.enabled() {
            self.sink.record(&bad_telemetry::Event::EpochSample {
                t_us: sample.t_us,
                broker: 0,
                occupancy_bytes: sample.occupancy_bytes,
                hit_ratio: sample.hit_ratio,
                expected_ttl_bytes: sample.expected_ttl_bytes,
            });
        }
        self.sampler.record(sample);
        if let Some(engine) = &self.health {
            if engine.due(sample.t_us) {
                let model = bad_telemetry::drift::predict(&cache.model_inputs(now));
                engine.tick(
                    sample.t_us,
                    bad_telemetry::HealthObservation {
                        occupancy_bytes: sample.occupancy_bytes,
                        budget_bytes: cache.budget().as_u64(),
                        model: Some(model),
                        hot_skew: cache.hot_snapshot().map(|snapshot| snapshot.skew()),
                    },
                );
            }
        }
    }

    fn next_interarrival(&mut self, stream: usize) -> SimDuration {
        let secs = self.streams[stream]
            .interarrival
            .sample(&mut self.rng)
            .max(0.001);
        SimDuration::from_secs_f64(secs)
    }

    fn finish(self, end: Timestamp) -> SimReport {
        let cache = self.broker.cache();
        let metrics = cache.metrics();
        let delivery = self.broker.delivery_metrics();
        let (mut ttl_sum, mut ttl_count) = (0.0f64, 0usize);
        cache.for_each_cache(|c| {
            ttl_sum += c.ttl().as_secs_f64();
            ttl_count += 1;
        });
        let mean_ttl = if ttl_count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(ttl_sum / ttl_count as f64)
        };
        let expected_ttl_bytes = ByteSize::new(self.sampler.mean_expected_ttl_bytes() as u64);
        SimReport {
            policy: self.policy,
            cache_budget: self.config.cache_budget,
            seed: self.seed,
            hit_ratio: metrics.hit_ratio().unwrap_or(0.0),
            hit_bytes: metrics.hit_bytes,
            miss_bytes: metrics.miss_bytes,
            fetched_bytes: metrics.fetched_bytes(),
            vol_bytes: self.backend.volume(),
            mean_latency: delivery.mean_latency().unwrap_or(SimDuration::ZERO),
            mean_holding: metrics.mean_holding_time().unwrap_or(SimDuration::ZERO),
            avg_cache_bytes: metrics.time_averaged_bytes(end),
            max_cache_bytes: metrics.max_bytes,
            expected_ttl_bytes,
            mean_ttl,
            deliveries: delivery.deliveries,
            delivered_objects: delivery.delivered_objects,
            produced_objects: self.backend.produced_objects(),
            samples: self.sampler.into_samples(),
            hot: cache
                .hot_snapshot()
                .map(|snapshot| snapshot.summary_json(5)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(policy: PolicyName, budget_kib: u64, seed: u64) -> SimReport {
        let config = SimConfig::smoke().with_budget(ByteSize::from_kib(budget_kib));
        Simulation::new(policy, config, seed).unwrap().run()
    }

    #[test]
    fn smoke_run_produces_sane_metrics() {
        let report = run(PolicyName::Lsc, 200, 1);
        assert!(report.produced_objects > 0);
        assert!(report.deliveries > 0);
        assert!((0.0..=1.0).contains(&report.hit_ratio));
        assert!(report.fetched_bytes >= report.miss_bytes);
        assert!(report.mean_latency > SimDuration::ZERO);
        // The sampler series covers the run at the configured interval.
        assert!(!report.samples.is_empty());
        assert!(report.samples.windows(2).all(|w| w[0].t_us < w[1].t_us));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(PolicyName::Ttl, 200, 7);
        let b = run(PolicyName::Ttl, 200, 7);
        assert_eq!(a, b);
        let c = run(PolicyName::Ttl, 200, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn eviction_policies_respect_budget_in_sim() {
        for policy in [
            PolicyName::Lru,
            PolicyName::Lsc,
            PolicyName::Lscz,
            PolicyName::Lsd,
        ] {
            let report = run(policy, 100, 3);
            assert!(
                report.max_cache_bytes <= ByteSize::from_kib(100),
                "{policy}: max {} > budget",
                report.max_cache_bytes
            );
        }
    }

    #[test]
    fn nc_never_hits_and_never_caches() {
        let report = run(PolicyName::Nc, 200, 4);
        assert_eq!(report.hit_ratio, 0.0);
        assert_eq!(report.max_cache_bytes, ByteSize::ZERO);
        assert!(report.miss_bytes > ByteSize::ZERO);
        assert!(report.delivered_objects > 0);
    }

    #[test]
    fn bigger_cache_does_not_hurt_hit_ratio() {
        let small = run(PolicyName::Lsc, 50, 5);
        let large = run(PolicyName::Lsc, 5000, 5);
        assert!(
            large.hit_ratio >= small.hit_ratio - 0.02,
            "small {} vs large {}",
            small.hit_ratio,
            large.hit_ratio
        );
    }

    #[test]
    fn caching_beats_no_cache_on_latency() {
        let cached = run(PolicyName::Lsc, 2000, 6);
        let nc = run(PolicyName::Nc, 2000, 6);
        assert!(
            cached.mean_latency < nc.mean_latency,
            "cached {} !< nc {}",
            cached.mean_latency,
            nc.mean_latency
        );
        assert!(cached.fetched_bytes < nc.fetched_bytes);
    }

    #[test]
    fn subscription_churn_keeps_the_system_consistent() {
        // Table II lists a per-subscription lifetime; with churn enabled
        // subscribers keep moving between streams and everything still
        // delivers, deterministically.
        let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        config.subscription_lifetime = Some(bad_workload::LognormalSpec::new(60.0, 30.0));
        let a = Simulation::new(PolicyName::Lsc, config.clone(), 11)
            .unwrap()
            .run();
        let b = Simulation::new(PolicyName::Lsc, config.clone(), 11)
            .unwrap()
            .run();
        assert_eq!(a, b, "churny runs stay deterministic");
        assert!(a.delivered_objects > 0);
        assert!((0.0..=1.0).contains(&a.hit_ratio));
        // Churn should not break the fetch decomposition.
        assert_eq!(a.fetched_bytes, a.vol_bytes + a.miss_bytes);
        // And the workload really differs from the no-churn baseline.
        config.subscription_lifetime = None;
        let still = Simulation::new(PolicyName::Lsc, config, 11).unwrap().run();
        assert_ne!(a.deliveries, still.deliveries);
    }

    #[test]
    fn ttl_policy_tracks_expected_size() {
        let report = run(PolicyName::Ttl, 200, 9);
        // TTL caches measure Σρ_i·T_i and assign finite TTLs.
        assert!(report.expected_ttl_bytes > ByteSize::ZERO);
        assert!(report.mean_ttl > SimDuration::ZERO);
        assert!(report.mean_holding > SimDuration::ZERO);
        // The per-epoch series backs the scalar: its mean is the report value.
        assert!(report.samples.iter().any(|s| s.expected_ttl_bytes > 0.0));
    }

    #[test]
    fn shadow_ghost_of_live_policy_matches_live_cache_exactly() {
        // Acceptance: with full sampling (n = 1) the ghost running the
        // live policy replays the identical access stream, so its
        // hit/miss counters are byte-identical to the real cache's and
        // both regret directions are exactly 0 — for 1 and 4 shards.
        for (policy, shards) in [
            (PolicyName::Lru, 1),
            (PolicyName::Lru, 4),
            (PolicyName::Lsc, 1),
            (PolicyName::Lsc, 4),
            (PolicyName::Ttl, 1),
        ] {
            let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
            config.shards = shards;
            config.shadow_sample_every_n = 1;
            let sim = Simulation::new(policy, config, 21).unwrap();
            let cache = sim.cache_handle();
            let _report = sim.run();

            let live = cache.metrics();
            let snapshot = cache.shadow_snapshot().expect("shadow enabled");
            let ghost = snapshot.ghost(policy).expect("ghost of live policy");
            assert_eq!(
                ghost.counters.hit_objects, live.hit_objects,
                "{policy}/{shards}: ghost hit objects"
            );
            assert_eq!(
                ghost.counters.hit_bytes,
                live.hit_bytes.as_u64(),
                "{policy}/{shards}: ghost hit bytes"
            );
            assert_eq!(
                ghost.counters.miss_objects, live.miss_objects,
                "{policy}/{shards}: ghost miss objects"
            );
            assert_eq!(
                ghost.counters.miss_bytes,
                live.miss_bytes.as_u64(),
                "{policy}/{shards}: ghost miss bytes"
            );
            assert_eq!(
                ghost.counters.regret_live_hit_ghost_miss, 0,
                "{policy}/{shards}: live-hit/ghost-miss regret"
            );
            assert_eq!(
                ghost.counters.regret_ghost_hit_live_miss, 0,
                "{policy}/{shards}: ghost-hit/live-miss regret"
            );
        }
    }

    #[test]
    fn autopilot_sim_runs_are_deterministic_and_report_status() {
        // Acceptance: the autopilot wiring is live end-to-end in the
        // simulator (status present, windows advancing with maintenance
        // ticks) and fully deterministic across identical runs.
        let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        config.autopilot = true;
        let sim = Simulation::new(PolicyName::Lru, config.clone(), 5).unwrap();
        let cache = sim.cache_handle();
        let a = sim.run();
        let status = cache.autopilot_status().expect("autopilot enabled");
        assert!(status.windows > 0, "maintenance ticks drive windows");
        assert_eq!(status.active, cache.policy_name());

        let sim_b = Simulation::new(PolicyName::Lru, config, 5).unwrap();
        let cache_b = sim_b.cache_handle();
        let b = sim_b.run();
        assert_eq!(a, b, "autopilot runs are deterministic");
        assert_eq!(
            cache.autopilot_status().unwrap().switches,
            cache_b.autopilot_status().unwrap().switches,
            "switch histories match run-for-run"
        );
    }

    #[test]
    fn shadow_runs_stay_deterministic_and_leave_baseline_untouched() {
        let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        config.shadow_sample_every_n = 8;
        let a = Simulation::new(PolicyName::Lsc, config.clone(), 7)
            .unwrap()
            .run();
        let b = Simulation::new(PolicyName::Lsc, config, 7).unwrap().run();
        assert_eq!(a, b, "shadowed runs are deterministic");
        // The ghosts are pure observers: the live run's report matches a
        // run with shadow evaluation off.
        let baseline = run(PolicyName::Lsc, 200, 7);
        assert_eq!(a, baseline, "shadow evaluation perturbs the live run");
    }

    #[test]
    fn profiled_run_is_report_identical_and_publishes_stage_series() {
        // Acceptance: profiling is metadata-only — a fully profiled run
        // (every op sampled) produces the byte-identical report of an
        // unprofiled run with the same seed, while the registry carries
        // the stage-latency and lock-site series.
        let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        config.profile = 1;
        let mut sim = Simulation::new(PolicyName::Lsc, config, 7).unwrap();
        let registry = Registry::new();
        sim.attach_telemetry(&registry, bad_telemetry::null_sink());
        let profiled = sim.run();

        let baseline = run(PolicyName::Lsc, 200, 7);
        assert_eq!(profiled, baseline, "profiling perturbs the live run");

        let text = registry.render();
        assert!(
            text.contains("bad_profile_stage_ns_count{stage=\"insert\"}"),
            "missing insert stage series:\n{text}"
        );
        assert!(
            text.contains("bad_profile_stage_ns_count{stage=\"get_all_pending\"}"),
            "missing retrieval stage series:\n{text}"
        );
        assert!(
            text.contains("bad_profile_lock_acquisitions_total{site=\"cache_shard0\"}"),
            "missing shard lock site:\n{text}"
        );
    }

    #[test]
    fn sketched_run_is_report_identical_and_surfaces_hot_keys() {
        // Acceptance: sketches are metadata-only — a fully sketched run
        // (every op recorded) matches the unsketched baseline on every
        // report field except the `hot` summary it gains, and the
        // summary names the run's heavy hitters deterministically.
        let mut config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        config.sketch_sample_every_n = 1;
        let sketched = Simulation::new(PolicyName::Lsc, config.clone(), 7)
            .unwrap()
            .run();

        let hot = sketched.hot.clone().expect("sketches enabled");
        assert!(
            hot.contains("\"top_requests\"") && hot.contains("\"distinct_active_estimate\""),
            "hot summary missing fields: {hot}"
        );

        let mut scrubbed = sketched.clone();
        scrubbed.hot = None;
        let baseline = run(PolicyName::Lsc, 200, 7);
        assert_eq!(scrubbed, baseline, "sketching perturbs the live run");

        // Deterministic per seed, including the rendered summary.
        let again = Simulation::new(PolicyName::Lsc, config, 7).unwrap().run();
        assert_eq!(sketched, again, "sketched runs stay deterministic");
    }

    #[test]
    fn attached_sink_sees_epoch_samples() {
        use std::sync::Arc;

        let config = SimConfig::smoke().with_budget(ByteSize::from_kib(200));
        let mut sim = Simulation::new(PolicyName::Ttl, config, 12).unwrap();
        let registry = Registry::new();
        // Large enough that no event of the smoke run is ever dropped.
        let ring = Arc::new(bad_telemetry::RingBufferSink::new(1 << 17));
        sim.attach_telemetry(&registry, ring.clone());
        let report = sim.run();

        assert!(
            ring.len() < 1 << 17,
            "ring saturated; epoch count would be unreliable"
        );
        let epochs = ring
            .events()
            .iter()
            .filter(|e| matches!(e, bad_telemetry::Event::EpochSample { .. }))
            .count();
        assert_eq!(epochs, report.samples.len());
        // The metric families registered by the attach are live too.
        let text = registry.render();
        assert!(text.contains("bad_cache_hit_objects_total"));
        assert!(text.contains("bad_broker_retrievals_total"));
    }
}
