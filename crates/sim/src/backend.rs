//! The simulator's synthetic data cluster.
//!
//! The Section V simulator does not run queries: the backend simply
//! "generates results at different rates for different channels". Each
//! synthetic *stream* stands for one unique subscription's result
//! production process (Poisson arrivals, Table II object sizes), and all
//! produced results are persisted in a [`ResultStore`] so that cache
//! misses can always be re-fetched — BAD results are durable.

use bad_broker::ClusterHandle;
use bad_cluster::Notification;
use bad_query::ParamBindings;
use bad_storage::{ResultObject, ResultStore};
use bad_types::ids::IdGen;
use bad_types::{BackendSubId, BadError, ByteSize, DataValue, Result, TimeRange, Timestamp};

use std::collections::HashMap;

/// The synthetic cluster backend used by the simulator.
///
/// Channel names of the form `stream-<i>` map to synthetic streams; the
/// broker subscribes through the normal [`ClusterHandle`] interface.
#[derive(Debug)]
pub struct SimBackend {
    store: ResultStore,
    ids: IdGen,
    /// channel name -> backend subscription (one sub per stream).
    by_channel: HashMap<String, BackendSubId>,
    /// Lifecycle tracer stamping `result_produced` root spans with the
    /// simulator's virtual time (disabled by default).
    tracer: bad_telemetry::SharedTracer,
}

impl Default for SimBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SimBackend {
    /// Creates an empty backend.
    pub fn new() -> Self {
        Self {
            store: ResultStore::new(),
            ids: IdGen::new(),
            by_channel: HashMap::new(),
            tracer: bad_telemetry::Tracer::disabled(),
        }
    }

    /// Emits a `result_produced` span for every produced result
    /// through `tracer`, stamped with the result's virtual timestamp.
    pub fn set_tracer(&mut self, tracer: bad_telemetry::SharedTracer) {
        self.tracer = tracer;
    }

    /// The canonical channel name of stream `i`.
    pub fn stream_channel(i: usize) -> String {
        format!("stream-{i}")
    }

    /// The backend subscription currently bound to a stream, if any.
    pub fn subscription_of(&self, stream: usize) -> Option<BackendSubId> {
        self.by_channel.get(&Self::stream_channel(stream)).copied()
    }

    /// Produces one result of `size` for `bs` at time `ts`, persisting it
    /// and returning the notification the cluster would send.
    pub fn produce(&mut self, bs: BackendSubId, ts: Timestamp, size: ByteSize) -> Notification {
        let object = self.store.append(bs, ts, DataValue::Null, Some(size));
        if self.tracer.enabled() {
            self.tracer.on_result_produced(
                ts.as_micros(),
                bs.as_u64(),
                object.id.as_u64(),
                object.size.as_u64(),
            );
        }
        Notification {
            backend_sub: bs,
            latest_ts: object.ts,
            count: 1,
            bytes: size,
        }
    }

    /// Total bytes of results ever produced (`Vol`).
    pub fn volume(&self) -> ByteSize {
        self.store.total_bytes()
    }

    /// Total number of results ever produced.
    pub fn produced_objects(&self) -> u64 {
        self.store.total_objects()
    }
}

impl ClusterHandle for SimBackend {
    fn cluster_subscribe(
        &mut self,
        channel: &str,
        _params: ParamBindings,
        _now: Timestamp,
    ) -> Result<BackendSubId> {
        if let Some(existing) = self.by_channel.get(channel) {
            return Ok(*existing);
        }
        let id: BackendSubId = self.ids.next_id();
        self.by_channel.insert(channel.to_owned(), id);
        Ok(id)
    }

    fn cluster_unsubscribe(&mut self, bs: BackendSubId) -> Result<()> {
        let channel = self
            .by_channel
            .iter()
            .find(|&(_, id)| *id == bs)
            .map(|(name, _)| name.clone())
            .ok_or_else(|| BadError::not_found("subscription", bs.to_string()))?;
        self.by_channel.remove(&channel);
        self.store.remove_subscription(bs);
        Ok(())
    }

    fn cluster_fetch(&mut self, bs: BackendSubId, range: TimeRange) -> Vec<ResultObject> {
        self.store.fetch(bs, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> Timestamp {
        Timestamp::from_secs(secs)
    }

    #[test]
    fn subscribe_is_idempotent_per_channel() {
        let mut backend = SimBackend::new();
        let a = backend
            .cluster_subscribe("stream-0", ParamBindings::new(), t(0))
            .unwrap();
        let b = backend
            .cluster_subscribe("stream-0", ParamBindings::new(), t(0))
            .unwrap();
        let c = backend
            .cluster_subscribe("stream-1", ParamBindings::new(), t(0))
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(backend.subscription_of(0), Some(a));
    }

    #[test]
    fn produced_results_are_fetchable() {
        let mut backend = SimBackend::new();
        let bs = backend
            .cluster_subscribe("stream-0", ParamBindings::new(), t(0))
            .unwrap();
        let n = backend.produce(bs, t(5), ByteSize::from_kib(10));
        assert_eq!(n.latest_ts, t(5));
        let got = backend.cluster_fetch(bs, TimeRange::closed(t(0), t(10)));
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].size, ByteSize::from_kib(10));
        assert_eq!(backend.volume(), ByteSize::from_kib(10));
        assert_eq!(backend.produced_objects(), 1);
    }

    #[test]
    fn unsubscribe_clears_stream() {
        let mut backend = SimBackend::new();
        let bs = backend
            .cluster_subscribe("stream-0", ParamBindings::new(), t(0))
            .unwrap();
        backend.produce(bs, t(1), ByteSize::new(100));
        backend.cluster_unsubscribe(bs).unwrap();
        assert_eq!(backend.subscription_of(0), None);
        assert!(backend
            .cluster_fetch(bs, TimeRange::closed(t(0), t(10)))
            .is_empty());
        assert!(backend.cluster_unsubscribe(bs).is_err());
    }
}
