//! Geographic primitives for the paper's emergency-notification use case.
//!
//! Subscribers in the prototype evaluation (Section VI) subscribe to
//! emergencies "happening in certain locations"; publications are
//! geo-tagged. [`GeoPoint`] and [`BoundingBox`] back the `within(...)`
//! builtin of the BQL subscription language.

use std::fmt;

use crate::value::DataValue;

/// Mean Earth radius in kilometres, used by the haversine distance.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A WGS-84 latitude/longitude pair in degrees.
///
/// # Examples
///
/// ```
/// use bad_types::GeoPoint;
///
/// let uci = GeoPoint::new(33.6405, -117.8443);
/// let lax = GeoPoint::new(33.9416, -118.4085);
/// let d = uci.distance_km(lax);
/// assert!((50.0..70.0).contains(&d));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle (haversine) distance to `other` in kilometres.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat.to_radians();
        let lat2 = other.lat.to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * a.sqrt().asin() * EARTH_RADIUS_KM
    }

    /// Converts the point to a record `{"lat": .., "lon": ..}`.
    pub fn to_value(self) -> DataValue {
        DataValue::object([
            ("lat", DataValue::Float(self.lat)),
            ("lon", DataValue::Float(self.lon)),
        ])
    }

    /// Reads a point back from a record produced by [`GeoPoint::to_value`].
    pub fn from_value(value: &DataValue) -> Option<GeoPoint> {
        let lat = value.get("lat")?.as_f64()?;
        let lon = value.get("lon")?.as_f64()?;
        Some(GeoPoint::new(lat, lon))
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// An axis-aligned latitude/longitude rectangle.
///
/// # Examples
///
/// ```
/// use bad_types::{BoundingBox, GeoPoint};
///
/// let city = BoundingBox::new(GeoPoint::new(33.6, -118.0), GeoPoint::new(33.9, -117.6));
/// assert!(city.contains(GeoPoint::new(33.7, -117.8)));
/// assert!(!city.contains(GeoPoint::new(34.1, -117.8)));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundingBox {
    /// South-west corner.
    pub min: GeoPoint,
    /// North-east corner.
    pub max: GeoPoint,
}

impl BoundingBox {
    /// Creates a box from its south-west and north-east corners.
    ///
    /// Corners are normalized so that `min` is always south-west of `max`.
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        Self {
            min: GeoPoint::new(a.lat.min(b.lat), a.lon.min(b.lon)),
            max: GeoPoint::new(a.lat.max(b.lat), a.lon.max(b.lon)),
        }
    }

    /// Returns `true` when `p` lies inside (or on the edge of) the box.
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lat >= self.min.lat
            && p.lat <= self.max.lat
            && p.lon >= self.min.lon
            && p.lon <= self.max.lon
    }

    /// Centre point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            (self.min.lat + self.max.lat) / 2.0,
            (self.min.lon + self.max.lon) / 2.0,
        )
    }

    /// Converts the box to a record `{"min": {...}, "max": {...}}`.
    pub fn to_value(self) -> DataValue {
        DataValue::object([("min", self.min.to_value()), ("max", self.max.to_value())])
    }

    /// Reads a box back from a record produced by [`BoundingBox::to_value`].
    pub fn from_value(value: &DataValue) -> Option<BoundingBox> {
        let min = GeoPoint::from_value(value.get("min")?)?;
        let max = GeoPoint::from_value(value.get("max")?)?;
        Some(BoundingBox { min, max })
    }

    /// Splits the box into an `n x n` grid of equally-sized cells, row by
    /// row from the south-west corner.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn grid(&self, n: u32) -> Vec<BoundingBox> {
        assert!(n > 0, "grid dimension must be positive");
        let dlat = (self.max.lat - self.min.lat) / n as f64;
        let dlon = (self.max.lon - self.min.lon) / n as f64;
        let mut cells = Vec::with_capacity((n * n) as usize);
        for row in 0..n {
            for col in 0..n {
                let sw = GeoPoint::new(
                    self.min.lat + dlat * row as f64,
                    self.min.lon + dlon * col as f64,
                );
                let ne = GeoPoint::new(sw.lat + dlat, sw.lon + dlon);
                cells.push(BoundingBox::new(sw, ne));
            }
        }
        cells
    }
}

impl fmt::Display for BoundingBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_zero_to_self() {
        let p = GeoPoint::new(12.0, 34.0);
        assert!(p.distance_km(p) < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(33.64, -117.84);
        let b = GeoPoint::new(37.77, -122.42);
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_distance_sf_la() {
        let sf = GeoPoint::new(37.7749, -122.4194);
        let la = GeoPoint::new(34.0522, -118.2437);
        let d = sf.distance_km(la);
        assert!((550.0..570.0).contains(&d), "got {d}");
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BoundingBox::new(GeoPoint::new(2.0, 2.0), GeoPoint::new(1.0, 1.0));
        assert_eq!(b.min, GeoPoint::new(1.0, 1.0));
        assert_eq!(b.max, GeoPoint::new(2.0, 2.0));
    }

    #[test]
    fn bbox_contains_edges() {
        let b = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0));
        assert!(b.contains(GeoPoint::new(0.0, 0.0)));
        assert!(b.contains(GeoPoint::new(1.0, 1.0)));
        assert!(b.contains(b.center()));
        assert!(!b.contains(GeoPoint::new(1.0001, 0.5)));
    }

    #[test]
    fn grid_partitions_area() {
        let b = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(4.0, 4.0));
        let cells = b.grid(4);
        assert_eq!(cells.len(), 16);
        // Every cell center is inside the parent box and inside exactly one cell.
        for cell in &cells {
            let c = cell.center();
            assert!(b.contains(c));
            let hits = cells.iter().filter(|other| other.contains(c)).count();
            assert_eq!(hits, 1, "center {c} in {hits} cells");
        }
    }

    #[test]
    fn value_roundtrip() {
        let p = GeoPoint::new(3.5, -7.25);
        assert_eq!(GeoPoint::from_value(&p.to_value()), Some(p));
        let b = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 2.0));
        assert_eq!(BoundingBox::from_value(&b.to_value()), Some(b));
        assert_eq!(GeoPoint::from_value(&DataValue::Null), None);
    }
}
