//! The common error type for the BAD workspace.

use std::error::Error as StdError;
use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = BadError> = std::result::Result<T, E>;

/// Errors produced by the BAD system.
///
/// # Examples
///
/// ```
/// use bad_types::BadError;
///
/// let err = BadError::not_found("channel", "NearbyTornadoes");
/// assert_eq!(err.to_string(), "channel not found: NearbyTornadoes");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BadError {
    /// A text input (JSON document, BQL query) failed to parse.
    Parse(String),
    /// A value had the wrong type for the operation.
    Type(String),
    /// A referenced entity does not exist.
    NotFound {
        /// What kind of entity was looked up (e.g. `"channel"`).
        kind: &'static str,
        /// The key that failed to resolve.
        key: String,
    },
    /// An entity with the same key already exists.
    AlreadyExists {
        /// What kind of entity collided.
        kind: &'static str,
        /// The duplicate key.
        key: String,
    },
    /// A record violated a closed dataset schema.
    Schema(String),
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// The operation is not valid in the current state.
    InvalidState(String),
}

impl BadError {
    /// Shorthand for [`BadError::NotFound`].
    pub fn not_found(kind: &'static str, key: impl Into<String>) -> Self {
        BadError::NotFound {
            kind,
            key: key.into(),
        }
    }

    /// Shorthand for [`BadError::AlreadyExists`].
    pub fn already_exists(kind: &'static str, key: impl Into<String>) -> Self {
        BadError::AlreadyExists {
            kind,
            key: key.into(),
        }
    }
}

impl fmt::Display for BadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BadError::Parse(msg) => write!(f, "parse error: {msg}"),
            BadError::Type(msg) => write!(f, "type error: {msg}"),
            BadError::NotFound { kind, key } => write!(f, "{kind} not found: {key}"),
            BadError::AlreadyExists { kind, key } => {
                write!(f, "{kind} already exists: {key}")
            }
            BadError::Schema(msg) => write!(f, "schema violation: {msg}"),
            BadError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            BadError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl StdError for BadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            BadError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            BadError::already_exists("dataset", "Reports").to_string(),
            "dataset already exists: Reports"
        );
        assert_eq!(
            BadError::Schema("missing field kind".into()).to_string(),
            "schema violation: missing field kind"
        );
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_traits<T: StdError + Send + Sync + 'static>() {}
        assert_traits::<BadError>();
    }
}
