//! Core vocabulary types shared by every crate of the BAD edge-caching
//! system: identifiers, virtual time, self-describing records, geographic
//! primitives, byte sizes and the common error type.
//!
//! The BAD platform (ICDCS 2018, "Edge Caching for Enriched Notifications
//! Delivery in Big Active Data") is reproduced here as a Rust workspace;
//! this crate is its foundation and has no dependencies of its own.
//!
//! # Examples
//!
//! ```
//! use bad_types::{DataValue, Timestamp, SimDuration, ByteSize};
//!
//! let record = DataValue::parse_json(r#"{"kind":"tornado","severity":4}"#).unwrap();
//! assert_eq!(record.get_path("kind").and_then(DataValue::as_str), Some("tornado"));
//!
//! let t = Timestamp::ZERO + SimDuration::from_secs(90);
//! assert_eq!(t.as_secs_f64(), 90.0);
//! assert_eq!(ByteSize::from_mib(2).as_u64(), 2 * 1024 * 1024);
//! ```

pub mod error;
pub mod geo;
pub mod ids;
pub mod size;
pub mod time;
pub mod value;

pub use error::{BadError, Result};
pub use geo::{BoundingBox, GeoPoint};
pub use ids::{
    BackendSubId, BrokerId, ChannelId, FrontendSubId, ObjectId, PublisherId, SubscriberId,
};
pub use size::ByteSize;
pub use time::{SimDuration, TimeRange, Timestamp};
pub use value::DataValue;
