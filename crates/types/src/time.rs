//! Virtual time for the BAD system.
//!
//! All components — the data cluster, the brokers, the simulator and the
//! prototype harness — agree on a single microsecond-resolution virtual
//! clock. Result objects are timestamped with [`Timestamp`]s and retrieved
//! by [`TimeRange`]s, mirroring the timestamp markers the paper's
//! Algorithm 1 keeps per frontend and backend subscription.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const MICROS_PER_SEC: u64 = 1_000_000;
const MICROS_PER_MILLI: u64 = 1_000;

/// A span of virtual time with microsecond resolution.
///
/// # Examples
///
/// ```
/// use bad_types::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// assert_eq!(d * 2, SimDuration::from_secs(3));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * MICROS_PER_MILLI)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * MICROS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Self::from_secs(hours * 3600)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Returns the duration in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 3600.0 {
            write!(f, "{:.2}h", secs / 3600.0)
        } else if secs >= 60.0 {
            write!(f, "{:.2}m", secs / 60.0)
        } else if secs >= 1.0 {
            write!(f, "{:.3}s", secs)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// An instant on the shared virtual clock, measured from the simulation
/// epoch.
///
/// # Examples
///
/// ```
/// use bad_types::{SimDuration, Timestamp};
///
/// let t0 = Timestamp::ZERO;
/// let t1 = t0 + SimDuration::from_secs(10);
/// assert_eq!(t1 - t0, SimDuration::from_secs(10));
/// assert!(t1 > t0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// The largest representable instant.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from whole microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros)
    }

    /// Creates a timestamp from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * MICROS_PER_SEC)
    }

    /// Returns microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub const fn since(self, earlier: Timestamp) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two timestamps.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign<SimDuration> for Timestamp {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sub for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

/// A half-open or closed interval of timestamps, as used by the broker's
/// `fetch(bs, ts1, ts2, closed)` call in Algorithm 1 of the paper.
///
/// The left end is always inclusive; `closed_right` selects whether the
/// right end is inclusive.
///
/// # Examples
///
/// ```
/// use bad_types::{TimeRange, Timestamp};
///
/// let r = TimeRange::closed(Timestamp::from_secs(1), Timestamp::from_secs(5));
/// assert!(r.contains(Timestamp::from_secs(5)));
/// let h = TimeRange::half_open(Timestamp::from_secs(1), Timestamp::from_secs(5));
/// assert!(!h.contains(Timestamp::from_secs(5)));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub from: Timestamp,
    /// Upper bound; inclusive iff `closed_right`.
    pub to: Timestamp,
    /// Whether `to` itself is part of the range.
    pub closed_right: bool,
}

impl TimeRange {
    /// Creates a range inclusive at both ends: `[from, to]`.
    pub const fn closed(from: Timestamp, to: Timestamp) -> Self {
        Self {
            from,
            to,
            closed_right: true,
        }
    }

    /// Creates a range exclusive on the right: `[from, to)`.
    pub const fn half_open(from: Timestamp, to: Timestamp) -> Self {
        Self {
            from,
            to,
            closed_right: false,
        }
    }

    /// Returns `true` when `ts` lies inside this range.
    pub fn contains(&self, ts: Timestamp) -> bool {
        if ts < self.from {
            return false;
        }
        if self.closed_right {
            ts <= self.to
        } else {
            ts < self.to
        }
    }

    /// Returns `true` if the range can contain no timestamp at all.
    pub fn is_empty(&self) -> bool {
        if self.closed_right {
            self.to < self.from
        } else {
            self.to <= self.from
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let close = if self.closed_right { "]" } else { ")" };
        write!(f, "[{}, {}{}", self.from, self.to, close)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
    }

    #[test]
    fn duration_from_secs_f64_saturates() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(1);
        assert_eq!(a + b, SimDuration::from_secs(4));
        assert_eq!(a - b, SimDuration::from_secs(2));
        assert_eq!(b - a, SimDuration::ZERO); // saturating
        assert_eq!(a * 2, SimDuration::from_secs(6));
        assert_eq!(a / 3, SimDuration::from_secs(1));
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_secs(5));
    }

    #[test]
    fn timestamp_arithmetic_saturates() {
        let t = Timestamp::from_secs(1);
        assert_eq!(t - SimDuration::from_secs(5), Timestamp::ZERO);
        assert_eq!(Timestamp::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(Timestamp::MAX + SimDuration::from_secs(1), Timestamp::MAX);
    }

    #[test]
    fn range_membership() {
        let r = TimeRange::closed(Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(!r.contains(Timestamp::from_secs(9)));
        assert!(r.contains(Timestamp::from_secs(10)));
        assert!(r.contains(Timestamp::from_secs(20)));
        let h = TimeRange::half_open(Timestamp::from_secs(10), Timestamp::from_secs(20));
        assert!(!h.contains(Timestamp::from_secs(20)));
        assert!(h.contains(Timestamp::from_secs(19)));
    }

    #[test]
    fn range_emptiness() {
        let t = Timestamp::from_secs(5);
        assert!(TimeRange::half_open(t, t).is_empty());
        assert!(!TimeRange::closed(t, t).is_empty());
        assert!(TimeRange::closed(t, Timestamp::from_secs(1)).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3.00m");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(Timestamp::from_secs(1).to_string(), "t=1.000s");
        assert_eq!(
            TimeRange::half_open(Timestamp::ZERO, Timestamp::from_secs(1)).to_string(),
            "[t=0.000s, t=1.000s)"
        );
    }
}
