//! Self-describing records.
//!
//! Publications enter the BAD data cluster as JSON-like records with open
//! or closed schema; [`DataValue`] is that record model. It supports the
//! subset of JSON used by the paper's workloads (objects, arrays, strings,
//! numbers, booleans, null) plus dotted-path access, a size estimate used
//! by the caching layer, and a built-in JSON parser/printer so traces can
//! be expressed as plain text.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{BadError, Result};

/// A dynamically-typed record value, the unit of publication content.
///
/// # Examples
///
/// ```
/// use bad_types::DataValue;
///
/// let v = DataValue::object([
///     ("kind", DataValue::from("flood")),
///     ("severity", DataValue::from(3i64)),
/// ]);
/// assert_eq!(v.get_path("severity").and_then(DataValue::as_i64), Some(3));
/// let text = v.to_json_string();
/// assert_eq!(DataValue::parse_json(&text).unwrap(), v);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum DataValue {
    /// The absence of a value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered list of values.
    Array(Vec<DataValue>),
    /// A field-name-keyed map of values.
    Object(BTreeMap<String, DataValue>),
}

impl DataValue {
    /// Builds an object from `(field, value)` pairs.
    pub fn object<K, I>(fields: I) -> DataValue
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, DataValue)>,
    {
        DataValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = DataValue>>(items: I) -> DataValue {
        DataValue::Array(items.into_iter().collect())
    }

    /// Returns the boolean behind a [`DataValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            DataValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer behind a [`DataValue::Int`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            DataValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a numeric value as `f64`, converting integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            DataValue::Int(i) => Some(*i as f64),
            DataValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string slice behind a [`DataValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            DataValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array behind a [`DataValue::Array`].
    pub fn as_array(&self) -> Option<&[DataValue]> {
        match self {
            DataValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the map behind a [`DataValue::Object`].
    pub fn as_object(&self) -> Option<&BTreeMap<String, DataValue>> {
        match self {
            DataValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Returns `true` for [`DataValue::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, DataValue::Null)
    }

    /// Looks up a direct field of an object.
    pub fn get(&self, field: &str) -> Option<&DataValue> {
        self.as_object().and_then(|map| map.get(field))
    }

    /// Looks up a dotted path such as `"location.lat"`.
    ///
    /// Returns `None` when any intermediate segment is missing or not an
    /// object.
    pub fn get_path(&self, path: &str) -> Option<&DataValue> {
        let mut cur = self;
        for seg in path.split('.') {
            cur = cur.get(seg)?;
        }
        Some(cur)
    }

    /// Estimates the in-memory/wire footprint of the value in bytes.
    ///
    /// The estimate is deterministic and monotone in content size; the
    /// caching layer uses it as the object size `s_ij` of the paper when a
    /// payload is present.
    pub fn estimated_size(&self) -> u64 {
        match self {
            DataValue::Null => 4,
            DataValue::Bool(_) => 5,
            DataValue::Int(_) | DataValue::Float(_) => 8,
            DataValue::Str(s) => 2 + s.len() as u64,
            DataValue::Array(items) => 2 + items.iter().map(DataValue::estimated_size).sum::<u64>(),
            DataValue::Object(map) => {
                2 + map
                    .iter()
                    .map(|(k, v)| 3 + k.len() as u64 + v.estimated_size())
                    .sum::<u64>()
            }
        }
    }

    /// Serializes the value as compact JSON.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            DataValue::Null => out.push_str("null"),
            DataValue::Bool(true) => out.push_str("true"),
            DataValue::Bool(false) => out.push_str("false"),
            DataValue::Int(i) => out.push_str(&i.to_string()),
            DataValue::Float(f) => {
                if f.is_finite() {
                    // Preserve float-ness through the round trip.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        out.push_str(&format!("{:.1}", f));
                    } else {
                        out.push_str(&format!("{}", f));
                    }
                } else {
                    out.push_str("null");
                }
            }
            DataValue::Str(s) => write_json_string(s, out),
            DataValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            DataValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document into a [`DataValue`].
    ///
    /// # Errors
    ///
    /// Returns [`BadError::Parse`] when the input is not valid JSON or has
    /// trailing non-whitespace content.
    pub fn parse_json(input: &str) -> Result<DataValue> {
        let mut parser = JsonParser::new(input);
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.peek().is_some() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl From<bool> for DataValue {
    fn from(b: bool) -> Self {
        DataValue::Bool(b)
    }
}

impl From<i64> for DataValue {
    fn from(i: i64) -> Self {
        DataValue::Int(i)
    }
}

impl From<i32> for DataValue {
    fn from(i: i32) -> Self {
        DataValue::Int(i as i64)
    }
}

impl From<f64> for DataValue {
    fn from(f: f64) -> Self {
        DataValue::Float(f)
    }
}

impl From<&str> for DataValue {
    fn from(s: &str) -> Self {
        DataValue::Str(s.to_owned())
    }
}

impl From<String> for DataValue {
    fn from(s: String) -> Self {
        DataValue::Str(s)
    }
}

impl<T: Into<DataValue>> From<Option<T>> for DataValue {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => DataValue::Null,
        }
    }
}

impl fmt::Display for DataValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> BadError {
        BadError::Parse(format!("json: {} at byte {}", msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<DataValue> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(DataValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", DataValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", DataValue::Bool(false)),
            Some(b'n') => self.parse_keyword("null", DataValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: DataValue) -> Result<DataValue> {
        if self.input[self.pos..].starts_with(kw) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{}'", kw)))
        }
    }

    fn parse_object(&mut self) -> Result<DataValue> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(DataValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(DataValue::Object(map)),
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<DataValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(DataValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(DataValue::Array(items)),
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // Surrogate pair.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape sequence")),
                },
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<DataValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(DataValue::Float)
                .map_err(|_| self.error("invalid float literal"))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(DataValue::Int(i)),
                // Overflowing integers degrade to floats, as in most JSON parsers.
                Err(_) => text
                    .parse::<f64>()
                    .map(DataValue::Float)
                    .map_err(|_| self.error("invalid number literal")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(DataValue::from(true).as_bool(), Some(true));
        assert_eq!(DataValue::from(4i64).as_i64(), Some(4));
        assert_eq!(DataValue::from(4i64).as_f64(), Some(4.0));
        assert_eq!(DataValue::from(2.5).as_f64(), Some(2.5));
        assert_eq!(DataValue::from("x").as_str(), Some("x"));
        assert!(DataValue::Null.is_null());
        assert_eq!(DataValue::from(Option::<i64>::None), DataValue::Null);
    }

    #[test]
    fn path_lookup() {
        let v = DataValue::object([(
            "location",
            DataValue::object([
                ("lat", DataValue::from(33.6)),
                ("lon", DataValue::from(-117.8)),
            ]),
        )]);
        assert_eq!(
            v.get_path("location.lat").and_then(DataValue::as_f64),
            Some(33.6)
        );
        assert_eq!(v.get_path("location.alt"), None);
        assert_eq!(v.get_path("missing.lat"), None);
    }

    #[test]
    fn parse_basic_document() {
        let v = DataValue::parse_json(r#"{"a": 1, "b": [true, null, "s"], "c": {"d": -2.5e1}}"#)
            .unwrap();
        assert_eq!(v.get_path("a").and_then(DataValue::as_i64), Some(1));
        assert_eq!(v.get_path("c.d").and_then(DataValue::as_f64), Some(-25.0));
        let arr = v.get("b").and_then(DataValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[1].is_null());
    }

    #[test]
    fn parse_string_escapes() {
        let v = DataValue::parse_json(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":}",
        ] {
            assert!(DataValue::parse_json(bad).is_err(), "should fail: {bad:?}");
        }
    }

    #[test]
    fn integer_overflow_degrades_to_float() {
        let v = DataValue::parse_json("99999999999999999999999").unwrap();
        assert!(matches!(v, DataValue::Float(_)));
    }

    #[test]
    fn roundtrip_fixed_values() {
        let v = DataValue::object([
            ("s", DataValue::from("hello \"world\"\n")),
            ("n", DataValue::Null),
            ("i", DataValue::from(-42i64)),
            ("f", DataValue::from(2.5)),
            ("whole_float", DataValue::from(3.0)),
            (
                "arr",
                DataValue::array([DataValue::from(1i64), DataValue::from(false)]),
            ),
        ]);
        let text = v.to_json_string();
        assert_eq!(DataValue::parse_json(&text).unwrap(), v);
    }

    #[test]
    fn estimated_size_is_monotone() {
        let small = DataValue::from("ab");
        let large = DataValue::from("abcdefgh");
        assert!(large.estimated_size() > small.estimated_size());
        let nested = DataValue::object([("k", large.clone())]);
        assert!(nested.estimated_size() > large.estimated_size());
    }

    #[test]
    fn display_is_json() {
        let v = DataValue::object([("k", DataValue::from(1i64))]);
        assert_eq!(v.to_string(), r#"{"k":1}"#);
    }
}
