//! Strongly-typed identifiers for the entities of the BAD platform.
//!
//! Every entity that flows between the data cluster, the brokers and the
//! subscribers carries its own newtype identifier so that, e.g., a
//! [`FrontendSubId`] can never be passed where a [`BackendSubId`] is
//! expected — the distinction between the two is the heart of the broker's
//! subscription-merging logic.

use std::fmt;

/// Defines a `u64`-backed identifier newtype with the common trait set.
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u64);

        impl $name {
            /// Creates an identifier from its raw integer representation.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer behind this identifier.
            pub const fn as_u64(self) -> u64 {
                self.0
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// An end user ("BAD client") connected to a broker.
    SubscriberId,
    "sub-"
);
define_id!(
    /// A data source publishing records into the data cluster.
    PublisherId,
    "pub-"
);
define_id!(
    /// A parameterized channel registered in the data cluster.
    ChannelId,
    "ch-"
);
define_id!(
    /// A merged, deduplicated subscription the broker holds against the
    /// data cluster. Each backend subscription owns one result cache.
    BackendSubId,
    "bsub-"
);
define_id!(
    /// An individual subscriber-facing subscription; many frontend
    /// subscriptions may share one [`BackendSubId`].
    FrontendSubId,
    "fsub-"
);
define_id!(
    /// A result object produced by the data cluster for one backend
    /// subscription.
    ObjectId,
    "obj-"
);
define_id!(
    /// A broker node registered with the Broker Coordination Service.
    BrokerId,
    "broker-"
);

/// A monotonically increasing generator for any of the identifier types.
///
/// # Examples
///
/// ```
/// use bad_types::ids::IdGen;
/// use bad_types::ObjectId;
///
/// let mut gen = IdGen::new();
/// let a: ObjectId = gen.next_id();
/// let b: ObjectId = gen.next_id();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdGen {
    next: u64,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub const fn new() -> Self {
        Self { next: 0 }
    }

    /// Creates a generator whose first identifier is `start`.
    pub const fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Returns the next identifier, converting into any `From<u64>` id type.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        let raw = self.next;
        self.next += 1;
        T::from(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(SubscriberId::new(7).to_string(), "sub-7");
        assert_eq!(BackendSubId::new(0).to_string(), "bsub-0");
        assert_eq!(BrokerId::new(3).to_string(), "broker-3");
    }

    #[test]
    fn roundtrip_u64() {
        let id = ObjectId::from(42u64);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id.as_u64(), 42);
    }

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::new();
        let ids: Vec<ObjectId> = (0..100).map(|_| g.next_id()).collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn idgen_starting_at() {
        let mut g = IdGen::starting_at(10);
        let id: ChannelId = g.next_id();
        assert_eq!(id.as_u64(), 10);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SubscriberId::new(1));
        set.insert(SubscriberId::new(1));
        set.insert(SubscriberId::new(2));
        assert_eq!(set.len(), 2);
        assert!(SubscriberId::new(1) < SubscriberId::new(2));
    }
}
