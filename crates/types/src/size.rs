//! Byte quantities.
//!
//! Cache budgets (the paper's `B`), object sizes (`s_ij`) and traffic
//! volumes are all expressed as [`ByteSize`] so they cannot be confused
//! with counts or durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * KIB;
const GIB: u64 = 1024 * MIB;

/// A non-negative quantity of bytes.
///
/// # Examples
///
/// ```
/// use bad_types::ByteSize;
///
/// let budget = ByteSize::from_mib(50);
/// assert_eq!(budget.as_u64(), 50 * 1024 * 1024);
/// assert_eq!(budget.to_string(), "50.00MiB");
/// assert!(budget > ByteSize::from_kib(100));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// The largest representable size.
    pub const MAX: ByteSize = ByteSize(u64::MAX);

    /// Creates a size from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a size from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * KIB)
    }

    /// Creates a size from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * MIB)
    }

    /// Creates a size from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Self(gib * GIB)
    }

    /// Returns the raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the size as fractional kibibytes.
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / KIB as f64
    }

    /// Returns the size as fractional mebibytes.
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    /// Returns `true` when the size is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: Self) -> Self {
        Self(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two sizes.
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of two sizes.
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl From<u64> for ByteSize {
    fn from(bytes: u64) -> Self {
        Self(bytes)
    }
}

impl From<ByteSize> for u64 {
    fn from(size: ByteSize) -> u64 {
        size.0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(ByteSize::from_kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::from_mib(1), ByteSize::from_kib(1024));
        assert_eq!(ByteSize::from_gib(1), ByteSize::from_mib(1024));
    }

    #[test]
    fn arithmetic_saturates() {
        let a = ByteSize::new(10);
        let b = ByteSize::new(25);
        assert_eq!(a - b, ByteSize::ZERO);
        assert_eq!(b - a, ByteSize::new(15));
        assert_eq!(ByteSize::MAX + b, ByteSize::MAX);
        let mut c = a;
        c += b;
        assert_eq!(c, ByteSize::new(35));
        c -= ByteSize::new(100);
        assert_eq!(c, ByteSize::ZERO);
    }

    #[test]
    fn sum_and_mul() {
        let total: ByteSize = (1..=4u64).map(ByteSize::new).sum();
        assert_eq!(total, ByteSize::new(10));
        assert_eq!(ByteSize::new(3) * 4, ByteSize::new(12));
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::new(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00KiB");
        assert_eq!(ByteSize::from_mib(500).to_string(), "500.00MiB");
        assert_eq!(ByteSize::from_gib(3).to_string(), "3.00GiB");
    }

    #[test]
    fn fractional_views() {
        assert_eq!(ByteSize::from_kib(1).as_kib_f64(), 1.0);
        assert_eq!(ByteSize::from_mib(2).as_mib_f64(), 2.0);
        assert_eq!(ByteSize::new(512).as_kib_f64(), 0.5);
    }
}
