//! Property-based tests for the foundation types.

use bad_types::{ByteSize, DataValue, SimDuration, TimeRange, Timestamp};
use proptest::prelude::*;

/// Strategy producing arbitrary `DataValue` trees of bounded depth.
fn arb_value() -> impl Strategy<Value = DataValue> {
    let leaf = prop_oneof![
        Just(DataValue::Null),
        any::<bool>().prop_map(DataValue::Bool),
        any::<i64>().prop_map(DataValue::Int),
        // Finite floats only: NaN breaks equality, infinities serialize as null.
        (-1e12f64..1e12f64).prop_map(DataValue::Float),
        "[ -~]{0,20}".prop_map(DataValue::Str),
        // Strings with escapes and unicode.
        prop::collection::vec(any::<char>(), 0..8)
            .prop_map(|cs| DataValue::Str(cs.into_iter().collect())),
    ];
    leaf.prop_recursive(3, 32, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(DataValue::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6).prop_map(DataValue::Object),
        ]
    })
}

proptest! {
    /// Printing then parsing a value yields the same value (floats are
    /// constrained to a range where `{}` formatting round-trips exactly).
    #[test]
    fn json_roundtrip(v in arb_value()) {
        let text = v.to_json_string();
        let back = DataValue::parse_json(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// The size estimate never panics and grows when a value is wrapped.
    #[test]
    fn size_estimate_monotone_under_wrapping(v in arb_value()) {
        let inner = v.estimated_size();
        let wrapped = DataValue::object([("w", v)]).estimated_size();
        prop_assert!(wrapped > inner);
    }

    /// Timestamp difference inverts addition for in-range values.
    #[test]
    fn timestamp_add_sub_roundtrip(base in 0u64..1u64 << 50, delta in 0u64..1u64 << 40) {
        let t = Timestamp::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// A closed range contains both endpoints; a half-open one excludes `to`.
    #[test]
    fn range_endpoint_semantics(a in 0u64..1u64 << 40, len in 1u64..1u64 << 30) {
        let from = Timestamp::from_micros(a);
        let to = Timestamp::from_micros(a + len);
        let closed = TimeRange::closed(from, to);
        let open = TimeRange::half_open(from, to);
        prop_assert!(closed.contains(from) && closed.contains(to));
        prop_assert!(open.contains(from) && !open.contains(to));
        prop_assert!(!closed.is_empty() && !open.is_empty());
    }

    /// ByteSize saturating arithmetic never underflows.
    #[test]
    fn bytesize_never_underflows(a in any::<u64>(), b in any::<u64>()) {
        let diff = ByteSize::new(a) - ByteSize::new(b);
        prop_assert_eq!(diff.as_u64(), a.saturating_sub(b));
    }
}
